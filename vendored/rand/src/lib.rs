//! Vendored, offline stand-in for `rand`.
//!
//! geoserp's determinism story routes every draw through its own
//! `Seed`/`DetRng` (SplitMix64); the only thing it takes from `rand` is the
//! [`RngCore`] trait so `DetRng` composes with external distribution code.
//! This stub provides exactly that trait.

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Prelude matching `rand::prelude` closely enough for imports.
pub mod prelude {
    pub use super::RngCore;
}
