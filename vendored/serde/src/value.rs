//! The JSON-shaped value tree shared by the vendored `serde` / `serde_json`.

use std::fmt;

/// A JSON number: integers keep full 64-bit precision, floats round-trip
/// through Rust's shortest-representation formatter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// The number as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The number as `u64`, if it is a non-negative integer (floats qualify
    /// only when integral and in range).
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as `i64`, if representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// An insertion-ordered string-keyed map (deterministic serialization).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert (or replace) a key.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(String, Value)> {
        self.entries.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = &'a (String, Value);
    type IntoIter = std::slice::Iter<'a, (String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Map),
}

impl Value {
    /// The value as `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True for `Value::String`.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True for `Value::Number`.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Object member by key (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// `value["key"]` — panics on non-objects like `serde_json` would return
/// `Value::Null`; we return a static `Null` for missing keys to match the
/// common usage pattern.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (what `serde_json::to_string` produces).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render(self))
    }
}

/// Render a value as compact JSON.
pub fn render(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::PosInt(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::NegInt(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::Float(x)) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip representation.
                out.push_str(&format!("{x:?}"));
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parse a JSON document into a [`Value`].
pub fn parse(input: &str) -> Result<Value, crate::Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(crate::Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> crate::Error {
        crate::Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), crate::Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, crate::Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, crate::Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, crate::Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, crate::Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, crate::Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, crate::Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::Float(f)))
                .map_err(|_| self.err("invalid float"))
        } else if let Some(rest) = text.strip_prefix('-') {
            rest.parse::<u64>()
                .ok()
                .and_then(|n| i64::try_from(n).ok().map(|n| -n))
                .map(|n| Value::Number(Number::NegInt(n)))
                .ok_or_else(|| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(|n| Value::Number(Number::PosInt(n)))
                .map_err(|_| self.err("invalid integer"))
        }
    }
}
