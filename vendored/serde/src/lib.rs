//! Vendored, offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the slice of serde's surface that geoserp uses: `Serialize` /
//! `Deserialize` traits (re-exported alongside the derive macros of the same
//! names), implemented over a JSON-shaped value tree ([`Value`]). The
//! `serde_json` facade renders and parses that tree.
//!
//! Object members preserve insertion order, so serialization is fully
//! deterministic — a property the crawler's byte-identity tests rely on.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Map, Number, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error carrying a free-form message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialize one named field of an object (used by derived impls).
pub fn from_field<T: Deserialize>(obj: &Map, key: &str) -> Result<T, Error> {
    match obj.get(key) {
        Some(v) => T::from_value(v),
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

/// Render a map key's serialized form as the JSON object key. Strings pass
/// through; numbers and bools use their JSON text (matching serde_json's
/// key coercion); anything else is a programming error.
fn key_to_string(key: &Value) -> String {
    match key {
        Value::String(s) => s.clone(),
        Value::Number(_) | Value::Bool(_) => value::render(key),
        other => panic!("map key must serialize to a string, got {other:?}"),
    }
}

/// Recover a map key from a JSON object key: try the string form first
/// (unit-enum and `String` keys), then re-parse as JSON for numeric/bool
/// keys.
fn key_from_str<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(s.to_string())) {
        return Ok(k);
    }
    if let Ok(v) = value::parse(s) {
        return K::from_value(&v);
    }
    Err(Error::custom(format!("invalid map key {s:?}")))
}

/// `BTreeMap` keys are ordered, so serialization stays deterministic.
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_to_string(&k.to_value()), v.to_value());
        }
        Value::Object(m)
    }
}

/// `HashMap`s serialize with keys sorted, so output is deterministic even
/// though iteration order is not.
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(k, v);
        }
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! de_tuple_elem {
    ($arr:ident, $i:tt) => {
        Deserialize::from_value(
            $arr.get($i)
                .ok_or_else(|| Error::custom("tuple too short"))?,
        )?
    };
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        Ok((de_tuple_elem!(arr, 0), de_tuple_elem!(arr, 1)))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        Ok((
            de_tuple_elem!(arr, 0),
            de_tuple_elem!(arr, 1),
            de_tuple_elem!(arr, 2),
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        Ok((
            de_tuple_elem!(arr, 0),
            de_tuple_elem!(arr, 1),
            de_tuple_elem!(arr, 2),
            de_tuple_elem!(arr, 3),
        ))
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .ok_or_else(|| Error::custom("expected IPv4 string"))?
            .parse()
            .map_err(|_| Error::custom("invalid IPv4 address"))
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
            .collect()
    }
}
