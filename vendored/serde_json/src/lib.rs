//! Vendored, offline stand-in for `serde_json`.
//!
//! A thin facade over the vendored `serde` crate's value tree: `to_string`
//! renders compact JSON (objects keep insertion order, floats use Rust's
//! shortest round-trip formatting — the `float_roundtrip` feature is the
//! default and only behavior), `from_str` parses into any `Deserialize`
//! type, and `json!` builds [`Value`]s inline.

pub use serde::{Error, Map, Number, Value};

/// Serialize a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(serde::value::render(&value.to_value()))
}

/// Serialize a value to human-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(pretty(&value.to_value(), 0))
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::value::parse(s)?;
    T::from_value(&v)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

fn pretty(v: &Value, indent: usize) -> String {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            let inner: Vec<String> = items
                .iter()
                .map(|i| format!("{pad_in}{}", pretty(i, indent + 1)))
                .collect();
            format!("[\n{}\n{pad}]", inner.join(",\n"))
        }
        Value::Object(map) if !map.is_empty() => {
            let inner: Vec<String> = map
                .iter()
                .map(|(k, val)| {
                    format!(
                        "{pad_in}{}: {}",
                        serde::value::render(&Value::String(k.clone())),
                        pretty(val, indent + 1)
                    )
                })
                .collect();
            format!("{{\n{}\n{pad}}}", inner.join(",\n"))
        }
        other => serde::value::render(other),
    }
}

/// Build a [`Value`] inline. Supports `null`, array literals, object
/// literals with string-literal keys, and arbitrary serializable
/// expressions in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::to_value(&$value)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("3.0").unwrap(), 3.0);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn float_roundtrips_shortest_repr() {
        for x in [0.1f64, 1e-7, 123456.789, -2.5e300, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "{s}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        for s in [
            "a\"b",
            "back\\slash",
            "tab\there",
            "nl\nhere",
            "❤ éß",
            "\u{0}\u{1f}",
        ] {
            let json = to_string(s).unwrap();
            assert_eq!(from_str::<String>(&json).unwrap(), s, "{json}");
        }
    }

    #[test]
    fn json_macro_builds_objects() {
        let name: Option<String> = None;
        let v = json!({ "a": 1, "b": "x", "missing": name, "list": vec![1u8, 2] });
        assert_eq!(v["a"].as_u64(), Some(1));
        assert!(v["b"].is_string());
        assert!(v["missing"].is_null());
        assert_eq!(v["list"].as_array().unwrap().len(), 2);
        assert_eq!(
            v.to_string(),
            r#"{"a":1,"b":"x","missing":null,"list":[1,2]}"#
        );
    }

    #[test]
    fn parses_nested_documents() {
        let v: Value = from_str(r#"{"xs":[1,2,{"y":null}],"z":-3.5e2}"#).unwrap();
        assert_eq!(v["xs"][2]["y"], Value::Null);
        assert_eq!(v["z"].as_f64(), Some(-350.0));
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A😀");
    }
}
