//! Strategies: deterministic value generators composed by the test macros.

use crate::string::string_regex;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A generator of test values.
///
/// Unlike upstream proptest there is no shrinking tree: a strategy is just a
/// pure function of the deterministic RNG stream, which is enough to make
/// failures reproducible (the stream is seeded by test name).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(!self.is_empty(), "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(!self.is_empty(), "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        let wide = (self.start as f64..self.end as f64).generate(rng) as f32;
        if wide >= self.end {
            self.start
        } else {
            wide
        }
    }
}

/// String literals act as regex-subset strategies, matching proptest's
/// `impl Strategy for &str`. The pattern is compiled on every generate;
/// fine at test scale, and it keeps the impl allocation-free at rest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// A type-erased strategy, usable inside [`OneOf`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// Erase a strategy's concrete type (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Uniform choice between several strategies of the same value type.
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Build from a non-empty set of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}
