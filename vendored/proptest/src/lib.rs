//! Vendored, offline stand-in for `proptest`.
//!
//! Implements the strategy surface this workspace uses: numeric ranges,
//! `Just`, tuples, `collection::vec`, `option::of`, a small regex-subset
//! string generator, `prop_oneof!`, the `proptest!` test macro, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Cases are generated from a deterministic SplitMix64 stream seeded by the
//! test name, so failures reproduce exactly across runs and machines. Set
//! `PROPTEST_CASES` to change the per-test case count (default 64). There
//! is no shrinking: the failing input is printed via the assertion message
//! instead.

pub mod strategy;

pub mod test_runner {
    /// Deterministic SplitMix64 stream driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream seeded from a label (typically the test name).
        pub fn from_label(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in label.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0) is undefined");
            // Multiply-shift; bias is negligible for test generation.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// Number of cases to run per property (reads `PROPTEST_CASES`).
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of elements from `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of an inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Error from an unsupported regex.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "string_regex: {}", self.0)
        }
    }

    /// One regex atom with its repetition bounds.
    #[derive(Debug, Clone)]
    struct Atom {
        /// Candidate characters (flattened classes / singletons).
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Strategy generating strings matching a small regex subset:
    /// sequences of literal characters and `[...]` classes (with ranges and
    /// `\xHH` escapes), each optionally followed by `{n}` or `{m,n}`.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        atoms: Vec<Atom>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
                }
            }
            out
        }
    }

    /// Compile a regex-subset pattern into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let candidates = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1)?;
                    i = next;
                    set
                }
                '\\' => {
                    let (c, next) = parse_escape(&chars, i + 1)?;
                    i = next;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| Error("unterminated {..}".into()))?
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse()
                            .map_err(|_| Error("bad repeat lower bound".into()))?,
                        hi.parse()
                            .map_err(|_| Error("bad repeat upper bound".into()))?,
                    ),
                    None => {
                        let n = body.parse().map_err(|_| Error("bad repeat count".into()))?;
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            if candidates.is_empty() {
                return Err(Error("empty character class".into()));
            }
            atoms.push(Atom {
                chars: candidates,
                min,
                max,
            });
        }
        Ok(RegexGeneratorStrategy { atoms })
    }

    /// Parse a `[...]` class starting just after the `[`; returns the
    /// flattened candidate set and the index after the closing `]`.
    fn parse_class(chars: &[char], mut i: usize) -> Result<(Vec<char>, usize), Error> {
        let mut set = Vec::new();
        let mut pending: Option<char> = None;
        while i < chars.len() {
            match chars[i] {
                ']' => {
                    if let Some(p) = pending {
                        set.push(p);
                    }
                    return Ok((set, i + 1));
                }
                '-' if pending.is_some() && i + 1 < chars.len() && chars[i + 1] != ']' => {
                    let lo = pending.take().expect("pending set");
                    let (hi, next) = if chars[i + 1] == '\\' {
                        parse_escape(chars, i + 2)?
                    } else {
                        (chars[i + 1], i + 2)
                    };
                    i = next;
                    if (lo as u32) > (hi as u32) {
                        return Err(Error(format!("inverted range {lo:?}-{hi:?}")));
                    }
                    for cp in lo as u32..=hi as u32 {
                        if let Some(c) = char::from_u32(cp) {
                            set.push(c);
                        }
                    }
                }
                '\\' => {
                    if let Some(p) = pending.take() {
                        set.push(p);
                    }
                    let (c, next) = parse_escape(chars, i + 1)?;
                    pending = Some(c);
                    i = next;
                }
                c => {
                    if let Some(p) = pending.take() {
                        set.push(p);
                    }
                    pending = Some(c);
                    i += 1;
                }
            }
        }
        Err(Error("unterminated character class".into()))
    }

    /// Parse an escape starting just after the `\`; returns the character
    /// and the index after the escape.
    fn parse_escape(chars: &[char], i: usize) -> Result<(char, usize), Error> {
        match chars.get(i) {
            Some('x') => {
                let hex: String = chars
                    .get(i + 1..i + 3)
                    .ok_or_else(|| Error("truncated \\x escape".into()))?
                    .iter()
                    .collect();
                let cp =
                    u32::from_str_radix(&hex, 16).map_err(|_| Error("bad \\x escape".into()))?;
                Ok((
                    char::from_u32(cp).ok_or_else(|| Error("bad \\x codepoint".into()))?,
                    i + 3,
                ))
            }
            Some('n') => Ok(('\n', i + 1)),
            Some('r') => Ok(('\r', i + 1)),
            Some('t') => Ok(('\t', i + 1)),
            Some(&c) => Ok((c, i + 1)),
            None => Err(Error("truncated escape".into())),
        }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Choose uniformly between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each function runs its body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut rng =
                    $crate::test_runner::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_label("ranges");
        for _ in 0..200 {
            let v = (0u8..8).generate(&mut rng);
            assert!(v < 8);
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::from_label("regex");
        let s = crate::string::string_regex("[a-c]{2,5}").unwrap();
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.chars().count()), "{v:?}");
            assert!(v.chars().all(|c| ('a'..='c').contains(&c)), "{v:?}");
        }
        let wild = crate::string::string_regex("[ -~éß❤\"&<>]{0,40}").unwrap();
        for _ in 0..100 {
            let v = wild.generate(&mut rng);
            assert!(v.chars().count() <= 40);
        }
        let ascii = crate::string::string_regex("[\\x00-\\x7f]{0,10}").unwrap();
        for _ in 0..100 {
            let v = ascii.generate(&mut rng);
            assert!(v.chars().all(|c| (c as u32) < 0x80));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::from_label("oneof");
        let s = prop_oneof![Just(1u8), Just(2), Just(3)].prop_map(|v| v * 10);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v == 10 || v == 20 || v == 30);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(v in 0u64..100, mut xs in crate::collection::vec(0u8..4, 0..6)) {
            prop_assume!(v != 13);
            xs.push(v as u8 % 4);
            prop_assert!(v < 100);
            prop_assert_ne!(v, 13);
            prop_assert_eq!(*xs.last().unwrap(), (v % 4) as u8, "tail must be v mod 4");
        }
    }
}
