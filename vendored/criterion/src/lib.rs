//! Vendored, offline stand-in for `criterion`.
//!
//! A minimal wall-clock bench harness with criterion's API shape:
//! `Criterion`, `benchmark_group`, `Bencher::iter` / `iter_batched`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! Instead of statistical sampling it runs a short warmup, then a fixed
//! number of timed samples, and prints the median per-iteration time.
//!
//! Respects `--bench` (ignored) and treats any other bare CLI argument as a
//! substring filter on benchmark names, like criterion does.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` should trade setup cost against measurement noise.
/// The stub times one routine call per batch regardless, so variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: let caches and lazy statics settle.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// The benchmark driver handed to registered bench functions.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Criterion {
    fn from_args() -> Self {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            // Harness flags cargo-bench passes through; not name filters.
            if arg == "--bench" || arg == "--test" || arg.starts_with('-') {
                continue;
            }
            filter = Some(arg);
        }
        Criterion {
            filter,
            default_sample_size: 20,
        }
    }

    fn wants(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.wants(id) {
            let mut b = Bencher::new(self.default_sample_size);
            f(&mut b);
            println!("bench: {:<55} median {:>12.3?}", id, b.median());
        }
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named group sharing configuration (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.parent.wants(&full) {
            let n = self.sample_size.unwrap_or(self.parent.default_sample_size);
            let mut b = Bencher::new(n);
            f(&mut b);
            println!("bench: {:<55} median {:>12.3?}", full, b.median());
        }
        self
    }

    /// Finish the group (report-flush point in real criterion; no-op here).
    pub fn finish(self) {}
}

/// Bundle bench functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::__new_criterion();
            $($group(&mut c);)+
        }
    };
}

/// Internal constructor used by `criterion_main!`.
#[doc(hidden)]
pub fn __new_criterion() -> Criterion {
    Criterion::from_args()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(5);
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(n, 6); // warmup + samples
        let mut b2 = Bencher::new(3);
        b2.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b2.samples.len(), 3);
        assert!(b2.median() >= Duration::ZERO);
    }
}
