//! Vendored, offline stand-in for `bytes`.
//!
//! [`Bytes`] is a cheaply clonable, immutable byte buffer (`Arc<[u8]>`
//! underneath); [`BytesMut`] is its mutable builder. Only the surface
//! geoserp uses is provided.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: bytes.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "b\"{}\"",
            String::from_utf8_lossy(&self.data).escape_debug()
        )
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes {
            data: s.as_bytes().into(),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes {
            data: iter.into_iter().collect::<Vec<u8>>().into(),
        }
    }
}

/// A mutable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Append bytes.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { data: v.to_vec() }
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(
            self.data
                .iter()
                .map(|&b| serde::Value::Number(serde::Number::PosInt(b as u64)))
                .collect(),
        )
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Bytes {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| serde::Error::custom("expected byte array"))?;
        let mut data = Vec::with_capacity(arr.len());
        for item in arr {
            let n = item
                .as_u64()
                .ok_or_else(|| serde::Error::custom("expected byte"))?;
            data.push(u8::try_from(n).map_err(|_| serde::Error::custom("byte out of range"))?);
        }
        Ok(Bytes { data: data.into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        let b = Bytes::from("hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"x"), Bytes::from(vec![b'x']));
    }

    #[test]
    fn mutate_and_freeze() {
        let mut m = BytesMut::from(&b"abc"[..]);
        m[1] ^= 0x20;
        let frozen = m.freeze();
        assert_eq!(&frozen[..], b"aBc");
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from("shared");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ptr(), b.as_ptr());
    }
}
