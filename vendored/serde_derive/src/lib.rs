//! Vendored, offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the data
//! shapes this workspace actually uses — structs with named fields, tuple
//! structs, and enums whose variants are unit, tuple, or struct shaped —
//! without depending on `syn`/`quote` (the build environment has no network
//! access to fetch them). The generated impls target the vendored `serde`
//! crate's value-tree data model, which `serde_json` then renders.
//!
//! Supported container attribute: `#[serde(skip)]` on named struct fields
//! (omitted when serializing, filled from `Default` when deserializing).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct`/`enum` item, reduced to what codegen needs.
struct Item {
    name: String,
    /// Type parameter names (lifetimes/consts unsupported; bounds dropped).
    generics: Vec<String>,
    kind: Kind,
}

impl Item {
    /// `Name<T, U>` (or plain `Name`) for impl targets.
    fn ty(&self) -> String {
        if self.generics.is_empty() {
            self.name.clone()
        } else {
            format!("{}<{}>", self.name, self.generics.join(", "))
        }
    }

    /// `<T: Bound, U: Bound>` (or empty) for impl headers.
    fn impl_generics(&self, bound: &str) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            let params: Vec<String> = self
                .generics
                .iter()
                .map(|g| format!("{g}: {bound}"))
                .collect();
            format!("<{}>", params.join(", "))
        }
    }
}

enum Kind {
    /// Named-field struct.
    Struct(Vec<Field>),
    /// Tuple struct with the given arity.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum.
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility to find `struct` / `enum`.
    let is_enum = loop {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` and friends carry a parenthesized group.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => break false,
            TokenTree::Ident(id) if id.to_string() == "enum" => break true,
            other => panic!("serde_derive: unexpected token {other}"),
        }
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other}"),
    };
    i += 1;
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            // Collect top-level type-parameter names; skip bounds/defaults.
            let mut depth = 0i32;
            let mut at_param_start = false;
            loop {
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) => match p.as_char() {
                        '<' => {
                            depth += 1;
                            at_param_start = depth == 1;
                        }
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        ',' if depth == 1 => at_param_start = true,
                        '\'' => {
                            panic!("serde_derive: lifetime parameters are not supported ({name})")
                        }
                        _ => at_param_start = false,
                    },
                    Some(TokenTree::Ident(id)) => {
                        let s = id.to_string();
                        if depth == 1 && at_param_start {
                            if s == "const" {
                                panic!("serde_derive: const parameters are not supported ({name})");
                            }
                            generics.push(s);
                        }
                        at_param_start = false;
                    }
                    Some(_) => at_param_start = false,
                    None => panic!("serde_derive: unterminated generics on {name}"),
                }
                i += 1;
            }
        }
    }
    // Skip a `where` clause if present (bounds are re-derived by codegen).
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "where" {
            while let Some(tok) = tokens.get(i) {
                if let TokenTree::Group(g) = tok {
                    if g.delimiter() == Delimiter::Brace {
                        break;
                    }
                }
                if let TokenTree::Punct(p) = tok {
                    if p.as_char() == ';' {
                        break;
                    }
                }
                i += 1;
            }
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if is_enum {
                Kind::Enum(parse_variants(&body))
            } else {
                Kind::Struct(parse_named_fields(&body))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Kind::Tuple(
            count_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>()),
        ),
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
        other => panic!("serde_derive: unexpected item body {other:?}"),
    };
    Item {
        name,
        generics,
        kind,
    }
}

/// Consume attributes starting at `*i`, returning whether `#[serde(skip)]`
/// was among them.
fn eat_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        if args.stream().to_string().contains("skip") {
                            skip = true;
                        }
                    }
                }
            }
        }
        *i += 2;
    }
    skip
}

/// Skip a `pub` / `pub(...)` visibility marker if present.
fn eat_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Advance past a type, stopping at a top-level `,` (angle-bracket aware —
/// commas inside `Vec<(A, B)>` or `HashMap<K, V>` are not field separators).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = eat_attrs(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        eat_vis(tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1; // name
        i += 1; // `:`
        skip_type(tokens, &mut i);
        i += 1; // `,` (or past the end)
        fields.push(Field { name, skip });
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for (idx, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if idx + 1 == tokens.len() {
                        trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        eat_attrs(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Struct(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "m.insert(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::Unit => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => {{\n\
                         let mut m = ::serde::Map::new();\n\
                         m.insert(\"{vn}\".to_string(), ::serde::Serialize::to_value(f0));\n\
                         ::serde::Value::Object(m)\n}}\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(\"{vn}\".to_string(), ::serde::Value::Array(vec![{elems}]));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds = binds.join(", "),
                            elems = elems.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from("let mut fm = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(\"{n}\".to_string(), ::serde::Serialize::to_value({n}));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(\"{vn}\".to_string(), ::serde::Value::Object(fm));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        generics = item.impl_generics("::serde::Serialize"),
        ty = item.ty()
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let mut s = format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 \"expected object for {name}\"))?;\n"
            );
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                if f.skip {
                    s.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    s.push_str(&format!(
                        "{n}: ::serde::from_field(obj, \"{n}\")?,\n",
                        n = f.name
                    ));
                }
            }
            s.push_str("})");
            s
        }
        Kind::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::Tuple(n) => {
            let mut s = format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::Error::custom(\
                 \"expected array for {name}\"))?;\n\
                 if arr.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 \"wrong tuple arity for {name}\"));\n}}\n"
            );
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            s.push_str(&format!(
                "::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            ));
            s
        }
        Kind::Unit => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            // Unit variants arrive as strings; payload variants as
            // single-key objects.
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // Also accept the {"Variant": null} object form.
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    Shape::Tuple(1) => keyed_arms.push_str(&format!(
                        "\"{vn}\" => return ::std::result::Result::Ok(\
                         {name}::{vn}(::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let arr = payload.as_array().ok_or_else(|| ::serde::Error::custom(\
                             \"expected array payload for {name}::{vn}\"))?;\n\
                             if arr.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                             \"wrong arity for {name}::{vn}\"));\n}}\n\
                             return ::std::result::Result::Ok({name}::{vn}({elems}));\n}}\n",
                            elems = elems.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{n}: ::serde::from_field(obj, \"{n}\")?,\n",
                                n = f.name
                            ));
                        }
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let obj = payload.as_object().ok_or_else(|| ::serde::Error::custom(\
                             \"expected object payload for {name}::{vn}\"))?;\n\
                             return ::std::result::Result::Ok({name}::{vn} {{ {inits} }});\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                 match s {{\n{unit_arms}\
                 _ => return ::std::result::Result::Err(::serde::Error::custom(\
                 \"unknown variant for {name}\")),\n}}\n}}\n\
                 if let ::std::option::Option::Some(obj) = v.as_object() {{\n\
                 if let ::std::option::Option::Some((key, payload)) = obj.iter().next() {{\n\
                 match key.as_str() {{\n{keyed_arms}\
                 _ => return ::std::result::Result::Err(::serde::Error::custom(\
                 \"unknown variant for {name}\")),\n}}\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected string or single-key object for {name}\"))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Deserialize for {ty} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n",
        generics = item.impl_generics("::serde::Deserialize"),
        ty = item.ty()
    )
}
