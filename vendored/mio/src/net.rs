//! Nonblocking TCP types: thin wrappers over `std::net` with the sockets
//! forced into nonblocking mode and wired into the reactor via
//! [`event::Source`].
//!
//! [`event::Source`]: crate::event::Source

use crate::{event, Interest, Registry, Token};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr};
use std::os::unix::io::AsRawFd;

/// A nonblocking TCP listener.
#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Bind `addr` and set the listener nonblocking.
    ///
    /// # Errors
    /// Propagates bind / fcntl failure.
    pub fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
        Self::from_std_checked(std::net::TcpListener::bind(addr)?)
    }

    /// Adopt an already bound std listener, forcing it nonblocking.
    ///
    /// # Errors
    /// Propagates fcntl failure.
    pub fn from_std_checked(inner: std::net::TcpListener) -> io::Result<TcpListener> {
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// Accept one pending connection; the stream comes back nonblocking.
    ///
    /// # Errors
    /// `WouldBlock` when no connection is pending; otherwise the accept
    /// error.
    pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        let (stream, peer) = self.inner.accept()?;
        Ok((TcpStream::from_std_checked(stream)?, peer))
    }

    /// The bound address.
    ///
    /// # Errors
    /// Propagates getsockname failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

impl event::Source for TcpListener {
    fn register(
        &mut self,
        registry: &Registry,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        registry.register_fd(self.inner.as_raw_fd(), token, interests)
    }

    fn reregister(
        &mut self,
        registry: &Registry,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        registry.reregister_fd(self.inner.as_raw_fd(), token, interests)
    }

    fn deregister(&mut self, registry: &Registry) -> io::Result<()> {
        registry.deregister_fd(self.inner.as_raw_fd())
    }
}

/// A nonblocking TCP stream.
#[derive(Debug)]
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Adopt a std stream, forcing it nonblocking.
    ///
    /// # Errors
    /// Propagates fcntl failure.
    pub fn from_std_checked(inner: std::net::TcpStream) -> io::Result<TcpStream> {
        inner.set_nonblocking(true)?;
        Ok(TcpStream { inner })
    }

    /// The remote peer's address.
    ///
    /// # Errors
    /// Propagates getpeername failure (e.g. on a reset connection).
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// Enable/disable Nagle's algorithm.
    ///
    /// # Errors
    /// Propagates setsockopt failure.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// Shut down one or both halves of the connection.
    ///
    /// # Errors
    /// Propagates shutdown failure.
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        self.inner.shutdown(how)
    }
}

impl Read for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Write for TcpStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl event::Source for TcpStream {
    fn register(
        &mut self,
        registry: &Registry,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        registry.register_fd(self.inner.as_raw_fd(), token, interests)
    }

    fn reregister(
        &mut self,
        registry: &Registry,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        registry.reregister_fd(self.inner.as_raw_fd(), token, interests)
    }

    fn deregister(&mut self, registry: &Registry) -> io::Result<()> {
        registry.deregister_fd(self.inner.as_raw_fd())
    }
}
