#![warn(missing_docs)]
//! Vendored, offline stand-in for `mio`: a minimal epoll-backed readiness
//! reactor.
//!
//! Implements the exact slice of mio's API this workspace uses — [`Poll`],
//! [`Registry`], [`Events`], [`Token`], [`Interest`], [`Waker`], and
//! nonblocking [`net::TcpListener`] / [`net::TcpStream`] wrappers — on raw
//! `epoll(7)` / `eventfd(2)` syscalls declared directly against the libc
//! that Rust's std already links (the build environment has no registry
//! access, so no `libc` crate either).
//!
//! Semantics follow real mio:
//!
//! * every registration is **edge-triggered** (`EPOLLET | EPOLLRDHUP`) —
//!   consumers must read/write until `WouldBlock`;
//! * sockets handed out by [`net::TcpListener::accept`] are already
//!   nonblocking;
//! * a [`Waker`] is an `eventfd` registered on the poller; `wake()` is safe
//!   to call from any thread.
//!
//! Linux-only by design: this crate *is* the epoll reactor the serve tier
//! builds on. Porting would mean a kqueue/poll selector behind the same
//! API, which no supported build environment needs today.

#[cfg(not(target_os = "linux"))]
compile_error!(
    "vendored mio implements the epoll selector only; \
     this workspace builds on Linux (see vendored/mio/src/lib.rs)"
);

use std::io;
use std::os::unix::io::RawFd;
use std::sync::Arc;
use std::time::Duration;

pub mod event;
pub mod net;
mod sys;

/// Identifies a registered event source in the [`Events`] a poll returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combine two interests.
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include read readiness?
    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Does this interest include write readiness?
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness event delivered by [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    flags: u32,
    data: u64,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        Token(self.data as usize)
    }

    /// Read readiness (includes errors/hangups, which a read will surface).
    pub fn is_readable(&self) -> bool {
        self.flags & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0
    }

    /// Write readiness (includes errors, which a write will surface).
    pub fn is_writable(&self) -> bool {
        self.flags & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// The peer closed its write half (or the whole connection).
    pub fn is_read_closed(&self) -> bool {
        self.flags & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }

    /// The socket is in an error state.
    pub fn is_error(&self) -> bool {
        self.flags & sys::EPOLLERR != 0
    }
}

/// A buffer of readiness events, filled by [`Poll::poll`].
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// An empty buffer able to hold `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
        }
    }

    /// Iterate the events the last poll delivered.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Were any events delivered?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drop all buffered events.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// The epoll instance plus its registration handle.
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Create a fresh epoll instance.
    ///
    /// # Errors
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                selector: Arc::new(sys::Selector::new()?),
            },
        })
    }

    /// The handle used to (de)register event sources.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Wait for readiness events, blocking at most `timeout`
    /// (`None` = indefinitely). Delivered events replace the previous
    /// contents of `events`.
    ///
    /// # Errors
    /// Propagates `epoll_wait` failure; `EINTR` is retried internally.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        self.registry
            .selector
            .select(&mut events.inner, events.capacity, timeout)
    }
}

/// Registration handle for a [`Poll`]; cheap to clone across threads.
pub struct Registry {
    selector: Arc<sys::Selector>,
}

impl Registry {
    /// Register `source` for edge-triggered readiness under `token`.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure (e.g. double registration).
    pub fn register<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.register(self, token, interests)
    }

    /// Change the token/interest of an already registered `source`.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure (e.g. source never registered).
    pub fn reregister<S: event::Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        source.reregister(self, token, interests)
    }

    /// Remove `source` from the poller.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure.
    pub fn deregister<S: event::Source + ?Sized>(&self, source: &mut S) -> io::Result<()> {
        source.deregister(self)
    }

    /// Another handle to the same poller.
    ///
    /// # Errors
    /// Never fails in this stand-in; kept fallible for mio compatibility.
    pub fn try_clone(&self) -> io::Result<Registry> {
        Ok(Registry {
            selector: Arc::clone(&self.selector),
        })
    }

    pub(crate) fn register_fd(
        &self,
        fd: RawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.selector.register(fd, token, interests)
    }

    pub(crate) fn reregister_fd(
        &self,
        fd: RawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.selector.reregister(fd, token, interests)
    }

    pub(crate) fn deregister_fd(&self, fd: RawFd) -> io::Result<()> {
        self.selector.deregister(fd)
    }
}

/// Wakes a [`Poll`] from any thread: an `eventfd` registered on the poller.
///
/// Each `wake()` makes the poller return an event carrying the waker's
/// token. The eventfd counter is drained lazily on overflow, so `wake()`
/// never blocks.
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Create a waker delivering `token` on `registry`'s poller.
    ///
    /// # Errors
    /// Propagates `eventfd` / `epoll_ctl` failure.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let fd = sys::eventfd_nonblocking()?;
        if let Err(e) = registry.register_fd(fd, token, Interest::READABLE) {
            sys::close_fd(fd);
            return Err(e);
        }
        Ok(Waker { fd })
    }

    /// Make the poller return (now, or on its next `poll`).
    ///
    /// # Errors
    /// Propagates write failure on the eventfd (not expected in practice).
    pub fn wake(&self) -> io::Result<()> {
        match sys::eventfd_write(self.fd, 1) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Counter saturated: drain and re-signal.
                let _ = sys::eventfd_read(self.fd);
                sys::eventfd_write(self.fd, 1)
            }
            other => other,
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

// Safety: the waker only carries an owned fd; eventfd writes are
// thread-safe.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn interest_combinators() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }

    #[test]
    fn waker_wakes_a_blocked_poll() {
        let mut poll = Poll::new().unwrap();
        let waker = Waker::new(poll.registry(), Token(7)).unwrap();
        let mut events = Events::with_capacity(4);
        // Without a wake the poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let tokens: Vec<Token> = events.iter().map(|e| e.token()).collect();
        assert_eq!(tokens, vec![Token(7)]);
        // Repeated wakes keep working (edge re-arms on each write).
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(!events.is_empty());
    }

    #[test]
    fn tcp_accept_read_write_via_readiness() {
        let mut poll = Poll::new().unwrap();
        let addr: std::net::SocketAddr = "127.0.0.1:0".parse().unwrap();
        let mut listener = net::TcpListener::bind(addr).unwrap();
        let local = listener.local_addr().unwrap();
        poll.registry()
            .register(&mut listener, Token(0), Interest::READABLE)
            .unwrap();

        // Nonblocking accept with nothing pending: WouldBlock.
        assert_eq!(
            listener.accept().unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );

        let mut client = std::net::TcpStream::connect(local).unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(0) && e.is_readable()));

        let (mut served, peer) = listener.accept().unwrap();
        assert_eq!(peer.ip(), local.ip());
        poll.registry()
            .register(&mut served, Token(1), Interest::READABLE)
            .unwrap();

        client.write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(1) && e.is_readable()));
        let mut buf = [0u8; 16];
        let n = served.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        // Edge consumed; further reads would block.
        assert_eq!(
            served.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );

        served.write_all(b"pong").unwrap();
        let mut back = [0u8; 4];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"pong");

        // Peer close is visible as read readiness / read-closed.
        drop(client);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(1) && (e.is_read_closed() || e.is_readable())));
        poll.registry().deregister(&mut served).unwrap();
    }

    #[test]
    fn reregister_switches_interest() {
        let mut poll = Poll::new().unwrap();
        let addr: std::net::SocketAddr = "127.0.0.1:0".parse().unwrap();
        let mut listener = net::TcpListener::bind(addr).unwrap();
        let local = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(local).unwrap();
        // Blocking-accept path not used: poll for readability first.
        poll.registry()
            .register(&mut listener, Token(0), Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let (mut served, _) = listener.accept().unwrap();

        // WRITABLE interest on a fresh socket fires immediately.
        poll.registry()
            .register(&mut served, Token(2), Interest::WRITABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(2) && e.is_writable()));

        // Re-register under a different token and interest.
        poll.registry()
            .reregister(&mut served, Token(3), Interest::READABLE)
            .unwrap();
        (&client).write_all(b"x").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == Token(3) && e.is_readable()));
        drop(client);
    }
}
