//! Event sources: anything an fd-backed type can do to join a [`Poll`].
//!
//! [`Poll`]: crate::Poll

use crate::{Interest, Registry, Token};
use std::io;

pub use crate::Event;

/// An fd-backed type that can be registered with a [`crate::Poll`].
pub trait Source {
    /// Add this source to the poller under `token`.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure.
    fn register(
        &mut self,
        registry: &Registry,
        token: Token,
        interests: Interest,
    ) -> io::Result<()>;

    /// Update this source's token/interest on the poller.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure.
    fn reregister(
        &mut self,
        registry: &Registry,
        token: Token,
        interests: Interest,
    ) -> io::Result<()>;

    /// Remove this source from the poller.
    ///
    /// # Errors
    /// Propagates `epoll_ctl` failure.
    fn deregister(&mut self, registry: &Registry) -> io::Result<()>;
}
