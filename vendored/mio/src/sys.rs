//! Raw epoll / eventfd bindings, declared straight against the system libc
//! (std already links it; no `libc` crate in the offline build).

use crate::{Event, Interest, Token};
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

const EINTR: i32 = 4;

/// `struct epoll_event`; packed on x86 ABIs, as in the kernel headers.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

fn interests_to_epoll(interests: Interest) -> u32 {
    let mut flags = EPOLLET | EPOLLRDHUP;
    if interests.is_readable() {
        flags |= EPOLLIN;
    }
    if interests.is_writable() {
        flags |= EPOLLOUT;
    }
    flags
}

/// One epoll instance.
pub(crate) struct Selector {
    epfd: RawFd,
}

impl Selector {
    pub(crate) fn new() -> io::Result<Selector> {
        // Safety: plain syscall, no pointers.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Selector { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut ev = event;
        let ptr = ev
            .as_mut()
            .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        // Safety: `ptr` is null (DEL) or points at a live EpollEvent.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })?;
        Ok(())
    }

    pub(crate) fn register(&self, fd: RawFd, token: Token, interests: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interests_to_epoll(interests),
                data: token.0 as u64,
            }),
        )
    }

    pub(crate) fn reregister(
        &self,
        fd: RawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interests_to_epoll(interests),
                data: token.0 as u64,
            }),
        )
    }

    pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    pub(crate) fn select(
        &self,
        out: &mut Vec<Event>,
        capacity: usize,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 1ns timeout still sleeps ~1ms instead of spinning.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        let mut raw: Vec<EpollEvent> = vec![EpollEvent { events: 0, data: 0 }; capacity];
        let n = loop {
            // Safety: `raw` outlives the call and holds `capacity` entries.
            let ret =
                unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), capacity as i32, timeout_ms) };
            match cvt(ret) {
                Ok(n) => break n as usize,
                Err(e) if e.raw_os_error() == Some(EINTR) => continue,
                Err(e) => return Err(e),
            }
        };
        out.clear();
        for ev in &raw[..n] {
            // Copy fields out (the struct may be packed; plain loads would
            // be misaligned references).
            let (flags, data) = (ev.events, ev.data);
            out.push(Event { flags, data });
        }
        Ok(())
    }
}

impl Drop for Selector {
    fn drop(&mut self) {
        close_fd(self.epfd);
    }
}

// Safety: epoll fds are safely usable from multiple threads.
unsafe impl Send for Selector {}
unsafe impl Sync for Selector {}

pub(crate) fn eventfd_nonblocking() -> io::Result<RawFd> {
    // Safety: plain syscall, no pointers.
    cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

pub(crate) fn eventfd_write(fd: RawFd, value: u64) -> io::Result<()> {
    let buf = value.to_ne_bytes();
    // Safety: `buf` is 8 live bytes, the size eventfd requires.
    let n = unsafe { write(fd, buf.as_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(())
    }
}

pub(crate) fn eventfd_read(fd: RawFd) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    // Safety: `buf` is 8 live bytes, the size eventfd requires.
    let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(u64::from_ne_bytes(buf))
    }
}

pub(crate) fn close_fd(fd: RawFd) {
    // Safety: plain syscall; double-close is the caller's responsibility
    // and every call site owns its fd exclusively.
    let _ = unsafe { close(fd) };
}
