//! Vendored, offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` with parking_lot's non-poisoning API
//! (`lock()` / `read()` / `write()` return guards directly). Poisoning is
//! translated into a panic propagation, which matches parking_lot's
//! behavior closely enough for this workspace: a panic while holding a lock
//! already aborts the affected test or crawl.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock (non-poisoning facade over `std::sync::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock (non-poisoning facade over `std::sync::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
