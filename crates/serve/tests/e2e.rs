//! End-to-end socket tests: the determinism contract (a served page is
//! byte-identical to the simulated path's page), hostile-input behavior over
//! real connections, keep-alive, backpressure, rate limiting, observability
//! endpoints, and graceful shutdown.

use geoserp_engine::{EngineConfig, SearchEngine, SearchService, GEOLOCATION_HEADER, SEARCH_HOST};
use geoserp_geo::{Seed, UsGeography};
use geoserp_net::{
    encode_request, ip, parse_response, Request, Response, SimNet, Status, WireLimits,
};
use geoserp_serve::{LoadgenConfig, ServeConfig, ServedWorld, SocketServer};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 2015;

fn world() -> ServedWorld {
    ServedWorld::build(SEED, EngineConfig::paper_defaults()).unwrap()
}

/// The simulated reference: the same world seed behind a [`SimNet`], DNS
/// pinned to datacenter 0 — mirroring how the socket server dispatches.
fn sim_reference() -> (UsGeography, Arc<SimNet>) {
    let world_seed = Seed::new(SEED);
    let geo = UsGeography::generate(world_seed);
    let corpus = Arc::new(geoserp_corpus::WebCorpus::generate(&geo, world_seed));
    let net = Arc::new(SimNet::builder(Seed::new(7)).build());
    let engine = Arc::new(
        SearchEngine::builder(corpus, &geo, world_seed)
            .config(EngineConfig::paper_defaults())
            .obs(Arc::clone(net.obs()))
            .build()
            .unwrap(),
    );
    let addrs = SearchService::install(&net, engine);
    net.dns().pin(SEARCH_HOST, addrs[0]);
    (geo, net)
}

/// Send raw bytes, half-close, read the full reply.
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // The server may reply and close before the client finishes writing
    // (e.g. an oversized head gets its 400 mid-upload) — tolerate that.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);
    let mut out = Vec::new();
    stream.read_to_end(&mut out).ok();
    out
}

/// Read exactly one response off an open connection.
fn read_response(stream: &mut TcpStream) -> Option<Response> {
    let limits = WireLimits::new().max_body_bytes(8 * 1024 * 1024);
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some((resp, used)) = parse_response(&buf, &limits).ok()? {
            assert_eq!(used, buf.len(), "no trailing bytes after one response");
            return Some(resp);
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
}

/// One request over a fresh TCP connection.
fn request_tcp(addr: SocketAddr, req: &Request) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&encode_request(req).unwrap()).unwrap();
    read_response(&mut stream).expect("server must reply")
}

fn search_req(geo: &UsGeography, q: &str) -> Request {
    Request::get(SEARCH_HOST, "/search")
        .with_query("q", q)
        .with_header(
            GEOLOCATION_HEADER,
            geo.cuyahoga_districts[0].coord.to_gps_string(),
        )
        .with_header("User-Agent", "Mozilla/5.0 (iPhone; Safari 8)")
}

#[test]
fn served_pages_are_byte_identical_to_the_sim_path() {
    let (geo, net) = sim_reference();
    let world = world();
    let server = SocketServer::start("127.0.0.1:0", &world, ServeConfig::new()).unwrap();
    let addr = server.local_addr();

    // The simulated client and the TCP client share the loopback source
    // address, so the mirrored sequence numbers line up request-for-request.
    for query in ["Hospital", "starbuks", "Coffee"] {
        let req = search_req(&geo, query);
        let (sim_resp, _) = net.request(ip("127.0.0.1"), &req).unwrap();
        let tcp_resp = request_tcp(addr, &req);
        assert_eq!(
            tcp_resp, sim_resp,
            "query {query:?}: served response must equal the simulated one"
        );
        assert_eq!(tcp_resp.status, Status::Ok);
        assert_eq!(tcp_resp.header("X-Datacenter"), Some("dc0"));
        // Both pages parse to the same SERP, byte for byte.
        assert_eq!(tcp_resp.body, sim_resp.body);
        assert!(geoserp_serp::parse(&tcp_resp.body_text()).is_ok());
    }
    server.shutdown();
}

#[test]
fn hostile_inputs_get_400s_and_never_kill_the_server() {
    let (geo, _) = sim_reference();
    let world = world();
    let server = SocketServer::start(
        "127.0.0.1:0",
        &world,
        ServeConfig::new().limits(WireLimits::new().max_head_bytes(4096)),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut oversized = b"GET / HTTP/1.1\r\nHost: h\r\nX-Pad: ".to_vec();
    oversized.extend(std::iter::repeat_n(b'x', 8192));
    oversized.extend_from_slice(b"\r\n\r\n");
    let corpus: Vec<(&str, Vec<u8>)> = vec![
        (
            "unknown method",
            b"BREW /pot HTTP/1.1\r\nHost: h\r\n\r\n".to_vec(),
        ),
        ("garbage bytes", b"\x00\xff\x13\x37garbage\r\n\r\n".to_vec()),
        ("truncated request", b"GET /sea".to_vec()),
        ("missing host", b"GET / HTTP/1.1\r\n\r\n".to_vec()),
        ("oversized head", oversized),
        (
            "bad content length",
            b"GET / HTTP/1.1\r\nHost: h\r\nContent-Length: ten\r\n\r\n".to_vec(),
        ),
    ];
    for (label, bytes) in &corpus {
        let reply = send_raw(addr, bytes);
        assert!(!reply.is_empty(), "{label}: server must reply, not hang up");
        let (resp, _) = parse_response(&reply, &WireLimits::default())
            .unwrap_or_else(|e| panic!("{label}: unparseable reply: {e}"))
            .unwrap_or_else(|| panic!("{label}: truncated reply"));
        assert_eq!(resp.status, Status::BadRequest, "{label}");
    }

    // After the whole corpus, the server still serves good requests.
    let resp = request_tcp(addr, &search_req(&geo, "Hospital"));
    assert_eq!(resp.status, Status::Ok);
    server.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_per_connection() {
    let (geo, _) = sim_reference();
    let world = world();
    let server = SocketServer::start("127.0.0.1:0", &world, ServeConfig::new()).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for query in ["Hospital", "Bank", "Park"] {
        stream
            .write_all(&encode_request(&search_req(&geo, query)).unwrap())
            .unwrap();
        let resp = read_response(&mut stream).expect("keep-alive reply");
        assert_eq!(resp.status, Status::Ok, "{query}");
    }
    drop(stream);

    // keep_alive(false): the server answers one request and closes.
    let server2 =
        SocketServer::start("127.0.0.1:0", &world, ServeConfig::new().keep_alive(false)).unwrap();
    let mut stream = TcpStream::connect(server2.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(&encode_request(&search_req(&geo, "Hospital")).unwrap())
        .unwrap();
    assert!(read_response(&mut stream).is_some());
    stream
        .write_all(&encode_request(&search_req(&geo, "Bank")).unwrap())
        .ok();
    assert!(
        read_response(&mut stream).is_none(),
        "without keep-alive the connection must close after one response"
    );
    server.shutdown();
    server2.shutdown();
}

#[test]
fn healthz_and_metrics_expose_the_shared_hub() {
    let (geo, _) = sim_reference();
    let world = world();
    let server = SocketServer::start("127.0.0.1:0", &world, ServeConfig::new()).unwrap();
    let addr = server.local_addr();

    let health = request_tcp(addr, &Request::get(SEARCH_HOST, "/healthz"));
    assert_eq!(health.status, Status::Ok);
    assert_eq!(health.body_text(), "ok\n");

    assert_eq!(
        request_tcp(addr, &search_req(&geo, "Hospital")).status,
        Status::Ok
    );
    let metrics = request_tcp(addr, &Request::get(SEARCH_HOST, "/metrics"));
    assert_eq!(metrics.status, Status::Ok);
    let text = metrics.body_text();
    assert!(
        text.contains("# TYPE geoserp_serve_requests counter"),
        "{text}"
    );
    assert!(text.contains("geoserp_engine_queries 1"), "{text}");
    server.shutdown();
}

#[test]
fn serve_layer_rate_limit_returns_429() {
    let (geo, _) = sim_reference();
    let world = world();
    let server = SocketServer::start(
        "127.0.0.1:0",
        &world,
        ServeConfig::new().rate_limit(3, 60_000),
    )
    .unwrap();
    let addr = server.local_addr();
    for _ in 0..3 {
        assert_eq!(
            request_tcp(addr, &search_req(&geo, "Bank")).status,
            Status::Ok
        );
    }
    let resp = request_tcp(addr, &search_req(&geo, "Bank"));
    assert_eq!(resp.status, Status::TooManyRequests);
    assert_eq!(resp.header("X-Reason"), Some("serve-layer rate limit"));
    // Probes are exempt: health stays green while search is throttled.
    assert_eq!(
        request_tcp(addr, &Request::get(SEARCH_HOST, "/healthz")).status,
        Status::Ok
    );
    server.shutdown();
}

#[test]
fn full_accept_queue_sheds_load_with_503() {
    let world = world();
    let server = SocketServer::start(
        "127.0.0.1:0",
        &world,
        ServeConfig::new()
            .workers(1)
            .queue_depth(1)
            .read_timeout_ms(3_000),
    )
    .unwrap();
    let addr = server.local_addr();

    // Occupy the single worker with a connection that never completes a
    // request, and fill the one queue slot with a second idle connection.
    let stall_worker = TcpStream::connect(addr).unwrap();
    stall_worker.set_nodelay(true).ok();
    (&stall_worker).write_all(b"GET /sl").unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let _fill_queue = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // Subsequent connections must be shed with an inline 503.
    let mut shed = false;
    for _ in 0..5 {
        let mut probe = TcpStream::connect(addr).unwrap();
        probe
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        if let Some(resp) = read_response(&mut probe) {
            assert_eq!(resp.status, Status::ServiceUnavailable);
            assert_eq!(resp.header("X-Reason"), Some("accept queue full"));
            shed = true;
            break;
        }
    }
    assert!(
        shed,
        "expected at least one 503 while the pool was saturated"
    );
    drop(stall_worker);
    server.shutdown();
}

#[test]
fn shutdown_drains_and_stops_accepting() {
    let (geo, _) = sim_reference();
    let world = world();
    let server = SocketServer::start(
        "127.0.0.1:0",
        &world,
        ServeConfig::new().read_timeout_ms(500),
    )
    .unwrap();
    let addr = server.local_addr();
    assert_eq!(
        request_tcp(addr, &search_req(&geo, "Hospital")).status,
        Status::Ok
    );
    server.shutdown();
    // Every thread is joined by the time shutdown returns; a new connection
    // must not be served.
    let served_after = TcpStream::connect(addr).is_ok_and(|mut s| {
        s.set_read_timeout(Some(Duration::from_millis(500))).ok();
        s.write_all(&encode_request(&search_req(&geo, "Bank")).unwrap())
            .is_ok()
            && read_response(&mut s).is_some()
    });
    assert!(!served_after, "server answered after shutdown");
}

#[test]
fn loadgen_measures_the_server() {
    let report = geoserp_serve::loadgen::run_matrix(SEED, &[2], 60, 3).unwrap();
    assert_eq!(report.entries.len(), 2, "keep-alive on and off");
    for e in &report.entries {
        assert_eq!(e.workers, 2);
        assert_eq!(e.report.ok + e.report.errors, 60);
        assert!(e.report.ok > 0, "some requests must succeed: {e:?}");
        assert!(e.report.throughput_rps > 0.0);
        assert!(e.report.p50_us > 0);
        assert!(e.report.p99_us >= e.report.p50_us);
    }
    let json = report.to_json();
    assert!(json.contains("\"throughput_rps\""), "{json}");

    // Single-target mode against a live server.
    let world = world();
    let server = SocketServer::start(
        "127.0.0.1:0",
        &world,
        ServeConfig::new().rate_limit(usize::MAX / 2, 60_000),
    )
    .unwrap();
    let single = geoserp_serve::loadgen::run(
        &server.local_addr().to_string(),
        &LoadgenConfig::new().requests(20).concurrency(2),
    )
    .unwrap();
    assert_eq!(single.requests, 20);
    assert!(single.errors > 0 || single.ok > 0);
    server.shutdown();
}
