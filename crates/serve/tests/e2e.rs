//! End-to-end socket tests: the determinism contract (a served page is
//! byte-identical to the simulated path's page), hostile-input behavior over
//! real connections, keep-alive, backpressure, rate limiting, observability
//! endpoints, and graceful shutdown — every contract test runs against
//! **both** serving cores ([`ServeBackend::Blocking`] and
//! [`ServeBackend::Epoll`]), which is what licenses calling them
//! interchangeable.

use geoserp_engine::{EngineConfig, SearchEngine, SearchService, GEOLOCATION_HEADER, SEARCH_HOST};
use geoserp_geo::{Seed, UsGeography};
use geoserp_net::{
    encode_request, ip, parse_response, Request, Response, SimNet, Status, WireLimits,
};
use geoserp_serve::{LoadgenConfig, ServeBackend, ServeConfig, ServedWorld, SocketServer};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 2015;

fn world() -> ServedWorld {
    ServedWorld::build(SEED, EngineConfig::paper_defaults()).unwrap()
}

/// The simulated reference: the same world seed behind a [`SimNet`], DNS
/// pinned to datacenter 0 — mirroring how the socket server dispatches.
fn sim_reference() -> (UsGeography, Arc<SimNet>) {
    let world_seed = Seed::new(SEED);
    let geo = UsGeography::generate(world_seed);
    let corpus = Arc::new(geoserp_corpus::WebCorpus::generate(&geo, world_seed));
    let net = Arc::new(SimNet::builder(Seed::new(7)).build());
    let engine = Arc::new(
        SearchEngine::builder(corpus, &geo, world_seed)
            .config(EngineConfig::paper_defaults())
            .obs(Arc::clone(net.obs()))
            .build()
            .unwrap(),
    );
    let addrs = SearchService::install(&net, engine);
    net.dns().pin(SEARCH_HOST, addrs[0]);
    (geo, net)
}

/// Send raw bytes, half-close, read the full reply.
fn send_raw(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // The server may reply and close before the client finishes writing
    // (e.g. an oversized head gets its 400 mid-upload) — tolerate that.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);
    let mut out = Vec::new();
    stream.read_to_end(&mut out).ok();
    out
}

/// Read exactly one response off an open connection.
fn read_response(stream: &mut TcpStream) -> Option<Response> {
    let limits = WireLimits::new().max_body_bytes(8 * 1024 * 1024);
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some((resp, used)) = parse_response(&buf, &limits).ok()? {
            assert_eq!(used, buf.len(), "no trailing bytes after one response");
            return Some(resp);
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
}

/// One request over a fresh TCP connection.
fn request_tcp(addr: SocketAddr, req: &Request) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&encode_request(req).unwrap()).unwrap();
    read_response(&mut stream).expect("server must reply")
}

fn search_req(geo: &UsGeography, q: &str) -> Request {
    Request::get(SEARCH_HOST, "/search")
        .with_query("q", q)
        .with_header(
            GEOLOCATION_HEADER,
            geo.cuyahoga_districts[0].coord.to_gps_string(),
        )
        .with_header("User-Agent", "Mozilla/5.0 (iPhone; Safari 8)")
}

fn byte_identity_contract(backend: ServeBackend) {
    let (geo, net) = sim_reference();
    let world = world();
    let server =
        SocketServer::start("127.0.0.1:0", &world, ServeConfig::new().backend(backend)).unwrap();
    let addr = server.local_addr();

    // The simulated client and the TCP client share the loopback source
    // address, so the mirrored sequence numbers line up request-for-request.
    for query in ["Hospital", "starbuks", "Coffee"] {
        let req = search_req(&geo, query);
        let (sim_resp, _) = net.request(ip("127.0.0.1"), &req).unwrap();
        let tcp_resp = request_tcp(addr, &req);
        assert_eq!(
            tcp_resp, sim_resp,
            "{backend}: query {query:?}: served response must equal the simulated one"
        );
        assert_eq!(tcp_resp.status, Status::Ok);
        assert_eq!(tcp_resp.header("X-Datacenter"), Some("dc0"));
        // Both pages parse to the same SERP, byte for byte.
        assert_eq!(tcp_resp.body, sim_resp.body);
        assert!(geoserp_serp::parse(&tcp_resp.body_text()).is_ok());
    }
    server.shutdown();
}

#[test]
fn served_pages_are_byte_identical_to_the_sim_path_blocking() {
    byte_identity_contract(ServeBackend::Blocking);
}

#[test]
fn served_pages_are_byte_identical_to_the_sim_path_epoll() {
    byte_identity_contract(ServeBackend::Epoll);
}

fn hostile_inputs_contract(backend: ServeBackend) {
    let (geo, _) = sim_reference();
    let world = world();
    let server = SocketServer::start(
        "127.0.0.1:0",
        &world,
        ServeConfig::new()
            .backend(backend)
            .limits(WireLimits::new().max_head_bytes(4096)),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut oversized = b"GET / HTTP/1.1\r\nHost: h\r\nX-Pad: ".to_vec();
    oversized.extend(std::iter::repeat_n(b'x', 8192));
    oversized.extend_from_slice(b"\r\n\r\n");
    let corpus: Vec<(&str, Vec<u8>)> = vec![
        (
            "unknown method",
            b"BREW /pot HTTP/1.1\r\nHost: h\r\n\r\n".to_vec(),
        ),
        ("garbage bytes", b"\x00\xff\x13\x37garbage\r\n\r\n".to_vec()),
        ("truncated request", b"GET /sea".to_vec()),
        ("missing host", b"GET / HTTP/1.1\r\n\r\n".to_vec()),
        ("oversized head", oversized),
        (
            "bad content length",
            b"GET / HTTP/1.1\r\nHost: h\r\nContent-Length: ten\r\n\r\n".to_vec(),
        ),
    ];
    for (label, bytes) in &corpus {
        let reply = send_raw(addr, bytes);
        assert!(
            !reply.is_empty(),
            "{backend}: {label}: server must reply, not hang up"
        );
        let (resp, _) = parse_response(&reply, &WireLimits::default())
            .unwrap_or_else(|e| panic!("{backend}: {label}: unparseable reply: {e}"))
            .unwrap_or_else(|| panic!("{backend}: {label}: truncated reply"));
        assert_eq!(resp.status, Status::BadRequest, "{backend}: {label}");
    }

    // After the whole corpus, the server still serves good requests.
    let resp = request_tcp(addr, &search_req(&geo, "Hospital"));
    assert_eq!(resp.status, Status::Ok, "{backend}");
    server.shutdown();
}

#[test]
fn hostile_inputs_get_400s_and_never_kill_the_server_blocking() {
    hostile_inputs_contract(ServeBackend::Blocking);
}

#[test]
fn hostile_inputs_get_400s_and_never_kill_the_server_epoll() {
    hostile_inputs_contract(ServeBackend::Epoll);
}

fn keep_alive_contract(backend: ServeBackend) {
    let (geo, _) = sim_reference();
    let world = world();
    let server =
        SocketServer::start("127.0.0.1:0", &world, ServeConfig::new().backend(backend)).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for query in ["Hospital", "Bank", "Park"] {
        stream
            .write_all(&encode_request(&search_req(&geo, query)).unwrap())
            .unwrap();
        let resp = read_response(&mut stream).expect("keep-alive reply");
        assert_eq!(resp.status, Status::Ok, "{backend}: {query}");
    }
    drop(stream);

    // keep_alive(false): the server answers one request and closes.
    let server2 = SocketServer::start(
        "127.0.0.1:0",
        &world,
        ServeConfig::new().backend(backend).keep_alive(false),
    )
    .unwrap();
    let mut stream = TcpStream::connect(server2.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(&encode_request(&search_req(&geo, "Hospital")).unwrap())
        .unwrap();
    assert!(read_response(&mut stream).is_some(), "{backend}");
    stream
        .write_all(&encode_request(&search_req(&geo, "Bank")).unwrap())
        .ok();
    assert!(
        read_response(&mut stream).is_none(),
        "{backend}: without keep-alive the connection must close after one response"
    );
    server.shutdown();
    server2.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_per_connection_blocking() {
    keep_alive_contract(ServeBackend::Blocking);
}

#[test]
fn keep_alive_serves_many_requests_per_connection_epoll() {
    keep_alive_contract(ServeBackend::Epoll);
}

fn observability_contract(backend: ServeBackend) {
    let (geo, _) = sim_reference();
    let world = world();
    let server =
        SocketServer::start("127.0.0.1:0", &world, ServeConfig::new().backend(backend)).unwrap();
    let addr = server.local_addr();

    let health = request_tcp(addr, &Request::get(SEARCH_HOST, "/healthz"));
    assert_eq!(health.status, Status::Ok, "{backend}");
    assert_eq!(health.body_text(), "ok\n");

    assert_eq!(
        request_tcp(addr, &search_req(&geo, "Hospital")).status,
        Status::Ok,
        "{backend}"
    );
    let metrics = request_tcp(addr, &Request::get(SEARCH_HOST, "/metrics"));
    assert_eq!(metrics.status, Status::Ok, "{backend}");
    let text = metrics.body_text();
    assert!(
        text.contains("# TYPE geoserp_serve_requests counter"),
        "{backend}: {text}"
    );
    assert!(
        text.contains("geoserp_engine_queries 1"),
        "{backend}: {text}"
    );
    server.shutdown();
}

#[test]
fn healthz_and_metrics_expose_the_shared_hub_blocking() {
    observability_contract(ServeBackend::Blocking);
}

#[test]
fn healthz_and_metrics_expose_the_shared_hub_epoll() {
    observability_contract(ServeBackend::Epoll);
}

fn rate_limit_contract(backend: ServeBackend) {
    let (geo, _) = sim_reference();
    let world = world();
    let server = SocketServer::start(
        "127.0.0.1:0",
        &world,
        ServeConfig::new().backend(backend).rate_limit(3, 60_000),
    )
    .unwrap();
    let addr = server.local_addr();
    for _ in 0..3 {
        assert_eq!(
            request_tcp(addr, &search_req(&geo, "Bank")).status,
            Status::Ok,
            "{backend}"
        );
    }
    let resp = request_tcp(addr, &search_req(&geo, "Bank"));
    assert_eq!(resp.status, Status::TooManyRequests, "{backend}");
    assert_eq!(resp.header("X-Reason"), Some("serve-layer rate limit"));
    // Probes are exempt: health stays green while search is throttled.
    assert_eq!(
        request_tcp(addr, &Request::get(SEARCH_HOST, "/healthz")).status,
        Status::Ok,
        "{backend}"
    );
    server.shutdown();
}

#[test]
fn serve_layer_rate_limit_returns_429_blocking() {
    rate_limit_contract(ServeBackend::Blocking);
}

#[test]
fn serve_layer_rate_limit_returns_429_epoll() {
    rate_limit_contract(ServeBackend::Epoll);
}

fn shed_503_contract(backend: ServeBackend) {
    let world = world();
    let server = SocketServer::start(
        "127.0.0.1:0",
        &world,
        ServeConfig::new()
            .backend(backend)
            .workers(1)
            .queue_depth(1)
            .read_timeout_ms(3_000),
    )
    .unwrap();
    let addr = server.local_addr();

    // Occupy the single worker with a connection that never completes a
    // request, and fill the one admission slot with a second idle
    // connection.
    let stall_worker = TcpStream::connect(addr).unwrap();
    stall_worker.set_nodelay(true).ok();
    (&stall_worker).write_all(b"GET /sl").unwrap();
    std::thread::sleep(Duration::from_millis(300));
    let _fill_queue = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // Subsequent connections must be shed with an inline 503.
    let mut shed = false;
    let mut probes = 0u64;
    for _ in 0..5 {
        let mut probe = TcpStream::connect(addr).unwrap();
        probes += 1;
        probe
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        if let Some(resp) = read_response(&mut probe) {
            assert_eq!(resp.status, Status::ServiceUnavailable, "{backend}");
            assert_eq!(resp.header("X-Reason"), Some("accept queue full"));
            shed = true;
            break;
        }
    }
    assert!(
        shed,
        "{backend}: expected at least one 503 while the pool was saturated"
    );
    drop(stall_worker);
    server.shutdown();

    // Counting parity between the backends: every connect lands in exactly
    // one of `serve.connections` (a worker would have picked it up) or
    // `serve.rejected_busy` (shed). The epoll core once counted shed
    // connections in both.
    let m = world.hub.metrics();
    let connections = m.counter("serve.connections").get();
    let rejected = m.counter("serve.rejected_busy").get();
    assert_eq!(
        connections + rejected,
        2 + probes, // stall_worker + fill_queue + probes
        "{backend}: connects must be counted admitted xor shed \
         (connections={connections}, rejected_busy={rejected})"
    );
}

#[test]
fn full_accept_queue_sheds_load_with_503_blocking() {
    shed_503_contract(ServeBackend::Blocking);
}

#[test]
fn full_accept_queue_sheds_load_with_503_epoll() {
    shed_503_contract(ServeBackend::Epoll);
}

/// Regression: the accept path once wrote shed 503s with a *blocking*
/// `write_all` under the write timeout — one peer refusing to read could
/// stall all accepts for seconds. Saturate the server, then hit it with a
/// storm of probes that never read their 503s: the whole storm must be
/// refused promptly. (A true zero-window stall of a 60-byte write is not
/// constructible over loopback — kernel buffers absorb it — so the test
/// pins the observable symptom: accept latency stays bounded while shed
/// targets sit on unread responses.)
fn shed_storm_contract(backend: ServeBackend) {
    let world = world();
    let server = SocketServer::start(
        "127.0.0.1:0",
        &world,
        ServeConfig::new()
            .backend(backend)
            .workers(1)
            .queue_depth(1)
            .read_timeout_ms(8_000)
            .write_timeout_ms(8_000),
    )
    .unwrap();
    let addr = server.local_addr();

    let stall_worker = TcpStream::connect(addr).unwrap();
    (&stall_worker).write_all(b"GET /sl").unwrap();
    let _fill_queue = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // 20 connections that will each be shed and never read the 503.
    let started = Instant::now();
    let mut deaf_probes = Vec::new();
    for _ in 0..20 {
        deaf_probes.push(TcpStream::connect(addr).unwrap());
    }
    // One more probe that does read: it must still get its refusal fast —
    // far faster than even one 8 s write timeout, let alone twenty.
    let mut probe = TcpStream::connect(addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let resp = read_response(&mut probe);
    let elapsed = started.elapsed();
    assert!(
        resp.is_some_and(|r| r.status == Status::ServiceUnavailable),
        "{backend}: trailing probe must be shed with a 503"
    );
    assert!(
        elapsed < Duration::from_secs(3),
        "{backend}: shed storm stalled the accept path for {elapsed:?}"
    );
    drop(deaf_probes);
    drop(stall_worker);
    server.shutdown();
}

#[test]
fn shed_storm_never_stalls_accepts_blocking() {
    shed_storm_contract(ServeBackend::Blocking);
}

#[test]
fn shed_storm_never_stalls_accepts_epoll() {
    shed_storm_contract(ServeBackend::Epoll);
}

/// Regression: the event loop's read soft cap (64 KiB) once applied even
/// when the parser had consumed nothing — a single request larger than
/// the cap (any body up to the 1 MiB default limit) livelocked its
/// reactor thread: nothing complete to parse, nothing to flush, and
/// `fill` refusing to read. A body over the cap must be read through and
/// served, alone and pipelined behind a small request.
fn large_body_contract(backend: ServeBackend) {
    let world = world();
    let server =
        SocketServer::start("127.0.0.1:0", &world, ServeConfig::new().backend(backend)).unwrap();
    let addr = server.local_addr();
    let limits = WireLimits::new();

    let body = vec![b'x'; 100 * 1024]; // > the 64 KiB soft cap, < max_body_bytes
    let large = {
        let mut bytes = format!(
            "POST /healthz HTTP/1.1\r\nHost: {SEARCH_HOST}\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        bytes.extend_from_slice(&body);
        bytes
    };

    let reply = send_raw(addr, &large);
    assert!(
        !reply.is_empty(),
        "{backend}: a 100 KiB-body request must be answered, not livelocked"
    );
    let (resp, _) = parse_response(&reply, &limits).unwrap().unwrap();
    assert_eq!(resp.status, Status::Ok, "{backend}");
    assert_eq!(resp.body_text(), "ok\n", "{backend}");

    // Pipelined: a small request followed by the large one in a single
    // write, so the parser makes progress at the soft cap and then stalls
    // on the large tail.
    let mut pipelined =
        format!("GET /healthz HTTP/1.1\r\nHost: {SEARCH_HOST}\r\n\r\n").into_bytes();
    pipelined.extend_from_slice(&large);
    let reply = send_raw(addr, &pipelined);
    let (first, used) = parse_response(&reply, &limits)
        .unwrap()
        .unwrap_or_else(|| panic!("{backend}: first pipelined response truncated"));
    assert_eq!(first.status, Status::Ok, "{backend}");
    let (second, _) = parse_response(&reply[used..], &limits)
        .unwrap()
        .unwrap_or_else(|| panic!("{backend}: second pipelined response truncated"));
    assert_eq!(second.status, Status::Ok, "{backend}");
    server.shutdown();
}

#[test]
fn bodies_larger_than_the_read_soft_cap_are_served_blocking() {
    large_body_contract(ServeBackend::Blocking);
}

#[test]
fn bodies_larger_than_the_read_soft_cap_are_served_epoll() {
    large_body_contract(ServeBackend::Epoll);
}

/// The determinism contract is IPv4-only (sequence numbers and rate-limit
/// keys are defined over `Ipv4Addr`): an IPv6 peer gets a typed 400, not a
/// silent collapse onto `0.0.0.0`'s counters. Skipped when the host has no
/// usable loopback IPv6.
fn ipv6_contract(backend: ServeBackend) {
    let world = world();
    let Ok(server) = SocketServer::start("[::1]:0", &world, ServeConfig::new().backend(backend))
    else {
        eprintln!("skipping: cannot bind [::1] (no IPv6 loopback)");
        return;
    };
    let addr = server.local_addr();
    let Ok(mut stream) = TcpStream::connect(addr) else {
        eprintln!("skipping: cannot connect to [::1] (no IPv6 loopback)");
        return;
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // The rejection is by peer address; it arrives whether or not a
    // request is ever sent, so just read.
    let resp = read_response(&mut stream).expect("server must reply before closing");
    assert_eq!(resp.status, Status::BadRequest, "{backend}");
    assert_eq!(
        resp.header("X-Reason"),
        Some("ipv4-only determinism contract"),
        "{backend}"
    );
    server.shutdown();
}

#[test]
fn ipv6_peers_get_a_typed_400_blocking() {
    ipv6_contract(ServeBackend::Blocking);
}

#[test]
fn ipv6_peers_get_a_typed_400_epoll() {
    ipv6_contract(ServeBackend::Epoll);
}

fn shutdown_contract(backend: ServeBackend) {
    let (geo, _) = sim_reference();
    let world = world();
    let server = SocketServer::start(
        "127.0.0.1:0",
        &world,
        ServeConfig::new().backend(backend).read_timeout_ms(500),
    )
    .unwrap();
    let addr = server.local_addr();
    assert_eq!(
        request_tcp(addr, &search_req(&geo, "Hospital")).status,
        Status::Ok,
        "{backend}"
    );
    server.shutdown();
    // Every thread is joined by the time shutdown returns; a new connection
    // must not be served.
    let served_after = TcpStream::connect(addr).is_ok_and(|mut s| {
        s.set_read_timeout(Some(Duration::from_millis(500))).ok();
        s.write_all(&encode_request(&search_req(&geo, "Bank")).unwrap())
            .is_ok()
            && read_response(&mut s).is_some()
    });
    assert!(!served_after, "{backend}: server answered after shutdown");
}

#[test]
fn shutdown_drains_and_stops_accepting_blocking() {
    shutdown_contract(ServeBackend::Blocking);
}

#[test]
fn shutdown_drains_and_stops_accepting_epoll() {
    shutdown_contract(ServeBackend::Epoll);
}

/// Regression: graceful shutdown used to wait out the read timeout for
/// every idle keep-alive connection. The event loop's drain path closes
/// idle connections the moment the shutdown waker fires, so shutdown
/// latency is bounded by epsilon even with a 10 s read timeout and several
/// parked connections.
#[test]
fn epoll_drain_closes_idle_keepalive_connections_promptly() {
    let (geo, _) = sim_reference();
    let world = world();
    let server = SocketServer::start(
        "127.0.0.1:0",
        &world,
        ServeConfig::new()
            .backend(ServeBackend::Epoll)
            .workers(2)
            .read_timeout_ms(10_000),
    )
    .unwrap();
    let addr = server.local_addr();

    // Three keep-alive connections, each completing one request, then
    // parked idle.
    let mut parked = Vec::new();
    for query in ["Hospital", "Bank", "Park"] {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(&encode_request(&search_req(&geo, query)).unwrap())
            .unwrap();
        assert!(read_response(&mut stream).is_some(), "{query}");
        parked.push(stream);
    }

    let started = Instant::now();
    server.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "drain with idle keep-alive connections took {elapsed:?} \
         (read timeout was 10 s — idle conns must be closed by the drain \
         path, not waited out)"
    );
    // The parked connections were really closed: reads see EOF.
    for mut stream in parked {
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(stream.read(&mut buf).unwrap_or(0), 0, "peer must see EOF");
    }
}

#[test]
fn loadgen_measures_the_server() {
    let report = geoserp_serve::loadgen::run_matrix(SEED, &[2], 60, 3).unwrap();
    assert_eq!(
        report.entries.len(),
        9,
        "2 backends x (2 firehose cells + 1 slow-client cell) + 3 router cells"
    );
    assert_eq!(
        report
            .entries
            .iter()
            .filter(|e| e.backend == "router")
            .map(|e| (e.shards, e.replicas))
            .collect::<Vec<_>>(),
        vec![(1, 1), (2, 1), (2, 2)],
        "router cells sweep the topology"
    );
    for e in &report.entries {
        if e.backend == "router" {
            assert_eq!(e.concurrency, 3);
            assert_eq!(e.report.ok + e.report.errors, 60);
            assert!(e.report.ok > 0, "routed requests must succeed: {e:?}");
            continue;
        }
        assert_eq!(e.workers, 2);
        assert!(e.backend == "blocking" || e.backend == "epoll", "{e:?}");
        assert_eq!((e.shards, e.replicas), (0, 0), "direct cells: no router");
        let expected = if e.think_ms > 0 {
            assert_eq!(e.concurrency, 16, "slow-client cell: 8 clients/worker");
            e.concurrency * 5
        } else {
            assert_eq!(e.concurrency, 3);
            60
        };
        assert_eq!(e.report.ok + e.report.errors, expected);
        assert!(e.report.ok > 0, "some requests must succeed: {e:?}");
        assert!(e.report.throughput_rps > 0.0);
        assert!(e.report.p50_us > 0);
        assert!(e.report.p99_us >= e.report.p50_us);
    }
    let json = report.to_json();
    assert!(json.contains("\"throughput_rps\""), "{json}");
    assert!(json.contains("\"backend\""), "{json}");

    // Single-target mode against a live server.
    let world = world();
    let server = SocketServer::start(
        "127.0.0.1:0",
        &world,
        ServeConfig::new().rate_limit(usize::MAX / 2, 60_000),
    )
    .unwrap();
    let single = geoserp_serve::loadgen::run(
        &server.local_addr().to_string(),
        &LoadgenConfig::new().requests(20).concurrency(2),
    )
    .unwrap();
    assert_eq!(single.requests, 20);
    assert!(single.errors > 0 || single.ok > 0);
    server.shutdown();
}
