//! Property tests for the sharded tier's placement and merge invariants:
//! consistent-hash distribution stays near fair share, growing the replica
//! set only moves keys *to* the newcomer, and the router's top-k merge is
//! idempotent and commutative over shard response orderings (so hedged
//! duplicate deliveries and scatter completion order can never change page
//! bytes).

use geoserp_engine::shard::{merge_retrieve, merge_suggest};
use geoserp_net::shardmsg::{ShardRetrieveResponse, ShardSuggestResponse, SpellCandidate};
use geoserp_serve::topology::{HashRing, ShardPlan, DEFAULT_VNODES};
use proptest::prelude::*;

/// Keys sampled per ring property. Placement is a pure function of the
/// key, so a fixed dense key range is a fair sample.
const KEYS: u64 = 2_000;

/// Between one and four shard retrieval responses, each with ids confined
/// to its own block of the id space — the disjointness real contiguous
/// sharding guarantees (a page id exists in exactly one shard). The block
/// offset is applied by position so permutations stay meaningful.
fn arb_parts() -> impl Strategy<Value = Vec<ShardRetrieveResponse>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0u32..300, 0..40),
            proptest::collection::vec((0u32..300, 1u32..3), 0..60),
        ),
        1..5,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(shard, (fulls, partials))| {
                let base = shard as u32 * 10_000;
                ShardRetrieveResponse {
                    fulls: fulls.into_iter().map(|id| base + id).collect(),
                    partials: partials.into_iter().map(|(id, n)| (base + id, n)).collect(),
                }
            })
            .collect()
    })
}

/// Spell candidates whose distance is a pure function of the token — the
/// consistency real shards guarantee (edit distance is a string property,
/// identical everywhere the token occurs).
fn arb_suggest_part() -> impl Strategy<Value = ShardSuggestResponse> {
    (
        proptest::collection::vec(0u64..5, 2..3),
        proptest::collection::vec(
            proptest::collection::vec(
                (
                    proptest::string::string_regex("[a-d]{1,6}").unwrap(),
                    1u64..9,
                ),
                0..6,
            ),
            2..3,
        ),
    )
        .prop_map(|(token_dfs, raw)| ShardSuggestResponse {
            token_dfs,
            corrections: raw
                .into_iter()
                .map(|cands| {
                    cands
                        .into_iter()
                        .map(|(token, df)| SpellCandidate {
                            distance: token.len() as u32 % 3,
                            token,
                            df,
                        })
                        .collect()
                })
                .collect(),
        })
}

/// Rotate a slice by `k` — a cheap permutation that composes with
/// `reverse` to cover orderings without needing a shuffle strategy.
fn rotated<T: Clone>(parts: &[T], k: usize) -> Vec<T> {
    let k = if parts.is_empty() { 0 } else { k % parts.len() };
    parts[k..].iter().chain(&parts[..k]).cloned().collect()
}

proptest! {
    /// Every replica's share of keys stays within a factor of 3 of fair
    /// share — the load bound that justifies 128 vnodes.
    #[test]
    fn ring_distribution_is_within_3x_of_fair_share(replicas in 1u32..9) {
        let ring = HashRing::new(replicas, DEFAULT_VNODES);
        let mut counts = vec![0u64; replicas as usize];
        for key in 0..KEYS {
            counts[ring.pick(key) as usize] += 1;
        }
        let fair = KEYS as f64 / f64::from(replicas);
        for (r, &c) in counts.iter().enumerate() {
            let share = c as f64;
            prop_assert!(
                share >= fair / 3.0 && share <= fair * 3.0,
                "replica {r}/{replicas}: {c} keys vs fair share {fair:.0}"
            );
        }
    }

    /// Minimal disruption: adding replica `n` to an `n`-replica ring only
    /// moves keys *to* the newcomer — no key changes hands between
    /// existing replicas.
    #[test]
    fn adding_a_replica_only_claims_keys_for_it(replicas in 1u32..8) {
        let before = HashRing::new(replicas, DEFAULT_VNODES);
        let after = HashRing::new(replicas + 1, DEFAULT_VNODES);
        for key in 0..KEYS {
            let (b, a) = (before.pick(key), after.pick(key));
            prop_assert!(
                a == b || a == replicas,
                "key {key} moved from replica {b} to {a}, not to the new replica {replicas}"
            );
        }
    }

    /// The failover order is a permutation of all replicas starting at the
    /// primary — every replica is eventually tried, none twice.
    #[test]
    fn failover_order_is_a_permutation_starting_at_the_primary(
        replicas in 1u32..9,
        key in 0u64..100_000,
    ) {
        let ring = HashRing::new(replicas, DEFAULT_VNODES);
        let order = ring.order(key);
        prop_assert_eq!(order[0], ring.pick(key));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..replicas).collect::<Vec<_>>());
    }

    /// The shard plan covers every page exactly once, contiguously, with
    /// shard sizes within one page of each other.
    #[test]
    fn shard_plan_partitions_the_id_space(total in 0u32..5_000, shards in 1u32..9) {
        let plan = ShardPlan::contiguous(total, shards);
        let mut next = 0u32;
        for r in &plan.ranges {
            prop_assert_eq!(r.start, next);
            next = r.end;
        }
        prop_assert_eq!(next, total);
        let sizes: Vec<u32> = plan.ranges.iter().map(|r| r.end - r.start).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);
    }

    /// Top-k merge is commutative over shard orderings and idempotent
    /// under duplicate delivery: reordered or doubly-delivered responses
    /// produce the identical candidate list.
    #[test]
    fn retrieve_merge_is_order_invariant_and_idempotent(
        parts in arb_parts(),
        rot in 0usize..8,
        min_candidates in 1usize..60,
    ) {
        let query = "alpha beta gamma";
        let reference = merge_retrieve(query, min_candidates, 0.35, &parts);

        let mut reversed = parts.clone();
        reversed.reverse();
        prop_assert_eq!(
            merge_retrieve(query, min_candidates, 0.35, &reversed),
            reference.clone(),
            "reversed shard order changed the merge"
        );
        prop_assert_eq!(
            merge_retrieve(query, min_candidates, 0.35, &rotated(&parts, rot)),
            reference.clone(),
            "rotated shard order changed the merge"
        );
        let doubled: Vec<_> = parts.iter().chain(parts.iter()).cloned().collect();
        prop_assert_eq!(
            merge_retrieve(query, min_candidates, 0.35, &doubled),
            reference,
            "duplicate delivery changed the merge"
        );
    }

    /// Suggest merge is commutative over shard orderings: summed document
    /// frequencies and the total-order comparator make the winner
    /// independent of response arrival order.
    #[test]
    fn suggest_merge_is_order_invariant(
        parts in proptest::collection::vec(arb_suggest_part(), 1..5),
        rot in 0usize..8,
    ) {
        let query = "zz qq";
        let reference = merge_suggest(query, &parts);
        let mut reversed = parts.clone();
        reversed.reverse();
        prop_assert_eq!(merge_suggest(query, &reversed), reference.clone());
        prop_assert_eq!(merge_suggest(query, &rotated(&parts, rot)), reference);
    }
}
