//! Allocation helpers for the event-loop backend: a per-loop buffer pool
//! for the read/write hot path and a minimal slab for connection slots.
//!
//! Both are single-threaded by construction (each event loop owns its own
//! pool and slab), so neither takes a lock.

/// Recycles `Vec<u8>` buffers between connections so the steady-state hot
/// path allocates nothing. Buffers that grew far beyond the nominal size
/// (a huge body, a slow-drain backlog) are dropped instead of pooled, so
/// one pathological connection cannot pin memory forever.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    /// Capacity a fresh buffer starts with.
    buf_capacity: usize,
    /// Most buffers kept around when idle.
    max_pooled: usize,
}

impl BufferPool {
    /// A pool handing out buffers of `buf_capacity`, keeping at most
    /// `max_pooled` idle ones.
    pub fn new(buf_capacity: usize, max_pooled: usize) -> BufferPool {
        BufferPool {
            free: Vec::new(),
            buf_capacity: buf_capacity.max(64),
            max_pooled,
        }
    }

    /// Check a buffer out (recycled when available, fresh otherwise).
    pub fn get(&mut self) -> Vec<u8> {
        self.free
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(self.buf_capacity))
    }

    /// Return a buffer. Cleared, and dropped instead of pooled when it
    /// ballooned past 4× the nominal capacity or the pool is full.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        if buf.capacity() <= self.buf_capacity * 4 && self.free.len() < self.max_pooled {
            self.free.push(buf);
        }
    }

    /// Idle buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// Minimal slot map: stable `usize` keys, O(1) insert/remove via a free
/// list. Connection tokens in the event loop are slab keys.
#[derive(Debug)]
pub struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<usize>,
    len: usize,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the slab empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Store `value`, returning its key.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        match self.free.pop() {
            Some(key) => {
                debug_assert!(self.entries[key].is_none());
                self.entries[key] = Some(value);
                key
            }
            None => {
                self.entries.push(Some(value));
                self.entries.len() - 1
            }
        }
    }

    /// The value under `key`, if occupied.
    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        self.entries.get_mut(key).and_then(Option::as_mut)
    }

    /// Remove and return the value under `key` (None when vacant).
    pub fn remove(&mut self, key: usize) -> Option<T> {
        let value = self.entries.get_mut(key).and_then(Option::take);
        if value.is_some() {
            self.free.push(key);
            self.len -= 1;
        }
        value
    }

    /// Keys of every occupied slot (snapshot; safe to mutate while
    /// iterating the returned list).
    pub fn keys(&self) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|_| i))
            .collect()
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_and_caps() {
        let mut pool = BufferPool::new(1024, 2);
        let mut a = pool.get();
        a.extend_from_slice(b"data");
        pool.put(a);
        assert_eq!(pool.pooled(), 1);
        let b = pool.get();
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert!(b.capacity() >= 1024);
        // Cap: only `max_pooled` buffers are kept.
        pool.put(Vec::with_capacity(1024));
        pool.put(Vec::with_capacity(1024));
        pool.put(Vec::with_capacity(1024));
        assert_eq!(pool.pooled(), 2);
        // Ballooned buffers are dropped, not pooled.
        let mut pool = BufferPool::new(1024, 8);
        pool.put(Vec::with_capacity(1024 * 64));
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn slab_reuses_slots() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.remove(a), None, "double remove is a no-op");
        let c = slab.insert("c");
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(slab.get_mut(b), Some(&mut "b"));
        assert_eq!(slab.keys().len(), 2);
    }
}
