//! Hashed timer wheel for the event-loop backend: keep-alive idle
//! timeouts, read stalls, and write deadlines.
//!
//! Deadlines hash into `slots` buckets by tick index (`deadline / tick_ms %
//! slots`); the wheel advances a cursor over ticks and drains due entries.
//! Cancellation is lazy: every timer carries the connection's *generation*
//! at arm time, and the reactor ignores entries whose generation no longer
//! matches (the connection re-armed, finished, or the slot was reused).
//! That makes arm/cancel O(1) with no per-timer allocation beyond the slot
//! vectors, at the cost of stale entries riding the wheel until their tick
//! comes up — which is exactly the hashed-wheel trade-off.
//!
//! Accuracy is one tick: a deadline fires in the first `expire` call whose
//! `now` reaches it, and [`TimerWheel::poll_timeout`] never lets the
//! reactor oversleep by more than a tick while timers are pending.

/// One armed timer: fires at `deadline_ms` for connection slot `token`,
/// valid only while the connection's generation is still `gen`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerEntry {
    /// Absolute deadline, server-relative milliseconds.
    pub deadline_ms: u64,
    /// Connection slot index the timer belongs to.
    pub token: usize,
    /// Generation the owning slot had when the timer was armed.
    pub gen: u64,
}

/// The wheel: `slots` buckets of `tick_ms` granularity.
#[derive(Debug)]
pub struct TimerWheel {
    tick_ms: u64,
    slots: Vec<Vec<TimerEntry>>,
    /// Last tick index `expire` fully processed.
    cursor: u64,
    len: usize,
}

impl TimerWheel {
    /// A wheel with `slots` buckets of `tick_ms` each (both clamped ≥ 1).
    pub fn new(tick_ms: u64, slots: usize) -> TimerWheel {
        TimerWheel {
            tick_ms: tick_ms.max(1),
            slots: vec![Vec::new(); slots.max(1)],
            cursor: 0,
            len: 0,
        }
    }

    /// Number of armed (possibly stale) entries riding the wheel.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the wheel empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arm a timer. Deadlines already behind the cursor are hashed onto the
    /// cursor's own tick so they fire on the next [`TimerWheel::expire`].
    pub fn insert(&mut self, deadline_ms: u64, token: usize, gen: u64) {
        let tick = (deadline_ms / self.tick_ms).max(self.cursor);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(TimerEntry {
            deadline_ms,
            token,
            gen,
        });
        self.len += 1;
    }

    /// How long the reactor may sleep at `now_ms` without missing a tick:
    /// `None` when no timers are armed (sleep on I/O alone), otherwise at
    /// most one tick.
    pub fn poll_timeout(&self, now_ms: u64) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        // Sleep to the next tick boundary (≥ 1 ms so a boundary-sitting
        // reactor still yields to the OS).
        let next_boundary = (now_ms / self.tick_ms + 1) * self.tick_ms;
        Some((next_boundary - now_ms).max(1))
    }

    /// Advance the wheel to `now_ms`, appending every due entry to `out`.
    /// Stale entries (their owner re-armed) are delivered too — the caller
    /// drops them by generation check.
    pub fn expire(&mut self, now_ms: u64, out: &mut Vec<TimerEntry>) {
        let now_tick = now_ms / self.tick_ms;
        if now_tick < self.cursor {
            return;
        }
        // Visit each slot at most once even after a long sleep: ticks past
        // `slots.len()` wrap onto slots already visited this call.
        let first = self.cursor;
        let last = now_tick.min(first + self.slots.len() as u64 - 1);
        for tick in first..=last {
            let slot = (tick % self.slots.len() as u64) as usize;
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].deadline_ms <= now_ms {
                    out.push(bucket.swap_remove(i));
                    self.len -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = now_tick + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimerWheel, now: u64) -> Vec<TimerEntry> {
        let mut out = Vec::new();
        wheel.expire(now, &mut out);
        out
    }

    #[test]
    fn fires_at_the_deadline_not_before() {
        let mut wheel = TimerWheel::new(10, 8);
        wheel.insert(105, 1, 1);
        assert!(drain(&mut wheel, 99).is_empty());
        let fired = drain(&mut wheel, 110);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].token, 1);
        assert!(wheel.is_empty());
    }

    #[test]
    fn far_deadlines_survive_wheel_wraparound() {
        // 8 slots × 10 ms: a deadline 800 ms out hashes onto a slot the
        // cursor passes many times before it is due.
        let mut wheel = TimerWheel::new(10, 8);
        wheel.insert(805, 3, 1);
        for now in (0..800).step_by(25) {
            assert!(drain(&mut wheel, now).is_empty(), "early fire at {now}");
        }
        assert_eq!(drain(&mut wheel, 810).len(), 1);
    }

    #[test]
    fn long_sleep_expires_everything_due() {
        let mut wheel = TimerWheel::new(10, 8);
        for t in 0..20 {
            wheel.insert(t * 7, t as usize, 1);
        }
        // One giant jump: every slot visited once, all 20 due.
        let fired = drain(&mut wheel, 1_000_000);
        assert_eq!(fired.len(), 20);
        assert!(wheel.is_empty());
    }

    #[test]
    fn poll_timeout_bounds_the_sleep_only_while_armed() {
        let mut wheel = TimerWheel::new(10, 8);
        assert_eq!(wheel.poll_timeout(123), None);
        wheel.insert(5_000, 1, 1);
        let t = wheel.poll_timeout(123).unwrap();
        assert!((1..=10).contains(&t), "one tick max, got {t}");
        // A caller sitting exactly on a boundary still sleeps.
        assert!(wheel.poll_timeout(120).unwrap() >= 1);
    }

    #[test]
    fn stale_generations_are_delivered_for_the_caller_to_drop() {
        let mut wheel = TimerWheel::new(10, 4);
        wheel.insert(10, 7, 1); // armed at gen 1
        wheel.insert(20, 7, 2); // re-armed at gen 2
        let fired = drain(&mut wheel, 30);
        assert_eq!(fired.len(), 2, "lazy cancellation delivers both");
        assert!(fired.iter().any(|e| e.gen == 1) && fired.iter().any(|e| e.gen == 2));
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let mut wheel = TimerWheel::new(10, 8);
        let mut out = Vec::new();
        wheel.expire(500, &mut out); // move the cursor forward first
        wheel.insert(100, 1, 1); // already past
        wheel.expire(500, &mut out);
        assert!(out.is_empty(), "same-tick cursor already consumed");
        wheel.expire(510, &mut out);
        assert_eq!(out.len(), 1, "next tick sweeps the stale slot");
    }
}
