//! The router: a full search front-end whose *retrieval tier* is remote.
//!
//! [`RemoteRetriever`] implements [`geoserp_engine::Retriever`] by
//! scattering each retrieval (and each spell-suggest) to every shard over
//! TCP, then merging the integer-only responses with
//! [`geoserp_engine::shard`]'s exact-merge functions. The router owns the
//! whole *ranking* tier — intent, verticals, noise, history, SERP
//! composition — and runs it on the merged candidates with the very same
//! engine code the single-process server uses. Byte-identity of routed
//! pages is therefore structural: the only thing that has to be proven
//! equal is retrieval, and the engine's merge tests prove it.
//!
//! # Replica placement and failure handling
//!
//! Each shard has `M` replicas on a consistent-hash ring
//! ([`HashRing`]); requests walk the ring's successor order:
//!
//! * the **primary** (`order[0]`) is dialed first;
//! * if it errors (dead replica: connection refused), the router counts a
//!   `router.retries` and falls through the ring order sequentially;
//! * if it is merely *slow* — no answer within
//!   [`ClusterConfig::hedge_ms`] — the router counts `router.hedge_fired`
//!   and races `order[1]` against it, taking whichever answers first;
//! * only when every replica of a shard has failed does the router give
//!   up on the shard: `router.shard_errors` counts it and the scatter
//!   contributes an empty part (degraded results, never a crash).
//!
//! Because every `/search` makes exactly two scatters (retrieve, then the
//! did-you-mean suggest), and ring placement is a pure function of the
//! per-shard request counter, fault tests can replay the ring and predict
//! `router.retries` / `router.hedge_fired` *exactly*.
//!
//! # Distributed tracing
//!
//! When the router's request carries an active trace context (see
//! [`geoserp_obs::trace`]), each scatter records a `router.scatter` span
//! and each replica attempt a `router.rpc` span named
//! `rpc s<shard>.r<replica> #<attempt>`. The attempt's trace context is
//! derived with *that exact name* as the label and stamped onto the shard
//! request as the [`TRACE_HEADER`] header, so the shard-side `request`
//! span parents to the router-side rpc span by construction — including
//! the losing arm of a hedge race, whose span is marked `outcome=lose`.
//! [`ShardedCluster::assemble_trace`] stitches the router's and every
//! replica's span log into one merged Chrome trace.

use crate::server::{ServeConfig, SocketServer, DAY_MS};
use crate::shard::{retrieve_request, suggest_request, ShardService};
use crate::topology::{HashRing, ShardPlan, DEFAULT_VNODES};
use geoserp_engine::index::Candidate;
use geoserp_engine::shard::{max_partials, merge_retrieve, merge_suggest};
use geoserp_engine::{ConfigError, EngineConfig, Retriever, SearchEngine, SearchService};
use geoserp_geo::{Seed, UsGeography};
use geoserp_net::shardmsg::{
    ShardRetrieveRequest, ShardRetrieveResponse, ShardSuggestRequest, ShardSuggestResponse,
};
use geoserp_net::{
    encode_request, ip, parse_response, Request, RequestCtx, Response, Server, Status, WireLimits,
    TRACE_HEADER,
};
use geoserp_obs::trace::{self, assemble_chrome_trace, ProcessSpans, Stage, TraceContext};
use geoserp_obs::{Counter, Histogram, ObsHub};
use std::borrow::Cow;
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Router-side counters and histograms (registered on the router's hub, so
/// the router's `/metrics` endpoint exports them).
struct RouterMetrics {
    /// Shards scattered to, observed once per scatter.
    fanout: Histogram,
    /// Hedges launched because a primary exceeded the hedge threshold.
    hedge_fired: Counter,
    /// Errored attempts that were followed by a fallback attempt.
    retries: Counter,
    /// Scatters in which a shard produced no usable response at all.
    shard_errors: Counter,
    /// Candidates surviving the exact merge, observed once per retrieve.
    merge_candidates: Histogram,
}

impl RouterMetrics {
    fn resolve(hub: &ObsHub) -> RouterMetrics {
        let m = hub.metrics();
        RouterMetrics {
            fanout: m.histogram("router.fanout"),
            hedge_fired: m.counter("router.hedge_fired"),
            retries: m.counter("router.retries"),
            shard_errors: m.counter("router.shard_errors"),
            merge_candidates: m.histogram("router.merge_candidates"),
        }
    }
}

/// One shard's replica set as the router sees it.
struct ShardClient {
    /// Replica socket addresses, indexed by replica id.
    addrs: Vec<SocketAddr>,
    /// Consistent-hash ring over `0..addrs.len()` replica ids.
    ring: HashRing,
    /// Per-shard request counter; the ring key for the next request.
    counter: AtomicU64,
    /// Wall latency of this shard's slice of each scatter, µs. The
    /// `_wall_` marker keeps it out of deterministic snapshots.
    latency: Histogram,
}

/// Bookkeeping for one replica attempt, kept until the race resolves so
/// every arm's `router.rpc` span can be recorded with its outcome.
struct AttemptInfo {
    /// The rpc span's name — also the label the attempt's trace context
    /// was derived with (see [`RemoteRetriever::call`]).
    name: String,
    /// Why this attempt was launched: `primary`, `hedge`, or `retry`.
    kind: &'static str,
    /// Launch instant, for the span's wall-clock annotation.
    started: Instant,
    /// The attempt resolved with an error before the race ended.
    errored: bool,
}

/// A [`Retriever`] that scatters to shard replicas over TCP and merges
/// exactly. Plug into [`geoserp_engine::SearchEngineBuilder::retriever`].
pub struct RemoteRetriever {
    shards: Vec<ShardClient>,
    hedge: Duration,
    io_timeout: Duration,
    limits: WireLimits,
    metrics: RouterMetrics,
    /// The router's hub — scatter/rpc spans are recorded here explicitly
    /// because attempt threads don't inherit the thread-local trace stack.
    hub: Arc<ObsHub>,
}

impl RemoteRetriever {
    /// Build a retriever over `shard_addrs[shard][replica]` sockets.
    /// `hedge_ms` is the slow-primary threshold; `io_timeout_ms` bounds
    /// each attempt's socket reads and writes.
    pub fn new(
        shard_addrs: Vec<Vec<SocketAddr>>,
        hedge_ms: u64,
        io_timeout_ms: u64,
        hub: Arc<ObsHub>,
    ) -> RemoteRetriever {
        let shards = shard_addrs
            .into_iter()
            .enumerate()
            .map(|(i, addrs)| ShardClient {
                ring: HashRing::new(addrs.len() as u32, DEFAULT_VNODES),
                latency: hub
                    .metrics()
                    .histogram(&format!("router.shard{i}.latency_wall_us")),
                addrs,
                counter: AtomicU64::new(0),
            })
            .collect();
        RemoteRetriever {
            shards,
            hedge: Duration::from_millis(hedge_ms.max(1)),
            io_timeout: Duration::from_millis(io_timeout_ms.max(1)),
            // Shard responses can carry thousands of posting ids; give
            // them more body headroom than a public-facing parser would.
            limits: WireLimits::new().max_body_bytes(8 * 1024 * 1024),
            metrics: RouterMetrics::resolve(&hub),
            hub,
        }
    }

    /// One shard call with hedging and ring-order retry. `None` means every
    /// replica failed (already counted in `router.shard_errors`).
    ///
    /// With an active scatter context `sctx`, every attempt is recorded as
    /// a `router.rpc` span once the race resolves, and each attempt's wire
    /// is re-encoded with its own [`TRACE_HEADER`] so shard-side spans
    /// link under the correct arm.
    fn call(
        &self,
        shard: usize,
        client: &ShardClient,
        req: &Request,
        wire: &[u8],
        sctx: Option<TraceContext>,
    ) -> Option<Response> {
        let key = client.counter.fetch_add(1, Ordering::Relaxed);
        let order = client.ring.order(key);
        let (tx, rx) = mpsc::channel::<(usize, std::io::Result<Response>)>();
        let mut attempts: Vec<AttemptInfo> = Vec::new();
        let mut next = 0usize;
        let mut outstanding = 0usize;
        let launch = |next: &mut usize,
                      outstanding: &mut usize,
                      attempts: &mut Vec<AttemptInfo>,
                      kind: &'static str|
         -> bool {
            if *next >= order.len() {
                return false;
            }
            let replica = order[*next];
            let addr = client.addrs[replica as usize];
            let no = *next;
            *next += 1;
            *outstanding += 1;
            let name = format!("rpc s{shard}.r{replica} #{no}");
            // The attempt context's label IS the rpc span's name — that
            // equality is what parents the shard-side `request` span to
            // this attempt's span in the assembled trace.
            let wire = match sctx {
                Some(c) => {
                    let mut traced = req.clone();
                    traced
                        .headers
                        .push((TRACE_HEADER.to_string(), c.child(&name).encode()));
                    encode_request(&traced).expect("shard requests encode")
                }
                None => wire.to_vec(),
            };
            attempts.push(AttemptInfo {
                name,
                kind,
                started: Instant::now(),
                errored: false,
            });
            let tx = tx.clone();
            let timeout = self.io_timeout;
            let limits = self.limits;
            // Detached on purpose: a hedged-over slow primary may still be
            // mid-read when the winner returns; its late send just fails.
            std::thread::spawn(move || {
                let _ = tx.send((no, attempt(addr, &wire, timeout, &limits)));
            });
            true
        };

        launch(&mut next, &mut outstanding, &mut attempts, "primary");
        // Hedge window: a primary that neither answers nor errors within
        // the threshold gets a second replica raced against it.
        let mut pending = match rx.recv_timeout(self.hedge) {
            Ok(r) => Some(r),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if launch(&mut next, &mut outstanding, &mut attempts, "hedge") {
                    self.metrics.hedge_fired.inc();
                }
                None
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("router holds a live sender")
            }
        };
        loop {
            let (no, result) = match pending.take() {
                Some(r) => r,
                None => rx.recv().expect("router holds a live sender"),
            };
            match result {
                Ok(resp) => {
                    self.record_attempts(sctx, &attempts, Some(no));
                    return Some(resp);
                }
                Err(_) => {
                    attempts[no].errored = true;
                    outstanding -= 1;
                    if outstanding > 0 {
                        // A hedge is still racing; let it decide.
                        continue;
                    }
                    if launch(&mut next, &mut outstanding, &mut attempts, "retry") {
                        self.metrics.retries.inc();
                    } else {
                        self.metrics.shard_errors.inc();
                        self.record_attempts(sctx, &attempts, None);
                        return None;
                    }
                }
            }
        }
    }

    /// Record one `router.rpc` span per attempt with its race outcome:
    /// `win` for the attempt whose response was taken, `error` for
    /// attempts that failed, and `lose` for an arm still in flight when
    /// the winner returned — the losing hedge arm.
    fn record_attempts(
        &self,
        sctx: Option<TraceContext>,
        attempts: &[AttemptInfo],
        winner: Option<usize>,
    ) {
        let Some(ctx) = sctx else { return };
        for (i, a) in attempts.iter().enumerate() {
            let outcome = if winner == Some(i) {
                "win"
            } else if a.errored {
                "error"
            } else {
                "lose"
            };
            trace::record_span_with(
                &self.hub,
                &ctx,
                Cow::Owned(a.name.clone()),
                "router.rpc",
                trace::RPC_OFFSET_MS,
                1,
                vec![
                    ("kind", a.kind.to_string()),
                    ("outcome", outcome.to_string()),
                ],
                Some(a.started.elapsed().as_micros() as u64),
            );
        }
    }

    /// Scatter `req` to every shard in parallel; responses in shard order.
    /// A shard that fails entirely (or answers garbage) contributes
    /// `T::default()` — an empty part the merge treats as "no matches
    /// here".
    ///
    /// `label` names the scatter's span (`scatter retrieve` /
    /// `scatter suggest`) and scopes every attempt context beneath it.
    fn scatter<T: serde::Deserialize + Default>(
        &self,
        req: &Request,
        label: &'static str,
    ) -> Vec<T> {
        // Scoped threads don't inherit the thread-local trace stack, so
        // the scatter context is captured here and handed to each slice.
        let rctx = trace::current();
        let sctx = rctx.map(|c| c.child(label));
        let wire = encode_request(req).expect("shard requests encode");
        self.metrics.fanout.observe(self.shards.len() as u64);
        let started = Instant::now();
        let mut out = Vec::with_capacity(self.shards.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(s, client)| {
                    let wire = &wire;
                    scope.spawn(move || {
                        let started = Instant::now();
                        let resp = self.call(s, client, req, wire, sctx);
                        client.latency.observe(started.elapsed().as_micros() as u64);
                        resp
                    })
                })
                .collect();
            for h in handles {
                match h.join().expect("router scatter thread panicked") {
                    None => out.push(T::default()), // counted in call()
                    Some(resp) => {
                        let parsed = (resp.status == Status::Ok)
                            .then(|| crate::shard::parse_body::<T>(&resp.body).ok())
                            .flatten();
                        match parsed {
                            Some(v) => out.push(v),
                            None => {
                                self.metrics.shard_errors.inc();
                                out.push(T::default());
                            }
                        }
                    }
                }
            }
        });
        if let Some(rc) = rctx {
            trace::record_span_with(
                &self.hub,
                &rc,
                Cow::Borrowed(label),
                "router.scatter",
                trace::RPC_OFFSET_MS,
                Stage::Retrieve.dur_ms(),
                vec![("shards", self.shards.len().to_string())],
                Some(started.elapsed().as_micros() as u64),
            );
        }
        out
    }
}

impl Retriever for RemoteRetriever {
    fn retrieve(&self, query: &str, min_candidates: usize, partial_score: f64) -> Vec<Candidate> {
        let req = retrieve_request(&ShardRetrieveRequest {
            query: query.to_string(),
            max_partials: max_partials(min_candidates) as u32,
        });
        let parts: Vec<ShardRetrieveResponse> = self.scatter(&req, "scatter retrieve");
        let started = Instant::now();
        let merged = merge_retrieve(query, min_candidates, partial_score, &parts);
        self.metrics.merge_candidates.observe(merged.len() as u64);
        trace::record_stage(Stage::Merge, Some(started.elapsed().as_micros() as u64));
        merged
    }

    fn suggest(&self, query: &str) -> Option<String> {
        let req = suggest_request(&ShardSuggestRequest {
            query: query.to_string(),
        });
        // No merge stage here: the suggest merge is a handful of string
        // compares, and the request's `merge` span ID is already taken.
        let parts: Vec<ShardSuggestResponse> = self.scatter(&req, "scatter suggest");
        merge_suggest(query, &parts)
    }
}

/// One TCP request/response exchange on a fresh connection.
fn attempt(
    addr: SocketAddr,
    wire: &[u8],
    timeout: Duration,
    limits: &WireLimits,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(wire)?;
    stream.flush()?;
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        match parse_response(&buf, limits) {
            Ok(Some((resp, _))) => return Ok(resp),
            Ok(None) => {}
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    e.to_string(),
                ))
            }
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// A [`Server`] wrapper that sleeps before delegating — the fault injector
/// for slow-replica (hedge) tests.
pub struct DelayServer {
    inner: Arc<dyn Server>,
    delay: Duration,
}

impl DelayServer {
    /// Wrap `inner`, delaying every request by `delay_ms`.
    pub fn new(inner: Arc<dyn Server>, delay_ms: u64) -> DelayServer {
        DelayServer {
            inner,
            delay: Duration::from_millis(delay_ms),
        }
    }
}

impl Server for DelayServer {
    fn handle(&self, ctx: &RequestCtx, req: &Request) -> Response {
        std::thread::sleep(self.delay);
        self.inner.handle(ctx, req)
    }
}

/// Topology and timing knobs for [`ShardedCluster::start`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Index shards (clamped to ≥ 1).
    pub shards: u32,
    /// Replicas per shard (clamped to ≥ 1).
    pub replicas: u32,
    /// Slow-primary threshold before the router hedges, milliseconds.
    pub hedge_ms: u64,
    /// Socket-layer configuration, shared by the router and (with a
    /// permissive per-IP limit — all its traffic is the router's one IP)
    /// the shard servers.
    pub serve: ServeConfig,
    /// Fault injection: delay every request to `(shard, replica)` by the
    /// given milliseconds.
    pub slow_replica: Option<(u32, u32, u64)>,
    /// Corpus scale factor for the cluster's world
    /// ([`geoserp_corpus::WebCorpus::generate_scaled`]); 1 is the base
    /// world.
    pub corpus_scale: u32,
}

impl ClusterConfig {
    /// Defaults: `shards × replicas` topology, 200 ms hedge, default
    /// [`ServeConfig`], no injected faults, unscaled corpus.
    pub fn new(shards: u32, replicas: u32) -> ClusterConfig {
        ClusterConfig {
            shards: shards.max(1),
            replicas: replicas.max(1),
            hedge_ms: 200,
            serve: ServeConfig::new(),
            slow_replica: None,
            corpus_scale: 1,
        }
    }

    /// Set the hedge threshold in milliseconds.
    pub fn hedge_ms(mut self, ms: u64) -> ClusterConfig {
        self.hedge_ms = ms;
        self
    }

    /// Set the socket-layer configuration.
    pub fn serve(mut self, serve: ServeConfig) -> ClusterConfig {
        self.serve = serve;
        self
    }

    /// Inject a fixed per-request delay into one replica.
    pub fn slow_replica(mut self, shard: u32, replica: u32, delay_ms: u64) -> ClusterConfig {
        self.slow_replica = Some((shard, replica, delay_ms));
        self
    }

    /// Set the corpus scale factor (clamped to ≥ 1).
    pub fn corpus_scale(mut self, scale: u32) -> ClusterConfig {
        self.corpus_scale = scale.max(1);
        self
    }
}

/// A complete sharded serving topology on loopback: `shards × replicas`
/// shard servers plus one router front-end, all on ephemeral ports.
///
/// The router's world is built exactly like
/// [`ServedWorld::build`](crate::ServedWorld::build) — same seed-derived
/// geography, corpus, noise model, and datacenter addresses — except its
/// engine retrieves through a [`RemoteRetriever`]. That symmetry is the
/// byte-identity contract.
pub struct ShardedCluster {
    router: Option<SocketServer>,
    router_addr: SocketAddr,
    /// Router-side hub: engine + serve + `router.*` metrics and spans.
    pub hub: Arc<ObsHub>,
    /// Per-replica hubs, `shard_hubs[shard][replica]` — each replica's
    /// serve metrics and spans, under process name `shard<s>.r<r>`. Kept
    /// here so a killed replica's spans survive for trace assembly.
    pub shard_hubs: Vec<Vec<Arc<ObsHub>>>,
    /// `replicas[shard][replica]`; `None` once killed.
    replicas: Vec<Vec<Option<SocketServer>>>,
    addrs: Vec<Vec<SocketAddr>>,
}

impl ShardedCluster {
    /// Build the world for `seed`, start every shard replica and the
    /// router (bound to `addr`, e.g. `127.0.0.1:0`), and wire them up.
    /// `engine` is the base engine config; the serve-tier overrides from
    /// `cfg.serve` ([`ServeConfig::engine_config`]) are applied on top.
    ///
    /// # Errors
    /// Propagates bind/spawn I/O errors; engine-config validation errors
    /// surface as `InvalidInput`.
    pub fn start(
        addr: &str,
        seed: u64,
        engine: EngineConfig,
        cfg: ClusterConfig,
    ) -> std::io::Result<ShardedCluster> {
        let world_seed = Seed::new(seed);
        let geo = UsGeography::generate(world_seed);
        let corpus = Arc::new(geoserp_corpus::WebCorpus::generate_scaled(
            &geo,
            world_seed,
            cfg.corpus_scale,
        ));
        let plan = ShardPlan::contiguous(corpus.pages.len() as u32, cfg.shards);
        // Shards index with the same backend the router's engine config
        // names; captured here because `engine` moves into the router
        // build below.
        let index_backend = engine.index_backend;

        // Shard tier: one ShardService per shard, M socket servers each.
        // All shard traffic originates from the router's single loopback
        // IP, so the per-IP serve limiter must be permissive here. Each
        // replica gets its own hub so assembled traces can attribute
        // spans to the exact process that recorded them.
        let shard_serve = cfg.serve.clone().rate_limit(usize::MAX / 2, 60_000);
        let dc0 = ip("10.50.0.1");
        let mut shard_hubs: Vec<Vec<Arc<ObsHub>>> = Vec::new();
        let mut replicas: Vec<Vec<Option<SocketServer>>> = Vec::new();
        let mut addrs: Vec<Vec<SocketAddr>> = Vec::new();
        for (s, range) in plan.ranges.iter().enumerate() {
            let service: Arc<ShardService> =
                Arc::new(ShardService::build(&corpus, range.clone(), index_backend));
            let mut hubs = Vec::new();
            let mut shard_replicas = Vec::new();
            let mut shard_addrs = Vec::new();
            for r in 0..cfg.replicas {
                let mut svc: Arc<dyn Server> = Arc::clone(&service) as Arc<dyn Server>;
                if let Some((fs, fr, delay_ms)) = cfg.slow_replica {
                    if fs == s as u32 && fr == r {
                        svc = Arc::new(DelayServer::new(svc, delay_ms));
                    }
                }
                let replica_hub = Arc::new(ObsHub::new());
                let server = SocketServer::start_service(
                    "127.0.0.1:0",
                    svc,
                    Arc::clone(&replica_hub),
                    dc0,
                    shard_serve.clone().process(&format!("shard{s}.r{r}")),
                )?;
                shard_addrs.push(server.local_addr());
                hubs.push(replica_hub);
                shard_replicas.push(Some(server));
            }
            shard_hubs.push(hubs);
            replicas.push(shard_replicas);
            addrs.push(shard_addrs);
        }

        // Router tier: a full search world whose retrieval is remote.
        let hub = Arc::new(ObsHub::new());
        let retriever = RemoteRetriever::new(
            addrs.clone(),
            cfg.hedge_ms,
            cfg.serve.read_timeout_ms,
            Arc::clone(&hub),
        );
        let engine = Arc::new(
            SearchEngine::builder(corpus, &geo, world_seed)
                .config(cfg.serve.engine_config(engine))
                .obs(Arc::clone(&hub))
                .retriever(Box::new(retriever))
                .build()
                .map_err(|e: ConfigError| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
                })?,
        );
        let n = engine.config().datacenters;
        let dc_addrs: Vec<Ipv4Addr> = (1..=n)
            .map(|i| format!("10.50.0.{i}").parse().expect("valid address"))
            .collect();
        let service = Arc::new(SearchService::new(engine, &dc_addrs));
        let router = SocketServer::start_service(
            addr,
            service as Arc<dyn Server>,
            Arc::clone(&hub),
            dc_addrs[0],
            cfg.serve.process("router"),
        )?;
        let router_addr = router.local_addr();
        Ok(ShardedCluster {
            router: Some(router),
            router_addr,
            hub,
            shard_hubs,
            replicas,
            addrs,
        })
    }

    /// Assemble the cluster's span logs — the router's plus every shard
    /// replica's — into one merged, deterministic Chrome trace. Reads the
    /// hubs directly (equivalent to pulling each process's `/spans`
    /// collector endpoint), so killed replicas are still represented.
    pub fn assemble_trace(&self) -> String {
        let mut procs = vec![ProcessSpans::from_records(
            "router",
            &self.hub.spans().snapshot(),
        )];
        for (s, hubs) in self.shard_hubs.iter().enumerate() {
            for (r, hub) in hubs.iter().enumerate() {
                procs.push(ProcessSpans::from_records(
                    &format!("shard{s}.r{r}"),
                    &hub.spans().snapshot(),
                ));
            }
        }
        assemble_chrome_trace(&procs)
    }

    /// The router's bound address — where clients send `/search`.
    pub fn router_addr(&self) -> SocketAddr {
        self.router_addr
    }

    /// Replica socket addresses, `[shard][replica]`.
    pub fn shard_addrs(&self) -> &[Vec<SocketAddr>] {
        &self.addrs
    }

    /// Kill one replica: its server shuts down and later connects are
    /// refused. Idempotent; out-of-range indices are a no-op.
    pub fn kill_replica(&mut self, shard: usize, replica: usize) {
        if let Some(server) = self
            .replicas
            .get_mut(shard)
            .and_then(|rs| rs.get_mut(replica))
            .and_then(Option::take)
        {
            server.shutdown();
        }
    }

    /// Shut everything down: router first (stop new scatters), then the
    /// shard replicas.
    pub fn shutdown(mut self) {
        if let Some(router) = self.router.take() {
            router.shutdown();
        }
        for shard in self.replicas.drain(..) {
            for server in shard.into_iter().flatten() {
                server.shutdown();
            }
        }
    }

    /// The virtual day the cluster serves (for building reference worlds).
    pub fn day_ms(day: u32) -> u64 {
        u64::from(day) * DAY_MS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canned(fulls: Vec<u32>) -> Arc<dyn Server> {
        Arc::new(move |_ctx: &RequestCtx, _req: &Request| {
            crate::shard::json_ok(&ShardRetrieveResponse {
                fulls: fulls.clone(),
                partials: vec![],
            })
        })
    }

    fn start_toy(svc: Arc<dyn Server>) -> SocketServer {
        SocketServer::start_service(
            "127.0.0.1:0",
            svc,
            Arc::new(ObsHub::new()),
            ip("10.50.0.1"),
            ServeConfig::new(),
        )
        .unwrap()
    }

    /// A refused-connection address: bind, read the port, drop the
    /// listener.
    fn dead_addr() -> SocketAddr {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    }

    fn toy_request() -> Request {
        retrieve_request(&ShardRetrieveRequest {
            query: "coffee".into(),
            max_partials: 4,
        })
    }

    #[test]
    fn retries_past_a_dead_primary_in_ring_order() {
        let live = start_toy(canned(vec![7]));
        // Place the dead replica wherever the ring sends request 0 first.
        let order = HashRing::new(2, DEFAULT_VNODES).order(0);
        let mut addrs = vec![live.local_addr(); 2];
        addrs[order[0] as usize] = dead_addr();
        addrs[order[1] as usize] = live.local_addr();
        let hub = Arc::new(ObsHub::new());
        let retr = RemoteRetriever::new(vec![addrs], 5_000, 2_000, Arc::clone(&hub));
        let parts: Vec<ShardRetrieveResponse> = retr.scatter(&toy_request(), "scatter retrieve");
        assert_eq!(parts[0].fulls, vec![7], "fallback replica answered");
        let snap = hub.snapshot();
        assert_eq!(snap.counters.get("router.retries"), Some(&1));
        assert_eq!(snap.counters.get("router.hedge_fired"), Some(&0));
        assert_eq!(snap.counters.get("router.shard_errors"), Some(&0));
        live.shutdown();
    }

    #[test]
    fn hedges_a_slow_primary_and_takes_the_fast_replica() {
        let slow = start_toy(Arc::new(DelayServer::new(canned(vec![1]), 600)));
        let fast = start_toy(canned(vec![2]));
        let order = HashRing::new(2, DEFAULT_VNODES).order(0);
        let mut addrs = vec![fast.local_addr(); 2];
        addrs[order[0] as usize] = slow.local_addr();
        addrs[order[1] as usize] = fast.local_addr();
        let hub = Arc::new(ObsHub::new());
        let retr = RemoteRetriever::new(vec![addrs], 60, 5_000, Arc::clone(&hub));
        let parts: Vec<ShardRetrieveResponse> = retr.scatter(&toy_request(), "scatter retrieve");
        assert_eq!(parts[0].fulls, vec![2], "hedge won the race");
        let snap = hub.snapshot();
        assert_eq!(snap.counters.get("router.hedge_fired"), Some(&1));
        assert_eq!(snap.counters.get("router.retries"), Some(&0));
        slow.shutdown();
        fast.shutdown();
    }

    #[test]
    fn all_replicas_dead_degrades_to_an_empty_part() {
        let hub = Arc::new(ObsHub::new());
        let retr = RemoteRetriever::new(
            vec![vec![dead_addr(), dead_addr()]],
            5_000,
            1_000,
            Arc::clone(&hub),
        );
        let parts: Vec<ShardRetrieveResponse> = retr.scatter(&toy_request(), "scatter retrieve");
        assert_eq!(parts[0], ShardRetrieveResponse::default());
        let snap = hub.snapshot();
        assert_eq!(snap.counters.get("router.shard_errors"), Some(&1));
        assert_eq!(
            snap.counters.get("router.retries"),
            Some(&1),
            "the first failure fell through to the second replica"
        );
    }

    #[test]
    fn non_ok_shard_response_counts_as_a_shard_error() {
        let broken: Arc<dyn Server> =
            Arc::new(|_: &RequestCtx, _: &Request| Response::status(Status::InternalError));
        let server = start_toy(broken);
        let hub = Arc::new(ObsHub::new());
        let retr = RemoteRetriever::new(
            vec![vec![server.local_addr()]],
            5_000,
            1_000,
            Arc::clone(&hub),
        );
        let parts: Vec<ShardRetrieveResponse> = retr.scatter(&toy_request(), "scatter retrieve");
        assert_eq!(parts[0], ShardRetrieveResponse::default());
        assert_eq!(hub.snapshot().counters.get("router.shard_errors"), Some(&1));
        server.shutdown();
    }
}
