//! Cluster topology: how the corpus splits into shards and how the router
//! places requests on replicas.
//!
//! * [`ShardPlan`] — contiguous, balanced page-id ranges. Contiguity is
//!   what makes the scatter-gather merge provably exact: every page's
//!   postings live whole inside one shard, so shard-local match
//!   classification is the global one (see `geoserp_engine::shard`).
//! * [`HashRing`] — consistent hashing with virtual nodes over a shard's
//!   replica set. The router walks the ring's successors for its failover
//!   order, so adding a replica only claims keys for the newcomer
//!   (minimal disruption — proptested) instead of reshuffling everyone.

/// FNV-1a 64-bit (the same tiny hash the crawler's digests use; local so
/// the serve crate stays dependency-light).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Finalizing mixer (splitmix64's) applied to key hashes before ring
/// lookup. FNV-1a of short near-identical inputs has weak avalanche:
/// consecutive counter keys land ~`prime` apart, i.e. inside one narrow
/// arc of the ring, starving most replicas. The mixer restores uniform
/// dispersion (the distribution proptest pins the resulting bound).
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Contiguous balanced page-id ranges, one per shard. The first
/// `total % shards` shards take one extra page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `ranges[i]` is shard *i*'s half-open page-id slice.
    pub ranges: Vec<std::ops::Range<u32>>,
}

impl ShardPlan {
    /// Split `total` pages into `shards` contiguous ranges (shards clamped
    /// to ≥ 1).
    pub fn contiguous(total: u32, shards: u32) -> ShardPlan {
        let shards = shards.max(1);
        let base = total / shards;
        let rem = total % shards;
        let mut ranges = Vec::with_capacity(shards as usize);
        let mut lo = 0u32;
        for i in 0..shards {
            let len = base + u32::from(i < rem);
            ranges.push(lo..lo + len);
            lo += len;
        }
        ShardPlan { ranges }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }

    /// The shard owning a page id (ranges are contiguous from 0, so this
    /// is a binary search).
    pub fn shard_of(&self, page: u32) -> Option<u32> {
        self.ranges
            .iter()
            .position(|r| r.contains(&page))
            .map(|i| i as u32)
    }
}

/// Consistent-hash ring over replica ids `0..replicas`, with `vnodes`
/// virtual nodes per replica.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, replica)` sorted by point.
    points: Vec<(u64, u32)>,
    replicas: u32,
}

/// Virtual nodes per replica: enough that per-replica load stays within a
/// small factor of fair share (the distribution proptest pins bounds).
pub const DEFAULT_VNODES: usize = 128;

impl HashRing {
    /// Build a ring for `replicas` replicas (clamped to ≥ 1) with `vnodes`
    /// points each. Replica *r*'s points are
    /// `mix64(fnv1a64("replica-r/vnode-v"))` — stable, so growing the
    /// replica set only *adds* points (the mixer is as necessary here as
    /// for keys: unmixed, a replica's vnodes clump into a few arcs).
    pub fn new(replicas: u32, vnodes: usize) -> HashRing {
        let replicas = replicas.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(replicas as usize * vnodes);
        for r in 0..replicas {
            for v in 0..vnodes {
                points.push((
                    mix64(fnv1a64(format!("replica-{r}/vnode-{v}").as_bytes())),
                    r,
                ));
            }
        }
        points.sort_unstable();
        HashRing { points, replicas }
    }

    /// Number of replicas on the ring.
    pub fn replica_count(&self) -> u32 {
        self.replicas
    }

    /// The replica owning `key`: the first ring point at or after the
    /// key's hash, wrapping at the top.
    pub fn pick(&self, key: u64) -> u32 {
        self.points[self.successor_index(key)].1
    }

    /// The full failover order for `key`: walk the ring's successors,
    /// keeping the first occurrence of each replica. `order(key)[0]` is
    /// [`HashRing::pick`]; the rest are the hedge/retry targets, every
    /// replica exactly once.
    pub fn order(&self, key: u64) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.replicas as usize);
        let start = self.successor_index(key);
        for i in 0..self.points.len() {
            let r = self.points[(start + i) % self.points.len()].1;
            if !out.contains(&r) {
                out.push(r);
                if out.len() == self.replicas as usize {
                    break;
                }
            }
        }
        out
    }

    fn successor_index(&self, key: u64) -> usize {
        let h = mix64(fnv1a64(&key.to_be_bytes()));
        match self.points.binary_search(&(h, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_contiguous_balanced_and_complete() {
        for (total, shards) in [(10u32, 3u32), (9, 3), (1, 4), (0, 2), (100, 1)] {
            let plan = ShardPlan::contiguous(total, shards);
            assert_eq!(plan.shard_count(), shards as usize);
            let mut next = 0u32;
            for r in &plan.ranges {
                assert_eq!(r.start, next, "contiguous from zero");
                next = r.end;
            }
            assert_eq!(next, total, "every page owned");
            let (min, max) = plan
                .ranges
                .iter()
                .map(|r| r.end - r.start)
                .fold((u32::MAX, 0), |(lo, hi), n| (lo.min(n), hi.max(n)));
            assert!(max - min <= 1, "balanced within one page");
        }
        assert_eq!(ShardPlan::contiguous(10, 2).shard_of(4), Some(0));
        assert_eq!(ShardPlan::contiguous(10, 2).shard_of(5), Some(1));
        assert_eq!(ShardPlan::contiguous(10, 2).shard_of(10), None);
    }

    #[test]
    fn ring_is_deterministic_and_covers_all_replicas() {
        let ring = HashRing::new(3, DEFAULT_VNODES);
        for key in 0..200u64 {
            assert_eq!(ring.pick(key), ring.pick(key));
            let order = ring.order(key);
            assert_eq!(order.len(), 3);
            assert_eq!(order[0], ring.pick(key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "every replica appears once");
        }
    }

    #[test]
    fn single_replica_ring_always_picks_it() {
        let ring = HashRing::new(1, 4);
        for key in 0..50u64 {
            assert_eq!(ring.pick(key), 0);
            assert_eq!(ring.order(key), vec![0]);
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
