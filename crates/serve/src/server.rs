//! The TCP front end: a bounded worker pool serving [`SearchService`] over
//! real sockets, speaking the `geoserp-net` wire codec.
//!
//! Architecture: one accept thread feeds accepted connections into a bounded
//! queue (`std::sync::mpsc::sync_channel`); `workers` threads drain it, each
//! running a keep-alive connection loop with read/write timeouts and
//! request-size limits. When the queue is full the accept thread sheds load
//! with an inline `503` instead of letting connections pile up. Shutdown is
//! graceful: in-flight requests finish, queued connections drain, then the
//! workers exit.
//!
//! # Determinism contract
//!
//! The served page for a given `(query, geolocation header, day)` is
//! byte-identical to what the simulated path produces, because the socket
//! layer reconstructs exactly the [`RequestCtx`] the simulator would build:
//!
//! * `seq` mirrors the simulator's per-source formula
//!   (`src_ip << 32 | counter`, counter starting at 0 per source);
//! * `at` is pinned inside the configured virtual [`ServeConfig::day`]
//!   (`day * DAY_MS + wall_elapsed % DAY_MS`) — engine page bytes depend on
//!   time only through the day index;
//! * every request is dispatched to datacenter 0 (`dst = addrs[0]`), the
//!   socket-transport analogue of the paper's DNS pinning (§2.2).
//!
//! Wall time only enters rate-limit windows and metrics, never page bytes.

use geoserp_engine::{ConfigError, EngineConfig, SearchEngine, SearchService};
use geoserp_geo::{Seed, UsGeography};
use geoserp_net::clock::SimInstant;
use geoserp_net::{
    encode_response, parse_request, RateLimitKey, RateLimiter, Request, RequestCtx, Response,
    Server, Status, WireLimits,
};
use geoserp_obs::{Counter, ObsHub};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Milliseconds per simulation day (the engine's time granularity).
pub const DAY_MS: u64 = 86_400_000;

/// Tunables for [`SocketServer::start`]. Build with [`ServeConfig::new`] and
/// adjust with the fluent setters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Worker threads draining the accept queue.
    pub workers: usize,
    /// Accepted connections that may wait for a worker before the accept
    /// thread starts shedding load with `503`s.
    pub queue_depth: usize,
    /// Serve multiple requests per connection.
    pub keep_alive: bool,
    /// Per-read socket timeout; also bounds how long an idle keep-alive
    /// connection is held open.
    pub read_timeout_ms: u64,
    /// Per-write socket timeout.
    pub write_timeout_ms: u64,
    /// Wire-level size limits (head bytes, body bytes, header count).
    pub limits: WireLimits,
    /// Serve-layer per-IP rate limit: admitted requests per window.
    pub rate_limit_max: usize,
    /// Serve-layer rate-limit window, milliseconds.
    pub rate_limit_window_ms: u64,
    /// Virtual day this server lives in (engine results vary by day).
    pub day: u32,
}

impl ServeConfig {
    /// Defaults: 4 workers, queue of 64, keep-alive on, 5 s timeouts,
    /// default wire limits, a permissive serve-layer rate limit
    /// (100 000/min — the engine's own per-IP limiter is separate), day 0.
    pub fn new() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            keep_alive: true,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            limits: WireLimits::new(),
            rate_limit_max: 100_000,
            rate_limit_window_ms: 60_000,
            day: 0,
        }
    }

    /// Set the worker-thread count (clamped to ≥ 1 at start).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Set the accept-queue depth (clamped to ≥ 1 at start).
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n;
        self
    }

    /// Enable or disable keep-alive.
    pub fn keep_alive(mut self, on: bool) -> Self {
        self.keep_alive = on;
        self
    }

    /// Set the read timeout in milliseconds.
    pub fn read_timeout_ms(mut self, ms: u64) -> Self {
        self.read_timeout_ms = ms;
        self
    }

    /// Set the write timeout in milliseconds.
    pub fn write_timeout_ms(mut self, ms: u64) -> Self {
        self.write_timeout_ms = ms;
        self
    }

    /// Set the wire-level size limits.
    pub fn limits(mut self, limits: WireLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Set the serve-layer per-IP rate limit.
    pub fn rate_limit(mut self, max: usize, window_ms: u64) -> Self {
        self.rate_limit_max = max;
        self.rate_limit_window_ms = window_ms;
        self
    }

    /// Set the virtual day served.
    pub fn day(mut self, day: u32) -> Self {
        self.day = day;
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

/// A search world ready to put behind a socket: the engine wrapped in its
/// [`SearchService`], the observability hub they share, and the datacenter
/// addresses the service was registered with.
///
/// Seeding mirrors the simulated path exactly — same seed, same geography,
/// corpus, engine, and `10.50.0.*` datacenter addresses as
/// [`SearchService::install`] — which is what makes served pages
/// byte-comparable to simulated ones.
pub struct ServedWorld {
    /// The service (engine + per-IP limiter + datacenter map).
    pub service: Arc<SearchService>,
    /// Hub shared by the engine and the socket layer (`/metrics` reads it).
    pub hub: Arc<ObsHub>,
    /// Datacenter addresses; the socket layer serves as `addrs[0]` (dc0).
    pub addrs: Vec<Ipv4Addr>,
}

impl ServedWorld {
    /// Generate the world for `seed` and wrap it for serving.
    ///
    /// # Errors
    /// Propagates [`ConfigError`] from engine-config validation.
    pub fn build(seed: u64, config: EngineConfig) -> Result<ServedWorld, ConfigError> {
        let world_seed = Seed::new(seed);
        let geo = UsGeography::generate(world_seed);
        let corpus = Arc::new(geoserp_corpus::WebCorpus::generate(&geo, world_seed));
        let hub = Arc::new(ObsHub::new());
        let engine = Arc::new(
            SearchEngine::builder(corpus, &geo, world_seed)
                .config(config)
                .obs(Arc::clone(&hub))
                .build()?,
        );
        let n = engine.config().datacenters;
        let addrs: Vec<Ipv4Addr> = (1..=n)
            .map(|i| format!("10.50.0.{i}").parse().expect("valid address"))
            .collect();
        let service = Arc::new(SearchService::new(engine, &addrs));
        Ok(ServedWorld {
            service,
            hub,
            addrs,
        })
    }
}

/// Socket-layer counters (all registered on the shared hub, so `/metrics`
/// and `geoserp run --metrics-out`-style snapshots see them).
struct ServeMetrics {
    connections: Counter,
    requests: Counter,
    responses: Counter,
    bad_requests: Counter,
    rate_limited: Counter,
    rejected_busy: Counter,
}

impl ServeMetrics {
    fn resolve(hub: &ObsHub) -> Self {
        let m = hub.metrics();
        ServeMetrics {
            connections: m.counter("serve.connections"),
            requests: m.counter("serve.requests"),
            responses: m.counter("serve.responses"),
            bad_requests: m.counter("serve.bad_requests"),
            rate_limited: m.counter("serve.rate_limited"),
            rejected_busy: m.counter("serve.rejected_busy"),
        }
    }
}

/// State shared by the accept thread and every worker.
struct Shared {
    service: Arc<SearchService>,
    hub: Arc<ObsHub>,
    dc0: Ipv4Addr,
    config: ServeConfig,
    limiter: RateLimiter,
    seq_per_src: Mutex<HashMap<Ipv4Addr, u32>>,
    started: Instant,
    shutdown: AtomicBool,
    metrics: ServeMetrics,
}

impl Shared {
    /// Wall milliseconds since the server started (rate-limit windows and
    /// the intra-day clock; never page bytes).
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The simulator's per-source sequence formula, mirrored.
    fn next_seq(&self, src: Ipv4Addr) -> u64 {
        let mut counters = self.seq_per_src.lock();
        let c = counters.entry(src).or_insert(0);
        let seq = ((u32::from_be_bytes(src.octets()) as u64) << 32) | *c as u64;
        *c += 1;
        seq
    }

    fn route(&self, src: Ipv4Addr, req: &Request) -> Response {
        match req.path.as_str() {
            "/healthz" => Response::ok("ok\n").with_header("Content-Type", "text/plain"),
            "/metrics" => Response::ok(self.hub.snapshot().to_prometheus())
                .with_header("Content-Type", "text/plain; version=0.0.4"),
            _ => {
                let now_ms = self.now_ms();
                if !self.limiter.admit(src, SimInstant(now_ms)) {
                    self.metrics.rate_limited.inc();
                    return Response::status(Status::TooManyRequests)
                        .with_header("X-Reason", "serve-layer rate limit");
                }
                let ctx = RequestCtx {
                    src,
                    dst: self.dc0,
                    at: SimInstant(u64::from(self.config.day) * DAY_MS + now_ms % DAY_MS),
                    seq: self.next_seq(src),
                };
                self.service.handle(&ctx, req)
            }
        }
    }
}

/// Encode and write one response; falls back to a bare status if a header
/// that reached us is unencodable (it came from us, so this is defensive).
fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let bytes = encode_response(resp)
        .or_else(|_| encode_response(&Response::status(resp.status)))
        .expect("bare status responses always encode");
    stream.write_all(&bytes)?;
    stream.flush()
}

/// One connection's lifecycle: keep-alive parse/serve loop with timeouts.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    shared.metrics.connections.inc();
    let src = match stream.peer_addr() {
        Ok(a) => match a.ip() {
            IpAddr::V4(v4) => v4,
            IpAddr::V6(_) => Ipv4Addr::UNSPECIFIED,
        },
        Err(_) => return,
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.config.read_timeout_ms.max(1),
    )));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        shared.config.write_timeout_ms.max(1),
    )));

    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    'conn: loop {
        // Serve every complete request already buffered (pipelining).
        loop {
            match parse_request(&buf, &shared.config.limits) {
                Ok(Some((req, used))) => {
                    buf.drain(..used);
                    shared.metrics.requests.inc();
                    let close_requested = req
                        .header("Connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                    let resp = shared.route(src, &req);
                    if write_response(&mut stream, &resp).is_err() {
                        break 'conn;
                    }
                    shared.metrics.responses.inc();
                    if !shared.config.keep_alive
                        || close_requested
                        || shared.shutdown.load(Ordering::Relaxed)
                    {
                        break 'conn;
                    }
                }
                Ok(None) => break, // need more bytes
                Err(e) => {
                    shared.metrics.bad_requests.inc();
                    let resp = Response::status(Status::BadRequest)
                        .with_header("X-Serve-Error", e.to_string());
                    let _ = write_response(&mut stream, &resp);
                    break 'conn;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF mid-request: best-effort 400, then close.
                if !buf.is_empty() {
                    shared.metrics.bad_requests.inc();
                    let _ = write_response(
                        &mut stream,
                        &Response::status(Status::BadRequest)
                            .with_header("X-Serve-Error", "connection closed mid-request"),
                    );
                }
                break;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            // Idle keep-alive timeout or a stalled sender: drop the
            // connection (its half-request gets no reply — indistinguishable
            // from a network partition, which clients must handle anyway).
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
            Err(_) => break,
        }
    }
}

/// Accept loop: feed the bounded queue, shed load inline when it is full.
fn accept_loop(shared: Arc<Shared>, listener: TcpListener, tx: mpsc::SyncSender<TcpStream>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = conn else { continue };
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full(mut stream)) => {
                shared.metrics.rejected_busy.inc();
                let _ = stream.set_write_timeout(Some(Duration::from_millis(
                    shared.config.write_timeout_ms.max(1),
                )));
                let _ = write_response(
                    &mut stream,
                    &Response::status(Status::ServiceUnavailable)
                        .with_header("X-Reason", "accept queue full"),
                );
            }
            Err(mpsc::TrySendError::Disconnected(_)) => break,
        }
    }
    // `tx` drops here; workers drain the queue and then exit.
}

/// A running socket server. Dropping it shuts it down gracefully.
pub struct SocketServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl SocketServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start the
    /// accept loop plus worker pool serving `world`.
    ///
    /// # Errors
    /// Propagates bind/spawn I/O errors.
    pub fn start(
        addr: &str,
        world: &ServedWorld,
        config: ServeConfig,
    ) -> std::io::Result<SocketServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let limiter = RateLimiter::new(
            RateLimitKey::PerIp,
            config.rate_limit_max.max(1),
            config.rate_limit_window_ms.max(1),
        );
        let metrics = ServeMetrics::resolve(&world.hub);
        let worker_count = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let shared = Arc::new(Shared {
            service: Arc::clone(&world.service),
            hub: Arc::clone(&world.hub),
            dc0: world.addrs[0],
            config,
            limiter,
            seq_per_src: Mutex::new(HashMap::new()),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            metrics,
        });

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("geoserp-serve-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only while waiting; serve
                        // with it released so workers drain in parallel.
                        let next = rx.lock().recv();
                        match next {
                            Ok(stream) => serve_connection(&shared, stream),
                            Err(_) => break, // accept loop gone, queue drained
                        }
                    })?,
            );
        }
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("geoserp-accept".into())
                .spawn(move || accept_loop(shared, listener, tx))?
        };
        Ok(SocketServer {
            shared,
            local_addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, drain queued connections, finish in-flight requests,
    /// and join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop();
    }
}
