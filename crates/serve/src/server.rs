//! The TCP front end: one [`SearchService`] behind real sockets, speaking
//! the `geoserp-net` wire codec, with two selectable serving cores.
//!
//! # Backends
//!
//! * [`ServeBackend::Epoll`] (default) — a readiness-based event loop (see
//!   [`crate::epoll`]): `workers` reactor threads, nonblocking
//!   accept/read/write state machines driven by the incremental
//!   [`parse_request`], pooled buffers, a hashed timer wheel for idle/write
//!   deadlines, and bounded in-flight admission with off-the-accept-path
//!   `503` shedding.
//! * [`ServeBackend::Blocking`] — the reference implementation: one accept
//!   thread feeds accepted connections into a bounded queue; `workers`
//!   threads drain it, each running a blocking keep-alive connection loop
//!   with read/write timeouts. Kept byte-for-byte compatible with the event
//!   loop (the e2e suite runs every contract test against both).
//!
//! Both cores shed load with `503` when their admission bound fills, apply
//! the serve-layer per-IP rate limit (`429`), reject IPv6 peers with a
//! typed `400` (the determinism contract is IPv4-only), and drain
//! gracefully on shutdown.
//!
//! # Determinism contract
//!
//! The served page for a given `(query, geolocation header, day)` is
//! byte-identical to what the simulated path produces, because the socket
//! layer reconstructs exactly the [`RequestCtx`] the simulator would build:
//!
//! * `seq` mirrors the simulator's per-source formula
//!   (`src_ip << 32 | counter`, counter starting at 0 per source and
//!   wrapping at `u32::MAX` like the simulator's);
//! * `at` is pinned inside the configured virtual [`ServeConfig::day`]
//!   (`day * DAY_MS + wall_elapsed % DAY_MS`) — engine page bytes depend on
//!   time only through the day index;
//! * every request is dispatched to datacenter 0 (`dst = addrs[0]`), the
//!   socket-transport analogue of the paper's DNS pinning (§2.2).
//!
//! Wall time only enters rate-limit windows and metrics, never page bytes.

use crate::epoll;
use geoserp_engine::{ConfigError, EngineConfig, SearchEngine, SearchService};
use geoserp_geo::{Seed, UsGeography};
use geoserp_net::clock::SimInstant;
use geoserp_net::{
    encode_response, parse_request, RateLimitKey, RateLimiter, Request, RequestCtx, Response,
    Server, Status, WireLimits, TRACE_HEADER,
};
use geoserp_obs::trace::{self, Stage, TraceContext};
use geoserp_obs::{Counter, ObsHub, SpanRecord};
use parking_lot::Mutex;
use std::borrow::Cow;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Milliseconds per simulation day (the engine's time granularity).
pub const DAY_MS: u64 = 86_400_000;

/// Which serving core [`SocketServer::start`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeBackend {
    /// Thread-per-connection worker pool behind a bounded accept queue
    /// (the reference implementation).
    Blocking,
    /// Readiness-based epoll event loop (the default).
    Epoll,
}

impl ServeBackend {
    /// Every backend, for sweeps (benchmarks, differential tests).
    pub const ALL: [ServeBackend; 2] = [ServeBackend::Blocking, ServeBackend::Epoll];
}

impl std::fmt::Display for ServeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeBackend::Blocking => "blocking",
            ServeBackend::Epoll => "epoll",
        })
    }
}

impl FromStr for ServeBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<ServeBackend, String> {
        match s {
            "blocking" => Ok(ServeBackend::Blocking),
            "epoll" => Ok(ServeBackend::Epoll),
            other => Err(format!(
                "unknown backend {other:?} (expected \"blocking\" or \"epoll\")"
            )),
        }
    }
}

/// Tunables for [`SocketServer::start`]. Build with [`ServeConfig::new`] and
/// adjust with the fluent setters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Serving core to run.
    pub backend: ServeBackend,
    /// Blocking backend: worker threads draining the accept queue.
    /// Epoll backend: event-loop (reactor) threads.
    pub workers: usize,
    /// Admission bound. Blocking backend: accepted connections that may
    /// wait for a worker before the accept thread sheds load with `503`s.
    /// Epoll backend: open connections beyond `workers` admitted before
    /// shedding (total in-flight bound is `workers + queue_depth`, the
    /// blocking core's holding capacity).
    pub queue_depth: usize,
    /// Serve multiple requests per connection.
    pub keep_alive: bool,
    /// Per-read socket timeout; also bounds how long an idle keep-alive
    /// connection is held open.
    pub read_timeout_ms: u64,
    /// Per-write socket timeout (the write deadline in the event loop).
    pub write_timeout_ms: u64,
    /// Wire-level size limits (head bytes, body bytes, header count).
    pub limits: WireLimits,
    /// Serve-layer per-IP rate limit: admitted requests per window.
    pub rate_limit_max: usize,
    /// Serve-layer rate-limit window, milliseconds.
    pub rate_limit_window_ms: u64,
    /// Virtual day this server lives in (engine results vary by day).
    pub day: u32,
    /// Engine per-IP rate-limit ceiling applied when building a world for
    /// serving (see [`ServeConfig::engine_config`]). The engine's own
    /// 30/min limit models Google throttling distinct crawler machines;
    /// behind a socket every client shares one IP, so serving raises it
    /// and shedding moves to the serve-layer limiter above.
    pub engine_rate_limit_max: usize,
    /// Record distributed-tracing spans (request roots, per-stage spans,
    /// `X-Geoserp-Trace` propagation). Off, the serve path records no
    /// spans at all; served bytes are identical either way.
    pub tracing: bool,
    /// Process name this server publishes on its `/spans` collector
    /// endpoint — the row label in an assembled cross-process trace
    /// (`router`, `shard0.r1`, …).
    pub process: String,
}

impl ServeConfig {
    /// Defaults: epoll backend, 4 workers, queue of 64, keep-alive on, 5 s
    /// timeouts, default wire limits, a permissive serve-layer rate limit
    /// (100 000/min — the engine's own per-IP limiter is separate), day 0.
    pub fn new() -> Self {
        ServeConfig {
            backend: ServeBackend::Epoll,
            workers: 4,
            queue_depth: 64,
            keep_alive: true,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            limits: WireLimits::new(),
            rate_limit_max: 100_000,
            rate_limit_window_ms: 60_000,
            day: 0,
            engine_rate_limit_max: usize::MAX / 2,
            tracing: true,
            process: "serve".to_string(),
        }
    }

    /// Select the serving core.
    pub fn backend(mut self, backend: ServeBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Set the worker-thread count (clamped to ≥ 1 at start).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Set the accept-queue depth / admission slack (clamped to ≥ 1).
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n;
        self
    }

    /// Enable or disable keep-alive.
    pub fn keep_alive(mut self, on: bool) -> Self {
        self.keep_alive = on;
        self
    }

    /// Set the read timeout in milliseconds.
    pub fn read_timeout_ms(mut self, ms: u64) -> Self {
        self.read_timeout_ms = ms;
        self
    }

    /// Set the write timeout in milliseconds.
    pub fn write_timeout_ms(mut self, ms: u64) -> Self {
        self.write_timeout_ms = ms;
        self
    }

    /// Set the wire-level size limits.
    pub fn limits(mut self, limits: WireLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Set the serve-layer per-IP rate limit.
    pub fn rate_limit(mut self, max: usize, window_ms: u64) -> Self {
        self.rate_limit_max = max;
        self.rate_limit_window_ms = window_ms;
        self
    }

    /// Set the virtual day served.
    pub fn day(mut self, day: u32) -> Self {
        self.day = day;
        self
    }

    /// Set the engine per-IP rate-limit ceiling used when serving.
    pub fn engine_rate_limit_max(mut self, max: usize) -> Self {
        self.engine_rate_limit_max = max;
        self
    }

    /// Enable or disable distributed-tracing span recording.
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Set the process name published on `/spans`.
    pub fn process(mut self, name: &str) -> Self {
        self.process = name.to_string();
        self
    }

    /// Apply the serve-tier engine overrides to a base engine config: the
    /// per-IP limit bump every serving entry point (CLI `serve`, loadgen
    /// matrix, sharded cluster) must share, in one place.
    pub fn engine_config(&self, base: EngineConfig) -> EngineConfig {
        EngineConfig {
            rate_limit_max: self.engine_rate_limit_max,
            ..base
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

/// A search world ready to put behind a socket: the engine wrapped in its
/// [`SearchService`], the observability hub they share, and the datacenter
/// addresses the service was registered with.
///
/// Seeding mirrors the simulated path exactly — same seed, same geography,
/// corpus, engine, and `10.50.0.*` datacenter addresses as
/// [`SearchService::install`] — which is what makes served pages
/// byte-comparable to simulated ones.
pub struct ServedWorld {
    /// The service (engine + per-IP limiter + datacenter map).
    pub service: Arc<SearchService>,
    /// Hub shared by the engine and the socket layer (`/metrics` reads it).
    pub hub: Arc<ObsHub>,
    /// Datacenter addresses; the socket layer serves as `addrs[0]` (dc0).
    pub addrs: Vec<Ipv4Addr>,
}

impl ServedWorld {
    /// Generate the world for `seed` and wrap it for serving.
    ///
    /// # Errors
    /// Propagates [`ConfigError`] from engine-config validation.
    pub fn build(seed: u64, config: EngineConfig) -> Result<ServedWorld, ConfigError> {
        Self::build_scaled(seed, config, 1)
    }

    /// Like [`ServedWorld::build`], but over a corpus generated at
    /// `corpus_scale` × the base page count
    /// ([`geoserp_corpus::WebCorpus::generate_scaled`]). Scale 1 is the
    /// unscaled world.
    ///
    /// # Errors
    /// Propagates [`ConfigError`] from engine-config validation.
    pub fn build_scaled(
        seed: u64,
        config: EngineConfig,
        corpus_scale: u32,
    ) -> Result<ServedWorld, ConfigError> {
        let world_seed = Seed::new(seed);
        let geo = UsGeography::generate(world_seed);
        let corpus = Arc::new(geoserp_corpus::WebCorpus::generate_scaled(
            &geo,
            world_seed,
            corpus_scale,
        ));
        let hub = Arc::new(ObsHub::new());
        let engine = Arc::new(
            SearchEngine::builder(corpus, &geo, world_seed)
                .config(config)
                .obs(Arc::clone(&hub))
                .build()?,
        );
        let n = engine.config().datacenters;
        let addrs: Vec<Ipv4Addr> = (1..=n)
            .map(|i| format!("10.50.0.{i}").parse().expect("valid address"))
            .collect();
        let service = Arc::new(SearchService::new(engine, &addrs));
        Ok(ServedWorld {
            service,
            hub,
            addrs,
        })
    }
}

/// Socket-layer counters (all registered on the shared hub, so `/metrics`
/// and `geoserp run --metrics-out`-style snapshots see them).
pub(crate) struct ServeMetrics {
    pub(crate) connections: Counter,
    pub(crate) requests: Counter,
    pub(crate) responses: Counter,
    pub(crate) bad_requests: Counter,
    pub(crate) rate_limited: Counter,
    pub(crate) rejected_busy: Counter,
}

impl ServeMetrics {
    fn resolve(hub: &ObsHub) -> Self {
        let m = hub.metrics();
        ServeMetrics {
            connections: m.counter("serve.connections"),
            requests: m.counter("serve.requests"),
            responses: m.counter("serve.responses"),
            bad_requests: m.counter("serve.bad_requests"),
            rate_limited: m.counter("serve.rate_limited"),
            rejected_busy: m.counter("serve.rejected_busy"),
        }
    }
}

/// Per-source request sequence counters, mirroring the simulator's formula.
///
/// The counter half wraps at `u32::MAX` (the simulator's counter is a
/// `u32`, so the mirrored formula must wrap rather than panic in debug
/// builds at the 2³²nd request from one source).
pub(crate) struct SeqCounters(Mutex<HashMap<Ipv4Addr, u32>>);

impl SeqCounters {
    pub(crate) fn new() -> Self {
        SeqCounters(Mutex::new(HashMap::new()))
    }

    /// Next sequence number for `src`: `src_ip << 32 | counter`.
    pub(crate) fn next(&self, src: Ipv4Addr) -> u64 {
        let mut counters = self.0.lock();
        let c = counters.entry(src).or_insert(0);
        let seq = ((u32::from_be_bytes(src.octets()) as u64) << 32) | *c as u64;
        *c = c.wrapping_add(1);
        seq
    }

    #[cfg(test)]
    fn set(&self, src: Ipv4Addr, counter: u32) {
        self.0.lock().insert(src, counter);
    }
}

/// The `400` an IPv6 peer receives: the determinism contract (per-source
/// sequence numbers, rate-limit keys) is defined over IPv4 addresses only.
pub(crate) fn ipv6_reject_response() -> Response {
    Response::status(Status::BadRequest).with_header("X-Reason", "ipv4-only determinism contract")
}

/// The `503` shed when the admission bound is full.
pub(crate) fn shed_response() -> Response {
    Response::status(Status::ServiceUnavailable).with_header("X-Reason", "accept queue full")
}

/// State shared by every serving thread of one server, either backend.
pub(crate) struct Shared {
    pub(crate) service: Arc<dyn Server>,
    pub(crate) hub: Arc<ObsHub>,
    pub(crate) dc0: Ipv4Addr,
    pub(crate) config: ServeConfig,
    pub(crate) limiter: RateLimiter,
    pub(crate) seq: SeqCounters,
    pub(crate) started: Instant,
    pub(crate) shutdown: AtomicBool,
    pub(crate) metrics: ServeMetrics,
}

/// The outcome of routing one request: the response plus, when the
/// request was traced, the context the transport should attribute the
/// response-flush stage span to (recorded *after* the bytes are written).
pub(crate) struct Routed {
    pub(crate) resp: Response,
    pub(crate) trace: Option<TraceContext>,
}

impl Routed {
    fn untraced(resp: Response) -> Routed {
        Routed { resp, trace: None }
    }
}

impl Shared {
    /// Wall milliseconds since the server started (rate-limit windows and
    /// the intra-day clock; never page bytes).
    pub(crate) fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Route one parsed request. `ready` is when the transport became
    /// responsible for this request (connection accepted, or the previous
    /// response finished on a keep-alive connection) and `parse_us` the
    /// wall time the wire parse took — together they time the queue and
    /// parse stages of a traced request.
    pub(crate) fn route(
        &self,
        src: Ipv4Addr,
        req: &Request,
        ready: Instant,
        parse_us: u64,
    ) -> Routed {
        match req.path.as_str() {
            "/healthz" => {
                Routed::untraced(Response::ok("ok\n").with_header("Content-Type", "text/plain"))
            }
            "/metrics" => Routed::untraced(
                Response::ok(self.hub.snapshot().to_prometheus())
                    .with_header("Content-Type", "text/plain; version=0.0.4"),
            ),
            "/metrics.json" => Routed::untraced(
                Response::ok(self.hub.snapshot().to_json())
                    .with_header("Content-Type", "application/json"),
            ),
            "/spans" => Routed::untraced(
                Response::ok(trace::process_spans_json(
                    &self.config.process,
                    &self.hub.spans().snapshot(),
                ))
                .with_header("Content-Type", "application/json"),
            ),
            _ => {
                let dispatched = Instant::now();
                let now_ms = self.now_ms();
                if !self.limiter.admit(src, SimInstant(now_ms)) {
                    self.metrics.rate_limited.inc();
                    return Routed::untraced(
                        Response::status(Status::TooManyRequests)
                            .with_header("X-Reason", "serve-layer rate limit"),
                    );
                }
                let ctx = RequestCtx {
                    src,
                    dst: self.dc0,
                    at: SimInstant(u64::from(self.config.day) * DAY_MS + now_ms % DAY_MS),
                    seq: self.seq.next(src),
                };
                if !self.config.tracing || !self.hub.spans().is_enabled() {
                    return Routed::untraced(self.service.handle(&ctx, req));
                }
                // Derive the deterministic trace context: a fresh root for
                // an edge request, or a child of the caller's rpc span for
                // a downstream hop carrying the propagation header.
                let name = format!("request {}", req.path);
                let (parent, tctx) = match req.header(TRACE_HEADER).and_then(TraceContext::parse) {
                    Some(p) => (p.span, p.at_offset(trace::RPC_OFFSET_MS).child(&name)),
                    None => (0, TraceContext::root(ctx.seq)),
                };
                let queue_us = dispatched
                    .saturating_duration_since(ready)
                    .as_micros()
                    .saturating_sub(parse_us as u128) as u64;
                trace::record_stage_with(&self.hub, &tctx, Stage::Queue, Some(queue_us));
                trace::record_stage_with(&self.hub, &tctx, Stage::Parse, Some(parse_us));
                let handle_started = Instant::now();
                let resp = {
                    let _g = trace::enter(tctx, Arc::clone(&self.hub));
                    self.service.handle(&ctx, req)
                };
                self.hub.spans().record(SpanRecord {
                    id: tctx.span,
                    parent,
                    name: Cow::Owned(name),
                    cat: "serve.request",
                    tid: 0,
                    start_ms: tctx.base_ms,
                    dur_ms: trace::REQUEST_DUR_MS,
                    args: vec![("trace", tctx.trace_hex())],
                    wall_us: Some(handle_started.elapsed().as_micros() as u64),
                });
                Routed {
                    resp,
                    trace: Some(tctx),
                }
            }
        }
    }
}

/// Encode a response, falling back to a bare status if a header that
/// reached us is unencodable (it came from us, so this is defensive).
pub(crate) fn encode_or_bare(resp: &Response) -> Vec<u8> {
    encode_response(resp)
        .or_else(|_| encode_response(&Response::status(resp.status)))
        .expect("bare status responses always encode")
}

/// Encode and write one response on a blocking stream.
fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    stream.write_all(&encode_or_bare(resp))?;
    stream.flush()
}

/// One blocking connection's lifecycle: keep-alive parse/serve loop with
/// socket timeouts. `accepted` is when the listener handed us the stream —
/// the start of the first request's queue-wait stage.
fn serve_connection(shared: &Shared, mut stream: TcpStream, accepted: Instant) {
    shared.metrics.connections.inc();
    let src = match stream.peer_addr() {
        Ok(a) => match a.ip() {
            IpAddr::V4(v4) => v4,
            IpAddr::V6(_) => {
                // The determinism contract is IPv4-only: reject with a
                // typed reason instead of silently collapsing every IPv6
                // client onto one sequence counter and rate-limit bucket.
                shared.metrics.bad_requests.inc();
                let _ = stream.set_write_timeout(Some(Duration::from_millis(
                    shared.config.write_timeout_ms.max(1),
                )));
                let _ = write_response(&mut stream, &ipv6_reject_response());
                return;
            }
        },
        Err(_) => return,
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.config.read_timeout_ms.max(1),
    )));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        shared.config.write_timeout_ms.max(1),
    )));

    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    // Queue-wait clock for the request in flight: starts at accept, then
    // resets after each response (so on keep-alive connections it includes
    // client idle time between requests — documented in the trace format).
    let mut ready = accepted;
    'conn: loop {
        // Serve every complete request already buffered (pipelining).
        loop {
            let parse_started = Instant::now();
            match parse_request(&buf, &shared.config.limits) {
                Ok(Some((req, used))) => {
                    let parse_us = parse_started.elapsed().as_micros() as u64;
                    buf.drain(..used);
                    shared.metrics.requests.inc();
                    let close_requested = req
                        .header("Connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                    let routed = shared.route(src, &req, ready, parse_us);
                    let write_started = Instant::now();
                    if write_response(&mut stream, &routed.resp).is_err() {
                        break 'conn;
                    }
                    if let Some(tctx) = routed.trace {
                        trace::record_stage_with(
                            &shared.hub,
                            &tctx,
                            Stage::Flush,
                            Some(write_started.elapsed().as_micros() as u64),
                        );
                    }
                    shared.metrics.responses.inc();
                    ready = Instant::now();
                    if !shared.config.keep_alive
                        || close_requested
                        || shared.shutdown.load(Ordering::Relaxed)
                    {
                        break 'conn;
                    }
                }
                Ok(None) => break, // need more bytes
                Err(e) => {
                    shared.metrics.bad_requests.inc();
                    let resp = Response::status(Status::BadRequest)
                        .with_header("X-Serve-Error", e.to_string());
                    let _ = write_response(&mut stream, &resp);
                    break 'conn;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF mid-request: best-effort 400, then close.
                if !buf.is_empty() {
                    shared.metrics.bad_requests.inc();
                    let _ = write_response(
                        &mut stream,
                        &Response::status(Status::BadRequest)
                            .with_header("X-Serve-Error", "connection closed mid-request"),
                    );
                }
                break;
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            // Idle keep-alive timeout or a stalled sender: drop the
            // connection (its half-request gets no reply — indistinguishable
            // from a network partition, which clients must handle anyway).
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => break,
            Err(_) => break,
        }
    }
}

/// Blocking-core accept loop: feed the bounded queue, shed load when it is
/// full. The shed write is **nonblocking best-effort**: a stalled or
/// malicious peer must never hold the accept thread (one zero-window client
/// with the old blocking `write_all` could freeze all accepts for the full
/// write timeout).
fn accept_loop(
    shared: Arc<Shared>,
    listener: TcpListener,
    tx: mpsc::SyncSender<(TcpStream, Instant)>,
) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = conn else { continue };
        match tx.try_send((stream, Instant::now())) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full((stream, _))) => {
                shared.metrics.rejected_busy.inc();
                shed_nonblocking(stream);
            }
            Err(mpsc::TrySendError::Disconnected(_)) => break,
        }
    }
    // `tx` drops here; workers drain the queue and then exit.
}

/// Write the shed `503` without ever blocking: set the socket nonblocking,
/// try the write once, close. Whatever the kernel buffer does not take is
/// dropped — the peer sees a reset instead, which is still a refusal.
pub(crate) fn shed_nonblocking(stream: TcpStream) {
    if stream.set_nonblocking(true).is_ok() {
        let _ = (&stream).write(&encode_or_bare(&shed_response()));
    }
}

/// A running socket server. Dropping it shuts it down gracefully.
pub struct SocketServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Epoll backend: one waker per event loop, to interrupt their sleeps.
    wakers: Vec<Arc<mio::Waker>>,
}

impl SocketServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start the
    /// configured backend serving `world`.
    ///
    /// # Errors
    /// Propagates bind/spawn I/O errors.
    pub fn start(
        addr: &str,
        world: &ServedWorld,
        config: ServeConfig,
    ) -> std::io::Result<SocketServer> {
        let service: Arc<dyn Server> = Arc::clone(&world.service) as Arc<dyn Server>;
        Self::start_service(
            addr,
            service,
            Arc::clone(&world.hub),
            world.addrs[0],
            config,
        )
    }

    /// Bind `addr` and serve an arbitrary [`Server`] — the generalization
    /// the sharded tier uses to put shard services and the router behind
    /// the very same backends (and the same `/healthz`, `/metrics`,
    /// limiter, and sequence-counter front matter) as a search world.
    ///
    /// `dc0` is the datacenter address requests are attributed to (the
    /// DNS-pinning analogue); services that ignore it may pass any
    /// address.
    ///
    /// # Errors
    /// Propagates bind/spawn I/O errors.
    pub fn start_service(
        addr: &str,
        service: Arc<dyn Server>,
        hub: Arc<ObsHub>,
        dc0: Ipv4Addr,
        config: ServeConfig,
    ) -> std::io::Result<SocketServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let limiter = RateLimiter::new(
            RateLimitKey::PerIp,
            config.rate_limit_max.max(1),
            config.rate_limit_window_ms.max(1),
        );
        let metrics = ServeMetrics::resolve(&hub);
        let backend = config.backend;
        let worker_count = config.workers.max(1);
        let queue_depth = config.queue_depth.max(1);
        let shared = Arc::new(Shared {
            service,
            hub,
            dc0,
            config,
            limiter,
            seq: SeqCounters::new(),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            metrics,
        });

        match backend {
            ServeBackend::Epoll => {
                let (workers, wakers) =
                    epoll::start(Arc::clone(&shared), listener, worker_count, queue_depth)?;
                Ok(SocketServer {
                    shared,
                    local_addr,
                    accept: None,
                    workers,
                    wakers,
                })
            }
            ServeBackend::Blocking => {
                let (tx, rx) = mpsc::sync_channel::<(TcpStream, Instant)>(queue_depth);
                let rx = Arc::new(Mutex::new(rx));
                let mut workers = Vec::with_capacity(worker_count);
                for i in 0..worker_count {
                    let shared = Arc::clone(&shared);
                    let rx = Arc::clone(&rx);
                    workers.push(
                        std::thread::Builder::new()
                            .name(format!("geoserp-serve-{i}"))
                            .spawn(move || loop {
                                // Hold the receiver lock only while waiting;
                                // serve with it released so workers drain in
                                // parallel.
                                let next = rx.lock().recv();
                                match next {
                                    Ok((stream, accepted)) => {
                                        serve_connection(&shared, stream, accepted)
                                    }
                                    Err(_) => break, // accept loop gone, queue drained
                                }
                            })?,
                    );
                }
                let accept = {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name("geoserp-accept".into())
                        .spawn(move || accept_loop(shared, listener, tx))?
                };
                Ok(SocketServer {
                    shared,
                    local_addr,
                    accept: Some(accept),
                    workers,
                    wakers: Vec::new(),
                })
            }
        }
    }

    /// The bound address (useful with an ephemeral `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, drain queued/in-flight connections, and join every
    /// thread. Idle keep-alive connections are closed promptly (the event
    /// loop's drain path wakes and closes them; the blocking core bounds
    /// them by its read timeout).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if self.wakers.is_empty() {
            // Blocking backend: unblock the accept loop with a throwaway
            // connection.
            let _ = TcpStream::connect(self.local_addr);
        } else {
            for waker in &self.wakers {
                let _ = waker.wake();
            }
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_counter_wraps_instead_of_panicking() {
        let seq = SeqCounters::new();
        let src: Ipv4Addr = "10.1.2.3".parse().unwrap();
        let ip_half = (u32::from_be_bytes(src.octets()) as u64) << 32;
        seq.set(src, u32::MAX);
        // The 2^32nd request carries counter u32::MAX …
        assert_eq!(seq.next(src), ip_half | u64::from(u32::MAX));
        // … and the next one wraps to 0 (debug builds used to panic here).
        assert_eq!(seq.next(src), ip_half);
        assert_eq!(seq.next(src), ip_half | 1);
    }

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!(
            "epoll".parse::<ServeBackend>().unwrap(),
            ServeBackend::Epoll
        );
        assert_eq!(
            "blocking".parse::<ServeBackend>().unwrap(),
            ServeBackend::Blocking
        );
        assert!("kqueue".parse::<ServeBackend>().is_err());
        for b in ServeBackend::ALL {
            assert_eq!(b.to_string().parse::<ServeBackend>().unwrap(), b);
        }
    }

    #[test]
    fn reject_and_shed_responses_have_typed_reasons() {
        let v6 = ipv6_reject_response();
        assert_eq!(v6.status, Status::BadRequest);
        assert_eq!(
            v6.header("X-Reason"),
            Some("ipv4-only determinism contract")
        );
        let shed = shed_response();
        assert_eq!(shed.status, Status::ServiceUnavailable);
        assert_eq!(shed.header("X-Reason"), Some("accept queue full"));
    }
}
