//! The readiness-based serving core: `workers` epoll event loops over
//! nonblocking sockets.
//!
//! # Architecture
//!
//! Loop 0 owns the listener. Accepted connections are admitted against a
//! shared in-flight bound (`workers + queue_depth`, the blocking core's
//! holding capacity) — beyond it they are shed with a `503` written
//! nonblocking, so a stalled peer can never hold up the accept path — and
//! distributed round-robin across the loops via lock-guarded inboxes plus
//! an eventfd [`Waker`] per loop.
//!
//! Each loop owns its connections outright: a [`Slab`] keyed by epoll
//! token, a [`BufferPool`] so the steady-state hot path allocates nothing,
//! and a hashed [`TimerWheel`] driving keep-alive idle timeouts and write
//! deadlines (lazy cancellation by per-connection generation).
//!
//! A connection is a small state machine (`pump`): parse every complete
//! request buffered (the incremental [`parse_request`] handles pipelining),
//! route, append encoded responses to the write buffer, flush. On a partial
//! write the loop switches the connection's interest to WRITABLE-only —
//! reads pause, so a client that stops reading backpressures through its
//! TCP window instead of growing our buffers — and arms a write deadline.
//! When the flush completes the pump resumes reading.
//!
//! All registrations are edge-triggered, so every read/write/accept path
//! drains to `WouldBlock` before returning to the poller.
//!
//! # Drain
//!
//! Shutdown wakes every loop: the listener is dropped, idle keep-alive
//! connections are closed *immediately* (no waiting out the read timeout —
//! this is what bounds shutdown latency), connections with queued response
//! bytes finish flushing under their write deadline, and each loop exits
//! once its slab is empty.

use crate::bufpool::{BufferPool, Slab};
use crate::server::{encode_or_bare, ipv6_reject_response, shed_response, Shared};
use crate::timer::{TimerEntry, TimerWheel};
use geoserp_net::{parse_request, Response, Status};
use geoserp_obs::trace::{self, Stage, TraceContext};
use mio::event::Source;
use mio::net::{TcpListener, TcpStream};
use mio::{Events, Interest, Poll, Token, Waker};
use parking_lot::Mutex;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token the per-loop waker fires with.
const WAKER_KEY: usize = usize::MAX;
/// Token the listener (loop 0 only) fires with.
const LISTENER_KEY: usize = usize::MAX - 1;
/// Timer wheel granularity. Deadlines land within one tick.
const TICK_MS: u64 = 25;
/// Timer wheel slots (25 ms × 256 = one rotation per 6.4 s).
const WHEEL_SLOTS: usize = 256;
/// Stack chunk size for draining a readable socket.
const READ_CHUNK: usize = 16 * 1024;
/// Soft cap on buffered request bytes before the pump interleaves
/// processing with reading (bounds memory under a pipelining flood).
/// Only honored while the parser is consuming: a single incomplete
/// request larger than the cap must keep reading (bounded by the wire
/// limits) or the pump would livelock.
const READ_SOFT_CAP: usize = 64 * 1024;
/// Nominal pooled buffer capacity.
const BUF_CAPACITY: usize = 8 * 1024;
/// Idle buffers kept per loop.
const MAX_POOLED: usize = 256;
/// Events per poll call.
const EVENTS_CAPACITY: usize = 256;

/// A connection handed from the accept loop to its owning event loop,
/// stamped with its accept instant (the start of the first request's
/// queue-wait stage).
type Handoff = (TcpStream, Ipv4Addr, Instant);

/// How another thread reaches one event loop.
struct Injector {
    inbox: Arc<Mutex<Vec<Handoff>>>,
    waker: Arc<Waker>,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    src: Ipv4Addr,
    /// Bytes received, not yet parsed into a complete request.
    read_buf: Vec<u8>,
    /// Encoded responses queued for the peer.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written.
    written: usize,
    /// Queued *routed* responses as `(end offset in write_buf, trace
    /// context, queued-at instant)`, end offsets ascending
    /// (`serve.responses` counts a response when its last byte reaches the
    /// socket, matching the blocking core's count-after-write; the flush
    /// stage span is recorded at the same point).
    resp_ends: Vec<(usize, Option<TraceContext>, Instant)>,
    /// Queue-wait clock for the request in flight: the accept instant,
    /// reset each time a response is queued.
    ready: Instant,
    /// Generation of the most recently armed timer (stale wheel entries
    /// carry an older generation and are ignored).
    gen: u64,
    /// Close once `write_buf` drains (shutdown, `Connection: close`,
    /// keep-alive off, or a protocol error was answered).
    close_after_flush: bool,
    /// Interest currently registered is WRITABLE-only (reads paused).
    wants_writable: bool,
    /// Peer sent EOF.
    eof: bool,
}

impl Conn {
    /// Remove the queued responses whose bytes have fully reached the
    /// socket, yielding their trace contexts and queued-at instants.
    /// Returns an empty (non-allocating) vec on the common nothing-
    /// completed path.
    fn take_flushed(&mut self) -> Vec<(Option<TraceContext>, Instant)> {
        let written = self.written;
        let n = self
            .resp_ends
            .iter()
            .take_while(|(end, _, _)| *end <= written)
            .count();
        if n == 0 {
            return Vec::new();
        }
        self.resp_ends
            .drain(..n)
            .map(|(_, t, at)| (t, at))
            .collect()
    }
}

enum Flush {
    /// Write buffer fully drained; connection still open.
    Flushed,
    /// Partial write: WRITABLE interest + write deadline armed.
    Pending,
    /// Connection closed (error, or `close_after_flush` completed).
    Closed,
}

enum Fill {
    /// New bytes buffered (or EOF just observed) — reprocess.
    Progress,
    /// Nothing to read now; wait for the next readable edge.
    Idle,
    /// Connection closed on read error.
    Closed,
}

/// Event-loop join handles plus one shutdown waker per loop.
pub(crate) type LoopHandles = (Vec<JoinHandle<()>>, Vec<Arc<Waker>>);

/// Spawn the event loops. Returns their join handles and one waker per
/// loop (used by [`crate::SocketServer`] to signal shutdown).
pub(crate) fn start(
    shared: Arc<Shared>,
    listener: std::net::TcpListener,
    workers: usize,
    queue_depth: usize,
) -> std::io::Result<LoopHandles> {
    let nloops = workers.max(1);
    let capacity = nloops + queue_depth.max(1);
    let open = Arc::new(AtomicUsize::new(0));

    let mut seeds = Vec::with_capacity(nloops);
    let mut injectors = Vec::with_capacity(nloops);
    for _ in 0..nloops {
        let poll = Poll::new()?;
        let waker = Arc::new(Waker::new(poll.registry(), Token(WAKER_KEY))?);
        let inbox: Arc<Mutex<Vec<Handoff>>> = Arc::new(Mutex::new(Vec::new()));
        injectors.push(Injector {
            inbox: Arc::clone(&inbox),
            waker: Arc::clone(&waker),
        });
        seeds.push((poll, inbox));
    }
    let mut mio_listener = TcpListener::from_std_checked(listener)?;
    seeds[0]
        .0
        .registry()
        .register(&mut mio_listener, Token(LISTENER_KEY), Interest::READABLE)?;

    let wakers: Vec<Arc<Waker>> = injectors.iter().map(|i| Arc::clone(&i.waker)).collect();
    let injectors = Arc::new(injectors);
    let mut listener_slot = Some(mio_listener);
    let mut handles = Vec::with_capacity(nloops);
    for (index, (poll, inbox)) in seeds.into_iter().enumerate() {
        let mut el = EventLoop {
            index,
            shared: Arc::clone(&shared),
            poll,
            conns: Slab::new(),
            wheel: TimerWheel::new(TICK_MS, WHEEL_SLOTS),
            bufs: BufferPool::new(BUF_CAPACITY, MAX_POOLED),
            inbox,
            open: Arc::clone(&open),
            capacity,
            listener: if index == 0 {
                listener_slot.take()
            } else {
                None
            },
            peers: Arc::clone(&injectors),
            next_peer: 0,
            gen_counter: 0,
            draining: false,
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("geoserp-epoll-{index}"))
                .spawn(move || el.run())?,
        );
    }
    Ok((handles, wakers))
}

struct EventLoop {
    index: usize,
    shared: Arc<Shared>,
    poll: Poll,
    conns: Slab<Conn>,
    wheel: TimerWheel,
    bufs: BufferPool,
    inbox: Arc<Mutex<Vec<Handoff>>>,
    /// Connections currently admitted, across all loops.
    open: Arc<AtomicUsize>,
    /// Admission bound on `open`.
    capacity: usize,
    /// Loop 0 only.
    listener: Option<TcpListener>,
    /// Every loop's injector, for round-robin distribution (loop 0 only).
    peers: Arc<Vec<Injector>>,
    next_peer: usize,
    gen_counter: u64,
    draining: bool,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events = Events::with_capacity(EVENTS_CAPACITY);
        let mut expired: Vec<TimerEntry> = Vec::new();
        loop {
            let now = self.shared.now_ms();
            let timeout = self.wheel.poll_timeout(now).map(Duration::from_millis);
            if self.poll.poll(&mut events, timeout).is_err() {
                // Persistent selector failure: nothing readiness-based can
                // recover; bail out rather than spin.
                break;
            }
            let mut accept_ready = false;
            for ev in events.iter() {
                match ev.token().0 {
                    WAKER_KEY => {} // its work (inbox, shutdown) is below
                    LISTENER_KEY => accept_ready = true,
                    key => {
                        if self.conns.get_mut(key).is_none() {
                            continue; // closed earlier this batch
                        }
                        if ev.is_readable() {
                            self.pump(key);
                        } else if ev.is_writable() {
                            if let Flush::Flushed = self.flush(key) {
                                self.pump(key);
                            }
                        }
                    }
                }
            }
            if !self.draining && self.shared.shutdown.load(Ordering::Relaxed) {
                self.begin_drain();
            }
            self.drain_inbox();
            if accept_ready {
                self.accept_all();
            }
            let now = self.shared.now_ms();
            expired.clear();
            self.wheel.expire(now, &mut expired);
            for e in &expired {
                let live = matches!(self.conns.get_mut(e.token), Some(c) if c.gen == e.gen);
                if live {
                    // Deadline passed (idle keep-alive, read stall, or a
                    // write the peer refuses to drain): drop the connection.
                    self.close(e.token);
                }
            }
            if self.draining && self.conns.is_empty() {
                break;
            }
        }
    }

    /// Drive one connection as far as readiness allows: parse and serve
    /// everything buffered, flush, read more, repeat until `WouldBlock`
    /// (or the connection closes / stalls on write).
    fn pump(&mut self, key: usize) {
        loop {
            let consumed = self.process_requests(key);
            self.finish_eof(key);
            match self.flush(key) {
                Flush::Closed | Flush::Pending => return,
                Flush::Flushed => {}
            }
            match self.fill(key, consumed > 0) {
                Fill::Closed => return,
                Fill::Progress => continue,
                Fill::Idle => {
                    self.await_readable(key);
                    return;
                }
            }
        }
    }

    /// Parse and route every complete request in the read buffer,
    /// appending encoded responses to the write buffer. Returns the
    /// number of request bytes consumed (0 means the parser is waiting
    /// for more bytes — [`Self::fill`] must then read past the soft cap).
    fn process_requests(&mut self, key: usize) -> usize {
        let mut consumed = 0;
        loop {
            let (src, ready, parse_res, parse_us) = match self.conns.get_mut(key) {
                Some(c) if !c.close_after_flush => {
                    let parse_started = Instant::now();
                    let res = parse_request(&c.read_buf[consumed..], &self.shared.config.limits);
                    (
                        c.src,
                        c.ready,
                        res,
                        parse_started.elapsed().as_micros() as u64,
                    )
                }
                _ => break,
            };
            match parse_res {
                Ok(Some((req, used))) => {
                    consumed += used;
                    self.shared.metrics.requests.inc();
                    let close_requested = req
                        .header("Connection")
                        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                    let routed = self.shared.route(src, &req, ready, parse_us);
                    let bytes = encode_or_bare(&routed.resp);
                    let Some(c) = self.conns.get_mut(key) else {
                        break;
                    };
                    c.write_buf.extend_from_slice(&bytes);
                    c.resp_ends
                        .push((c.write_buf.len(), routed.trace, Instant::now()));
                    c.ready = Instant::now();
                    if !self.shared.config.keep_alive
                        || close_requested
                        || self.shared.shutdown.load(Ordering::Relaxed)
                    {
                        c.close_after_flush = true;
                        break;
                    }
                }
                Ok(None) => break, // need more bytes
                Err(e) => {
                    self.shared.metrics.bad_requests.inc();
                    let resp = Response::status(Status::BadRequest)
                        .with_header("X-Serve-Error", e.to_string());
                    let bytes = encode_or_bare(&resp);
                    let Some(c) = self.conns.get_mut(key) else {
                        break;
                    };
                    c.write_buf.extend_from_slice(&bytes);
                    c.close_after_flush = true;
                    break;
                }
            }
        }
        if consumed > 0 {
            if let Some(c) = self.conns.get_mut(key) {
                c.read_buf.drain(..consumed);
            }
        }
        consumed
    }

    /// After EOF: answer a trailing half-request with `400` (mirroring the
    /// blocking core) and mark the connection to close once flushed.
    fn finish_eof(&mut self, key: usize) {
        let leftover = match self.conns.get_mut(key) {
            Some(c) if c.eof => {
                let leftover = !c.read_buf.is_empty() && !c.close_after_flush;
                if leftover {
                    c.read_buf.clear();
                    let resp = Response::status(Status::BadRequest)
                        .with_header("X-Serve-Error", "connection closed mid-request");
                    c.write_buf.extend_from_slice(&encode_or_bare(&resp));
                }
                c.close_after_flush = true;
                leftover
            }
            _ => return,
        };
        if leftover {
            self.shared.metrics.bad_requests.inc();
        }
    }

    /// Write as much of the pending response bytes as the socket takes.
    fn flush(&mut self, key: usize) -> Flush {
        loop {
            let res = {
                let Some(c) = self.conns.get_mut(key) else {
                    return Flush::Closed;
                };
                if c.written >= c.write_buf.len() {
                    break;
                }
                c.stream.write(&c.write_buf[c.written..])
            };
            match res {
                Ok(0) => {
                    self.close(key);
                    return Flush::Closed;
                }
                Ok(n) => {
                    let flushed = match self.conns.get_mut(key) {
                        Some(c) => {
                            c.written += n;
                            c.take_flushed()
                        }
                        None => Vec::new(),
                    };
                    if !flushed.is_empty() {
                        self.shared.metrics.responses.add(flushed.len() as u64);
                        for (tctx, queued_at) in flushed {
                            if let Some(tctx) = tctx {
                                trace::record_stage_with(
                                    &self.shared.hub,
                                    &tctx,
                                    Stage::Flush,
                                    Some(queued_at.elapsed().as_micros() as u64),
                                );
                            }
                        }
                    }
                }
                Err(ref e) if e.kind() == ErrorKind::WouldBlock => {
                    let write_timeout = self.shared.config.write_timeout_ms;
                    self.set_writable(key, true);
                    self.arm_deadline(key, write_timeout);
                    return Flush::Pending;
                }
                Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(key);
                    return Flush::Closed;
                }
            }
        }
        let close_now = {
            let Some(c) = self.conns.get_mut(key) else {
                return Flush::Closed;
            };
            c.write_buf.clear();
            c.written = 0;
            c.resp_ends.clear();
            c.close_after_flush
        };
        if close_now {
            self.close(key);
            return Flush::Closed;
        }
        self.set_writable(key, false);
        Flush::Flushed
    }

    /// Read until `WouldBlock`, EOF, error, or a buffer cap.
    ///
    /// `parser_progressed` is whether the preceding parse pass consumed
    /// bytes. If it did, the soft cap applies: pause at [`READ_SOFT_CAP`]
    /// and let the pump process the buffered pipeline. If it did not, the
    /// buffer holds one incomplete request — stopping at the soft cap
    /// would livelock the pump (nothing to parse, nothing to flush,
    /// nothing read), so reading continues to a hard cap instead. The
    /// hard cap is unreachable by a request the wire limits accept: at
    /// `max_head_bytes + max_body_bytes` buffered, `parse_request` must
    /// either produce a request or a typed error, both of which make
    /// progress.
    fn fill(&mut self, key: usize, parser_progressed: bool) -> Fill {
        let limits = &self.shared.config.limits;
        let cap = if parser_progressed {
            READ_SOFT_CAP
        } else {
            READ_SOFT_CAP + limits.max_head_bytes + limits.max_body_bytes
        };
        let mut chunk = [0u8; READ_CHUNK];
        let mut progress = false;
        loop {
            let res = match self.conns.get_mut(key) {
                Some(c) => {
                    if c.read_buf.len() >= cap {
                        // Process what we have before buffering more.
                        return Fill::Progress;
                    }
                    c.stream.read(&mut chunk)
                }
                None => return Fill::Closed,
            };
            match res {
                Ok(0) => {
                    if let Some(c) = self.conns.get_mut(key) {
                        c.eof = true;
                    }
                    return Fill::Progress;
                }
                Ok(n) => {
                    if let Some(c) = self.conns.get_mut(key) {
                        c.read_buf.extend_from_slice(&chunk[..n]);
                    }
                    progress = true;
                }
                Err(ref e) if e.kind() == ErrorKind::WouldBlock => {
                    return if progress { Fill::Progress } else { Fill::Idle };
                }
                Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(key);
                    return Fill::Closed;
                }
            }
        }
    }

    /// Resume read interest and arm the idle/read deadline.
    fn await_readable(&mut self, key: usize) {
        self.set_writable(key, false);
        let read_timeout = self.shared.config.read_timeout_ms;
        self.arm_deadline(key, read_timeout);
    }

    /// Switch between READABLE (normal) and WRITABLE-only (flush stalled:
    /// reads pause so the peer's refusal to read backpressures through its
    /// TCP window instead of growing our buffers).
    fn set_writable(&mut self, key: usize, on: bool) {
        let Some(c) = self.conns.get_mut(key) else {
            return;
        };
        if c.wants_writable == on {
            return;
        }
        c.wants_writable = on;
        let interest = if on {
            Interest::WRITABLE
        } else {
            Interest::READABLE
        };
        let _ = self
            .poll
            .registry()
            .reregister(&mut c.stream, Token(key), interest);
    }

    /// Arm (really: re-arm — the old entry goes stale by generation) the
    /// connection's single deadline.
    fn arm_deadline(&mut self, key: usize, timeout_ms: u64) {
        self.gen_counter += 1;
        let gen = self.gen_counter;
        let now = self.shared.now_ms();
        let Some(c) = self.conns.get_mut(key) else {
            return;
        };
        c.gen = gen;
        self.wheel.insert(now + timeout_ms.max(1), key, gen);
    }

    fn close(&mut self, key: usize) {
        if let Some(mut conn) = self.conns.remove(key) {
            let _ = conn.stream.deregister(self.poll.registry());
            self.bufs.put(conn.read_buf);
            self.bufs.put(conn.write_buf);
            self.open.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Loop 0: accept until `WouldBlock`, admitting or shedding, and deal
    /// connections round-robin across the loops.
    fn accept_all(&mut self) {
        loop {
            let res = match &self.listener {
                Some(l) => l.accept(),
                None => return,
            };
            match res {
                Ok((stream, peer)) => {
                    if self.draining {
                        continue; // dropping the socket refuses the peer
                    }
                    // Mirror the blocking core's counting: the capacity
                    // check stands in for its bounded accept queue, so shed
                    // connections are never counted as `serve.connections`
                    // (only connections a worker would have picked up are —
                    // including IPv6 ones it then rejects).
                    if self.open.load(Ordering::SeqCst) >= self.capacity {
                        self.shared.metrics.rejected_busy.inc();
                        best_effort_write(stream, &shed_response());
                        continue;
                    }
                    self.shared.metrics.connections.inc();
                    let src = match peer.ip() {
                        IpAddr::V4(v4) => v4,
                        IpAddr::V6(_) => {
                            self.shared.metrics.bad_requests.inc();
                            best_effort_write(stream, &ipv6_reject_response());
                            continue;
                        }
                    };
                    self.open.fetch_add(1, Ordering::SeqCst);
                    let accepted = Instant::now();
                    let target = self.next_peer % self.peers.len();
                    self.next_peer = self.next_peer.wrapping_add(1);
                    if target == self.index {
                        self.adopt(stream, src, accepted);
                    } else {
                        self.peers[target]
                            .inbox
                            .lock()
                            .push((stream, src, accepted));
                        let _ = self.peers[target].waker.wake();
                    }
                }
                Err(ref e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(ref e) if e.kind() == ErrorKind::Interrupted => {}
                // Transient per-connection failure (e.g. ECONNABORTED):
                // keep accepting.
                Err(_) => {}
            }
        }
    }

    /// Take ownership of an admitted connection: register, arm the read
    /// deadline, and pump once (the socket may already hold a request).
    fn adopt(&mut self, stream: TcpStream, src: Ipv4Addr, accepted: Instant) {
        let _ = stream.set_nodelay(true);
        let conn = Conn {
            stream,
            src,
            read_buf: self.bufs.get(),
            write_buf: self.bufs.get(),
            written: 0,
            resp_ends: Vec::new(),
            ready: accepted,
            gen: 0,
            close_after_flush: false,
            wants_writable: false,
            eof: false,
        };
        let key = self.conns.insert(conn);
        let registered = {
            let c = self.conns.get_mut(key).expect("just inserted");
            self.poll
                .registry()
                .register(&mut c.stream, Token(key), Interest::READABLE)
                .is_ok()
        };
        if !registered {
            if let Some(c) = self.conns.remove(key) {
                self.bufs.put(c.read_buf);
                self.bufs.put(c.write_buf);
            }
            self.open.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.arm_deadline(key, self.shared.config.read_timeout_ms);
        self.pump(key);
    }

    /// Adopt every connection other threads handed this loop.
    fn drain_inbox(&mut self) {
        loop {
            let batch: Vec<Handoff> = std::mem::take(&mut *self.inbox.lock());
            if batch.is_empty() {
                return;
            }
            for (stream, src, accepted) in batch {
                if self.draining {
                    // Admitted before shutdown hit; refuse by close.
                    self.open.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                self.adopt(stream, src, accepted);
            }
        }
    }

    /// Shutdown observed: stop accepting, close idle connections *now*,
    /// let pending flushes finish under their write deadlines.
    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(mut l) = self.listener.take() {
            let _ = l.deregister(self.poll.registry());
        }
        for key in self.conns.keys() {
            let idle = match self.conns.get_mut(key) {
                Some(c) => c.written >= c.write_buf.len(),
                None => continue,
            };
            if idle {
                // Idle keep-alive (or mid-request — its half-request gets
                // no reply, same as a network partition).
                self.close(key);
            } else if let Some(c) = self.conns.get_mut(key) {
                c.close_after_flush = true;
            }
        }
    }
}

/// One nonblocking write of an encoded response, then close by drop.
/// Whatever the kernel buffer refuses is lost — the peer sees a reset,
/// which is still a refusal. Never blocks the accept path.
fn best_effort_write(mut stream: TcpStream, resp: &Response) {
    let _ = stream.write(&encode_or_bare(resp));
}
