//! Closed-loop load generator for the socket server.
//!
//! `concurrency` client threads each issue their share of `requests`
//! back-to-back (a new request only after the previous response), the
//! classic closed-loop model — throughput is offered load, latency is
//! first-byte-to-full-response. Reports throughput and p50/p99 latency;
//! [`run_matrix`] sweeps worker counts × keep-alive against in-process
//! servers on ephemeral ports and emits the `BENCH_serve.json` payload.

use crate::router::{ClusterConfig, ShardedCluster};
use crate::server::{ServeConfig, ServedWorld, SocketServer};
use geoserp_engine::{EngineConfig, GEOLOCATION_HEADER, SEARCH_HOST};
use geoserp_net::{encode_request, parse_response, Request, Status, WireLimits};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Tunables for [`run`]. Build with [`LoadgenConfig::new`] and adjust with
/// the fluent setters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct LoadgenConfig {
    /// Total requests across all client threads.
    pub requests: usize,
    /// Concurrent closed-loop client threads.
    pub concurrency: usize,
    /// Reuse one connection per thread (vs connect-per-request).
    pub keep_alive: bool,
    /// The search term each request carries.
    pub query: String,
    /// The spoofed GPS fix (`lat,lon`), sent in the geolocation header.
    pub gps: String,
    /// Socket read/write timeout per request, milliseconds.
    pub timeout_ms: u64,
    /// Client think time between requests, milliseconds, spent *holding*
    /// the keep-alive connection (models real browsers: connections far
    /// outnumber in-flight requests). 0 = closed-loop firehose.
    pub think_ms: u64,
}

impl LoadgenConfig {
    /// Defaults: 200 requests, 4 threads, keep-alive on, a Cleveland-pinned
    /// `Coffee` query, 5 s timeout.
    pub fn new() -> Self {
        LoadgenConfig {
            requests: 200,
            concurrency: 4,
            keep_alive: true,
            query: "Coffee".to_string(),
            gps: "41.499300,-81.694400".to_string(),
            timeout_ms: 5_000,
            think_ms: 0,
        }
    }

    /// Set the total request count (clamped to ≥ 1 at run).
    pub fn requests(mut self, n: usize) -> Self {
        self.requests = n;
        self
    }

    /// Set the client-thread count (clamped to ≥ 1 at run).
    pub fn concurrency(mut self, n: usize) -> Self {
        self.concurrency = n;
        self
    }

    /// Reuse connections (true) or reconnect per request (false).
    pub fn keep_alive(mut self, on: bool) -> Self {
        self.keep_alive = on;
        self
    }

    /// Set the search term.
    pub fn query(mut self, q: impl Into<String>) -> Self {
        self.query = q.into();
        self
    }

    /// Set the spoofed GPS fix (`lat,lon`).
    pub fn gps(mut self, gps: impl Into<String>) -> Self {
        self.gps = gps.into();
        self
    }

    /// Set the per-request socket timeout.
    pub fn timeout_ms(mut self, ms: u64) -> Self {
        self.timeout_ms = ms;
        self
    }

    /// Set the between-request think time (connection stays open).
    pub fn think_ms(mut self, ms: u64) -> Self {
        self.think_ms = ms;
        self
    }
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig::new()
    }
}

/// One load-generation run's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Requests attempted.
    pub requests: usize,
    /// `200 OK` responses.
    pub ok: usize,
    /// Non-200 responses plus transport failures.
    pub errors: usize,
    /// Wall-clock duration of the whole run, seconds.
    pub elapsed_s: f64,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
}

/// One cell of the backend × worker-count × load-shape sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixEntry {
    /// Serving core for this cell (`"blocking"` or `"epoll"`).
    pub backend: String,
    /// Server worker threads for this cell.
    pub workers: usize,
    /// Whether connections were reused.
    pub keep_alive: bool,
    /// Client threads for this cell (the firehose cells use the sweep's
    /// `concurrency`; the slow-client cells use `8 × workers`).
    pub concurrency: usize,
    /// Client think time between requests (connection held open).
    pub think_ms: u64,
    /// Index shards behind a router, 0 when the engine is served directly
    /// (no router in the path).
    pub shards: usize,
    /// Replicas per shard, 0 when served directly.
    pub replicas: usize,
    /// The measured run.
    pub report: LoadgenReport,
}

/// The full sweep: the committed shape of `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixReport {
    /// World seed the served engine was generated from.
    pub seed: u64,
    /// Requests per cell.
    pub requests: usize,
    /// Client threads per cell.
    pub concurrency: usize,
    /// All measured cells.
    pub entries: Vec<MatrixEntry>,
}

impl MatrixReport {
    /// Serialize as pretty JSON (the `BENCH_serve.json` payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// A human-readable table of the sweep.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "serve loadgen: {} requests x {} client threads per firehose cell (seed {})\n\
             backend   workers  keep-alive  clients  think_ms  shardsxreps  throughput_rps  p50_us  p99_us  errors\n",
            self.requests, self.concurrency, self.seed
        );
        for e in &self.entries {
            let topology = if e.shards == 0 {
                "direct".to_string()
            } else {
                format!("{}x{}", e.shards, e.replicas)
            };
            out.push_str(&format!(
                "{:<8}  {:>7}  {:<10}  {:>7}  {:>8}  {:>11}  {:>14.0}  {:>6}  {:>6}  {:>6}\n",
                e.backend,
                e.workers,
                e.keep_alive,
                e.concurrency,
                e.think_ms,
                topology,
                e.report.throughput_rps,
                e.report.p50_us,
                e.report.p99_us,
                e.report.errors
            ));
        }
        out
    }
}

/// The request every loadgen client issues.
fn search_request(cfg: &LoadgenConfig) -> Request {
    Request::get(SEARCH_HOST, "/search")
        .with_query("q", cfg.query.clone())
        .with_header(GEOLOCATION_HEADER, cfg.gps.clone())
        .with_header("User-Agent", "geoserp-loadgen/0.1")
}

/// Issue one request on an open connection; returns the response status.
fn roundtrip(stream: &mut TcpStream, wire: &[u8]) -> std::io::Result<Status> {
    stream.write_all(wire)?;
    stream.flush()?;
    let limits = WireLimits::new().max_body_bytes(8 * 1024 * 1024);
    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    loop {
        match parse_response(&buf, &limits) {
            Ok(Some((resp, _))) => return Ok(resp.status),
            Ok(None) => {}
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    e.to_string(),
                ))
            }
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// One closed-loop client thread's work: `n` requests, latencies in µs.
fn client_loop(
    addr: SocketAddr,
    wire: &[u8],
    n: usize,
    keep_alive: bool,
    timeout: Duration,
    think: Duration,
) -> (Vec<u64>, usize, usize) {
    let connect = || -> std::io::Result<TcpStream> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true).ok();
        s.set_read_timeout(Some(timeout))?;
        s.set_write_timeout(Some(timeout))?;
        Ok(s)
    };
    let mut latencies = Vec::with_capacity(n);
    let (mut ok, mut errors) = (0usize, 0usize);
    let mut conn: Option<TcpStream> = None;
    for i in 0..n {
        if i > 0 && !think.is_zero() {
            // Think while holding the connection open: the idle-keep-alive
            // load shape that separates the serving cores.
            std::thread::sleep(think);
        }
        let started = Instant::now();
        let outcome = (|| -> std::io::Result<Status> {
            if conn.is_none() {
                conn = Some(connect()?);
            }
            let stream = conn.as_mut().expect("just connected");
            roundtrip(stream, wire)
        })();
        match outcome {
            Ok(status) => {
                latencies.push(started.elapsed().as_micros() as u64);
                if status == Status::Ok {
                    ok += 1;
                } else {
                    errors += 1;
                }
                if !keep_alive {
                    conn = None;
                }
            }
            Err(_) => {
                errors += 1;
                conn = None; // reconnect on the next iteration
            }
        }
    }
    (latencies, ok, errors)
}

/// Percentile by the nearest-rank definition: the smallest value in the
/// sorted sample such that at least `p`% of the sample is ≤ it, i.e. the
/// element at rank `⌈(p/100)·N⌉` (1-based). 0 when empty.
///
/// The previous implementation rounded `(p/100)·(N−1)` to an index, which
/// is neither nearest-rank nor linear interpolation: at N=4 it reported
/// the *third* value as p50 (nearest-rank: the second) and could sit a
/// full element too high on exactly the small samples CI benches run.
fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Run one closed-loop load generation against `addr`.
///
/// # Errors
/// Propagates address-resolution failures; per-request transport errors are
/// counted in the report instead.
pub fn run(addr: &str, cfg: &LoadgenConfig) -> std::io::Result<LoadgenReport> {
    let addr: SocketAddr = addr.parse().map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, format!("{addr}: {e}"))
    })?;
    let wire = encode_request(&search_request(cfg))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))?;
    let requests = cfg.requests.max(1);
    let concurrency = cfg.concurrency.max(1).min(requests);
    let timeout = Duration::from_millis(cfg.timeout_ms.max(1));
    let think = Duration::from_millis(cfg.think_ms);

    let started = Instant::now();
    let mut results = Vec::with_capacity(concurrency);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(concurrency);
        for i in 0..concurrency {
            // Spread the remainder so the shares sum to `requests`.
            let share = requests / concurrency + usize::from(i < requests % concurrency);
            let wire = &wire;
            handles.push(
                scope.spawn(move || client_loop(addr, wire, share, cfg.keep_alive, timeout, think)),
            );
        }
        for h in handles {
            results.push(h.join().expect("loadgen client thread panicked"));
        }
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::with_capacity(requests);
    let (mut ok, mut errors) = (0usize, 0usize);
    for (l, o, e) in results {
        latencies.extend(l);
        ok += o;
        errors += e;
    }
    latencies.sort_unstable();
    Ok(LoadgenReport {
        requests,
        ok,
        errors,
        elapsed_s,
        throughput_rps: (ok + errors) as f64 / elapsed_s.max(f64::EPSILON),
        p50_us: percentile_us(&latencies, 50.0),
        p99_us: percentile_us(&latencies, 99.0),
    })
}

/// Sweep backend × worker counts × keep-alive against in-process servers on
/// ephemeral loopback ports, one world shared across cells. The engine's
/// own per-IP rate limit is raised far above the offered load (every
/// loadgen client shares the loopback source IP; the paper's 30/min limit
/// would otherwise throttle the benchmark, not the server), and the
/// engine's result cache is enabled — applied identically to every cell —
/// so the sweep measures *serving mechanics* (accept, parse, dispatch,
/// write) rather than the ~300 µs single-core SERP pipeline that would
/// otherwise dominate every cell equally.
///
/// # Errors
/// Returns a description of the first world-build, bind, or run failure.
pub fn run_matrix(
    seed: u64,
    worker_counts: &[usize],
    requests: usize,
    concurrency: usize,
) -> Result<MatrixReport, String> {
    // The engine per-IP limit bump lives on ServeConfig so every serving
    // entry point shares it; the result cache is the bench-only addition.
    let config = ServeConfig::new().engine_config(EngineConfig::with_result_cache(3_600_000));
    let world = ServedWorld::build(seed, config.clone()).map_err(|e| e.to_string())?;
    let mut entries = Vec::new();
    for backend in crate::ServeBackend::ALL {
        for &workers in worker_counts {
            // Firehose cells: zero think time, keep-alive on/off. On one
            // core both backends saturate the CPU, so these mostly pin
            // per-request overhead and connection-setup cost.
            for keep_alive in [true, false] {
                let cfg = LoadgenConfig::new()
                    .requests(requests)
                    .concurrency(concurrency)
                    .keep_alive(keep_alive);
                entries.push(run_cell(&world, backend, workers, &cfg)?);
            }
            // Slow-client cell: connections outnumber workers 8:1 and sit
            // idle between requests while staying open — the C10K shape.
            // The blocking core pins one worker per open connection, so it
            // serves the clients in 8 sequential waves; the event loop
            // multiplexes them all at once.
            let clients = workers * 8;
            let cfg = LoadgenConfig::new()
                .requests(clients * 5)
                .concurrency(clients)
                .keep_alive(true)
                .think_ms(SLOW_CLIENT_THINK_MS);
            entries.push(run_cell(&world, backend, workers, &cfg)?);
        }
    }
    // Router cells: the same offered load through the sharded tier. The
    // 1x1 cell against the direct epoll cell above is the router's
    // scatter-gather overhead (two TCP hops per request) in isolation;
    // wider topologies show fan-out cost and replica headroom.
    for (shards, replicas) in [(1u32, 1u32), (2, 1), (2, 2)] {
        let cfg = LoadgenConfig::new()
            .requests(requests)
            .concurrency(concurrency)
            .keep_alive(true);
        entries.push(run_router_cell(
            seed,
            config.clone(),
            shards,
            replicas,
            &cfg,
        )?);
    }
    Ok(MatrixReport {
        seed,
        requests,
        concurrency,
        entries,
    })
}

/// Think time for the slow-client cells: long enough to dwarf the ~30 µs
/// cached service time, short enough to keep the sweep fast.
const SLOW_CLIENT_THINK_MS: u64 = 20;

fn run_cell(
    world: &ServedWorld,
    backend: crate::ServeBackend,
    workers: usize,
    cfg: &LoadgenConfig,
) -> Result<MatrixEntry, String> {
    let server = SocketServer::start(
        "127.0.0.1:0",
        world,
        ServeConfig::new()
            .backend(backend)
            .workers(workers)
            .keep_alive(cfg.keep_alive)
            .rate_limit(usize::MAX / 2, 60_000),
    )
    .map_err(|e| format!("bind failed: {e}"))?;
    let report =
        run(&server.local_addr().to_string(), cfg).map_err(|e| format!("loadgen failed: {e}"))?;
    server.shutdown();
    Ok(MatrixEntry {
        backend: backend.to_string(),
        workers,
        keep_alive: cfg.keep_alive,
        concurrency: cfg.concurrency,
        think_ms: cfg.think_ms,
        shards: 0,
        replicas: 0,
        report,
    })
}

/// One cell measured through the sharded tier: a fresh `shards × replicas`
/// cluster on loopback, loadgen pointed at its router.
fn run_router_cell(
    seed: u64,
    engine: EngineConfig,
    shards: u32,
    replicas: u32,
    cfg: &LoadgenConfig,
) -> Result<MatrixEntry, String> {
    let serve = ServeConfig::new().keep_alive(cfg.keep_alive);
    let workers = serve.workers;
    let cluster = ShardedCluster::start(
        "127.0.0.1:0",
        seed,
        engine,
        ClusterConfig::new(shards, replicas).serve(serve),
    )
    .map_err(|e| format!("cluster start failed: {e}"))?;
    let report =
        run(&cluster.router_addr().to_string(), cfg).map_err(|e| format!("loadgen failed: {e}"))?;
    cluster.shutdown();
    Ok(MatrixEntry {
        backend: "router".to_string(),
        workers,
        keep_alive: cfg.keep_alive,
        concurrency: cfg.concurrency,
        think_ms: cfg.think_ms,
        shards: shards as usize,
        replicas: replicas as usize,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::percentile_us;

    #[test]
    fn percentile_of_empty_is_zero() {
        assert_eq!(percentile_us(&[], 50.0), 0);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile_us(&[42], 50.0), 42);
        assert_eq!(percentile_us(&[42], 99.0), 42);
    }

    #[test]
    fn percentile_two_samples() {
        // p50 rank = ceil(0.5·2) = 1 → the smaller value. The old
        // round((p/100)·(N−1)) formula returned the *larger* one.
        assert_eq!(percentile_us(&[10, 20], 50.0), 10);
        assert_eq!(percentile_us(&[10, 20], 99.0), 20);
    }

    #[test]
    fn percentile_four_samples() {
        let s = [10, 20, 30, 40];
        // p50 rank = ceil(2) = 2 → 20 (old formula said 30: a whole
        // element high).
        assert_eq!(percentile_us(&s, 50.0), 20);
        assert_eq!(percentile_us(&s, 99.0), 40);
    }

    #[test]
    fn percentile_five_samples() {
        let s = [1, 2, 3, 4, 5];
        assert_eq!(percentile_us(&s, 50.0), 3, "odd N: the true median");
        assert_eq!(percentile_us(&s, 99.0), 5);
    }

    #[test]
    fn percentile_hundred_samples() {
        let s: Vec<u64> = (1..=100).collect();
        // With N=100 the nearest rank is exactly p.
        assert_eq!(percentile_us(&s, 50.0), 50);
        assert_eq!(percentile_us(&s, 99.0), 99);
        assert_eq!(percentile_us(&s, 100.0), 100);
        assert_eq!(percentile_us(&s, 0.0), 1, "rank clamps to the minimum");
    }
}
