//! The shard side of the sharded search tier.
//!
//! A [`ShardService`] owns one contiguous slice of the corpus as a
//! range-restricted [`SearchIndex`] (either backend) and answers the two
//! integer-only
//! internal endpoints the router scatters to
//! ([`SHARD_RETRIEVE_PATH`], [`SHARD_SUGGEST_PATH`]). It is a plain
//! [`geoserp_net::Server`], so it sits behind the very same socket
//! backends (blocking or epoll) as the public search service — replicas
//! of a shard are just additional [`SocketServer`](crate::SocketServer)s
//! sharing one `Arc<ShardService>`.
//!
//! Shards deliberately hold **no ranking state**: no noise model, no
//! history, no SERP composer. All of that lives router-side, which is why
//! routed pages can be byte-identical to single-process pages — the only
//! thing that must merge exactly is retrieval, and
//! [`geoserp_engine::shard`] proves that it does.

use bytes::Bytes;
use geoserp_corpus::WebCorpus;
use geoserp_engine::index::SearchIndex;
use geoserp_engine::IndexBackend;
use geoserp_net::shardmsg::{
    ShardRetrieveRequest, ShardRetrieveResponse, ShardSuggestRequest, ShardSuggestResponse,
    SpellCandidate, SHARD_RETRIEVE_PATH, SHARD_SUGGEST_PATH,
};
use geoserp_net::{Method, Request, RequestCtx, Response, Server, Status};
use geoserp_obs::trace::{record_stage, Stage};
use serde::Serialize;
use std::time::Instant;

/// Host name shard-internal requests are addressed to (never resolved —
/// shard sockets are dialed by address).
pub const SHARD_HOST: &str = "shard.internal";

/// One shard: a range-restricted inverted index behind the internal wire
/// endpoints.
pub struct ShardService {
    index: SearchIndex,
}

impl ShardService {
    /// Index the pages of `corpus` whose ids fall in `range` with the
    /// chosen index backend.
    pub fn build(
        corpus: &WebCorpus,
        range: std::ops::Range<u32>,
        backend: IndexBackend,
    ) -> ShardService {
        ShardService {
            index: SearchIndex::build_range(corpus, range, backend),
        }
    }

    fn retrieve(&self, r: &ShardRetrieveRequest) -> ShardRetrieveResponse {
        let (fulls, partials) = self.index.shard_retrieve(&r.query, r.max_partials as usize);
        ShardRetrieveResponse {
            fulls: fulls.into_iter().map(|p| p.0).collect(),
            partials: partials.into_iter().map(|(p, n)| (p.0, n as u32)).collect(),
        }
    }

    fn suggest(&self, r: &ShardSuggestRequest) -> ShardSuggestResponse {
        let (token_dfs, corrections) = self.index.spell_data(&r.query);
        ShardSuggestResponse {
            token_dfs,
            corrections: corrections
                .into_iter()
                .map(|cands| {
                    cands
                        .into_iter()
                        .map(|(token, distance, df)| SpellCandidate {
                            token,
                            distance: distance as u32,
                            df,
                        })
                        .collect()
                })
                .collect(),
        }
    }
}

impl Server for ShardService {
    fn handle(&self, _ctx: &RequestCtx, req: &Request) -> Response {
        // The serve layer enters the request's trace context before
        // dispatching here, so the shard's index work lands in its span
        // log as the `retrieve` stage of the shard-local request.
        match (req.method, req.path.as_str()) {
            (Method::Post, SHARD_RETRIEVE_PATH) => {
                match parse_body::<ShardRetrieveRequest>(&req.body) {
                    Ok(r) => {
                        let started = Instant::now();
                        let resp = self.retrieve(&r);
                        record_stage(Stage::Retrieve, Some(started.elapsed().as_micros() as u64));
                        json_ok(&resp)
                    }
                    Err(e) => bad_body(&e),
                }
            }
            (Method::Post, SHARD_SUGGEST_PATH) => {
                match parse_body::<ShardSuggestRequest>(&req.body) {
                    Ok(r) => {
                        let started = Instant::now();
                        let resp = self.suggest(&r);
                        record_stage(Stage::Retrieve, Some(started.elapsed().as_micros() as u64));
                        json_ok(&resp)
                    }
                    Err(e) => bad_body(&e),
                }
            }
            _ => Response::status(Status::NotFound).with_header("X-Reason", "not a shard endpoint"),
        }
    }
}

/// Build the POST a router sends for one shard's retrieval slice.
pub fn retrieve_request(r: &ShardRetrieveRequest) -> Request {
    post_json(SHARD_RETRIEVE_PATH, r)
}

/// Build the POST a router sends for one shard's spell data.
pub fn suggest_request(r: &ShardSuggestRequest) -> Request {
    post_json(SHARD_SUGGEST_PATH, r)
}

/// Decode a JSON request body (shard messages are always UTF-8 JSON).
pub(crate) fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|e| e.to_string())?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

fn post_json<T: Serialize>(path: &str, body: &T) -> Request {
    Request {
        method: Method::Post,
        host: SHARD_HOST.to_string(),
        path: path.to_string(),
        query: Vec::new(),
        headers: Vec::new(),
        body: Bytes::from(
            serde_json::to_string(body)
                .expect("shard messages serialize")
                .into_bytes(),
        ),
    }
}

pub(crate) fn json_ok<T: Serialize>(v: &T) -> Response {
    Response::ok(Bytes::from(
        serde_json::to_string(v)
            .expect("shard messages serialize")
            .into_bytes(),
    ))
    .with_header("Content-Type", "application/json")
}

fn bad_body(e: &str) -> Response {
    Response::status(Status::BadRequest).with_header("X-Shard-Error", e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoserp_geo::{Seed, UsGeography};
    use geoserp_net::clock::SimInstant;
    use geoserp_net::ip;

    fn ctx() -> RequestCtx {
        RequestCtx {
            src: ip("10.9.0.1"),
            dst: ip("10.50.0.1"),
            at: SimInstant(0),
            seq: 0,
        }
    }

    fn corpus() -> WebCorpus {
        let geo = UsGeography::generate(Seed::new(2015));
        WebCorpus::generate(&geo, Seed::new(2015))
    }

    #[test]
    fn retrieve_endpoint_matches_direct_index_call() {
        let c = corpus();
        let half = c.pages.len() as u32 / 2;
        let svc = ShardService::build(&c, 0..half, IndexBackend::default());
        let req = ShardRetrieveRequest {
            query: "Coffee".into(),
            max_partials: 144,
        };
        let resp = svc.handle(&ctx(), &retrieve_request(&req));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.header("Content-Type"), Some("application/json"));
        let parsed: ShardRetrieveResponse = parse_body(&resp.body).unwrap();
        assert_eq!(parsed, svc.retrieve(&req));
        assert!(parsed.fulls.iter().all(|&id| id < half), "range respected");
    }

    #[test]
    fn suggest_endpoint_matches_direct_index_call() {
        let c = corpus();
        let svc = ShardService::build(&c, 0..c.pages.len() as u32, IndexBackend::default());
        let req = ShardSuggestRequest {
            query: "starbuks".into(),
        };
        let resp = svc.handle(&ctx(), &suggest_request(&req));
        assert_eq!(resp.status, Status::Ok);
        let parsed: ShardSuggestResponse = parse_body(&resp.body).unwrap();
        assert_eq!(parsed, svc.suggest(&req));
        assert_eq!(parsed.token_dfs, vec![0], "misspelling has zero df");
    }

    #[test]
    fn malformed_body_is_a_typed_400() {
        let c = corpus();
        let svc = ShardService::build(&c, 0..10, IndexBackend::default());
        let mut req = retrieve_request(&ShardRetrieveRequest {
            query: "x".into(),
            max_partials: 1,
        });
        req.body = Bytes::from_static(b"{not json");
        let resp = svc.handle(&ctx(), &req);
        assert_eq!(resp.status, Status::BadRequest);
        assert!(resp.header("X-Shard-Error").is_some());
    }

    #[test]
    fn unknown_paths_and_gets_are_404() {
        let c = corpus();
        let svc = ShardService::build(&c, 0..10, IndexBackend::default());
        let get = Request::get(SHARD_HOST, SHARD_RETRIEVE_PATH);
        assert_eq!(svc.handle(&ctx(), &get).status, Status::NotFound);
        let wrong = retrieve_request(&ShardRetrieveRequest {
            query: "x".into(),
            max_partials: 1,
        });
        let mut wrong_path = wrong.clone();
        wrong_path.path = "/search".into();
        assert_eq!(svc.handle(&ctx(), &wrong_path).status, Status::NotFound);
    }
}
