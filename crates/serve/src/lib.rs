#![warn(missing_docs)]
//! # geoserp-serve — the socket transport
//!
//! Everything else in geoserp runs against the in-process simulated network
//! ([`geoserp_net::SimNet`]). This crate puts the *same* [`SearchService`]
//! behind real TCP sockets: an accept loop feeding a bounded worker pool,
//! keep-alive, read/write timeouts, request-size limits, a serve-layer
//! per-IP rate limiter, `503` load-shedding when the accept queue fills,
//! and graceful shutdown that drains in-flight connections. `/healthz`
//! answers liveness probes and `/metrics` exposes the shared
//! [`geoserp_obs::ObsHub`] in Prometheus text format.
//!
//! Both transports speak the `geoserp-net` wire codec, and the socket layer
//! reconstructs the simulator's request context (sequence numbers, virtual
//! day, datacenter pinning) — so the page served over TCP for a given
//! `(query, geolocation header, day)` is **byte-identical** to the page the
//! simulated path produces. The end-to-end loopback test asserts exactly
//! that.
//!
//! [`SearchService`]: geoserp_engine::SearchService
//!
//! ```no_run
//! use geoserp_serve::{ServeConfig, ServedWorld, SocketServer};
//!
//! let world = ServedWorld::build(2015, geoserp_engine::EngineConfig::paper_defaults()).unwrap();
//! let server = SocketServer::start("127.0.0.1:0", &world, ServeConfig::new()).unwrap();
//! println!("serving on {}", server.local_addr());
//! server.shutdown();
//! ```

pub mod loadgen;
pub mod server;

pub use loadgen::{LoadgenConfig, LoadgenReport, MatrixEntry, MatrixReport};
pub use server::{ServeConfig, ServedWorld, SocketServer, DAY_MS};
