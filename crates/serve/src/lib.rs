#![warn(missing_docs)]
//! # geoserp-serve — the socket transport
//!
//! Everything else in geoserp runs against the in-process simulated network
//! ([`geoserp_net::SimNet`]). This crate puts the *same* [`SearchService`]
//! behind real TCP sockets, with two selectable serving cores
//! ([`ServeBackend`]): the default readiness-based **epoll event loop**
//! (nonblocking state machines, pooled buffers, a hashed timer wheel for
//! idle/write deadlines) and the reference **blocking worker pool** (accept
//! loop feeding a bounded queue). Both provide keep-alive, read/write
//! timeouts, request-size limits, a serve-layer per-IP rate limiter, `503`
//! load-shedding at the admission bound, and graceful shutdown that drains
//! in-flight connections. `/healthz` answers liveness probes and `/metrics`
//! exposes the shared [`geoserp_obs::ObsHub`] in Prometheus text format.
//!
//! Both transports speak the `geoserp-net` wire codec, and the socket layer
//! reconstructs the simulator's request context (sequence numbers, virtual
//! day, datacenter pinning) — so the page served over TCP for a given
//! `(query, geolocation header, day)` is **byte-identical** to the page the
//! simulated path produces. The end-to-end loopback test asserts exactly
//! that.
//!
//! # Sharded serving
//!
//! The same socket cores also power a multi-process topology
//! ([`ShardedCluster`]): the corpus splits into contiguous index shards
//! ([`topology::ShardPlan`]), each served by M replica processes
//! ([`shard::ShardService`]), with a router front-end whose engine
//! retrieves through a scatter-gather [`router::RemoteRetriever`]
//! (consistent-hash replica placement, hedged requests on slow replicas,
//! ring-order retries on dead ones). Routed pages stay byte-identical to
//! the single-process server's — the differential battery in
//! `tests/sharded_equivalence.rs` proves it cell by cell.
//!
//! [`SearchService`]: geoserp_engine::SearchService
//!
//! ```no_run
//! use geoserp_serve::{ServeConfig, ServedWorld, SocketServer};
//!
//! let world = ServedWorld::build(2015, geoserp_engine::EngineConfig::paper_defaults()).unwrap();
//! let server = SocketServer::start("127.0.0.1:0", &world, ServeConfig::new()).unwrap();
//! println!("serving on {}", server.local_addr());
//! server.shutdown();
//! ```

pub mod bufpool;
mod epoll;
pub mod loadgen;
pub mod router;
pub mod server;
pub mod shard;
pub mod timer;
pub mod topology;

pub use loadgen::{LoadgenConfig, LoadgenReport, MatrixEntry, MatrixReport};
pub use router::{ClusterConfig, DelayServer, RemoteRetriever, ShardedCluster};
pub use server::{ServeBackend, ServeConfig, ServedWorld, SocketServer, DAY_MS};
pub use shard::ShardService;
pub use topology::{HashRing, ShardPlan};
