//! Chrome trace-event export for [`SpanRecord`]s.
//!
//! Emits the JSON object format (`{"traceEvents": [...]}`) with complete
//! (`"ph": "X"`) events, loadable in Perfetto and `chrome://tracing`.
//! Timestamps are virtual-clock microseconds (`start_ms * 1000`).
//!
//! Raw span IDs depend on allocation order, which differs between crawl
//! backends, so the exporter first sorts spans by deterministic content —
//! `(start_ms, nesting depth, tid, name, args)` — then renumbers IDs in
//! sorted order and rewrites parent references through the same mapping.
//! The result is byte-identical for virtually-identical runs regardless of
//! backend or host speed. Wall-clock fields are never emitted.

use std::collections::HashMap;

use serde_json::{json, Value};

use crate::span::SpanRecord;

/// Nesting depth of `span` via its parent chain (0 = root; missing or
/// evicted parents terminate the chain).
fn depth_of(span: &SpanRecord, by_id: &HashMap<u64, &SpanRecord>) -> u32 {
    let mut depth = 0;
    let mut parent = span.parent;
    while parent != 0 && depth < 64 {
        match by_id.get(&parent) {
            Some(p) => {
                depth += 1;
                parent = p.parent;
            }
            None => break,
        }
    }
    depth
}

/// Render spans as a Chrome trace-event JSON document.
///
/// Each event carries its renumbered `id` and `parent` in `args` so span
/// nesting can be asserted structurally (not just by time containment).
pub fn to_chrome_trace(spans: &[SpanRecord]) -> String {
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by(|a, b| {
        let ka = (a.start_ms, depth_of(a, &by_id), a.tid, &a.name, &a.args);
        let kb = (b.start_ms, depth_of(b, &by_id), b.tid, &b.name, &b.args);
        ka.cmp(&kb)
    });
    // Renumber IDs in sorted order; parents evicted from the ring map to 0.
    let renumber: HashMap<u64, u64> = ordered
        .iter()
        .enumerate()
        .map(|(i, s)| (s.id, i as u64 + 1))
        .collect();
    let events: Vec<Value> = ordered
        .iter()
        .map(|s| {
            let mut args = serde_json::Map::new();
            args.insert("id".to_string(), json!(renumber[&s.id]));
            args.insert(
                "parent".to_string(),
                json!(renumber.get(&s.parent).copied().unwrap_or(0)),
            );
            for (k, v) in &s.args {
                args.insert((*k).to_string(), json!(v));
            }
            json!({
                "name": s.name.as_ref(),
                "cat": s.cat,
                "ph": "X",
                "ts": s.start_ms * 1000,
                "dur": s.dur_ms * 1000,
                "pid": 1u32,
                "tid": s.tid,
                "args": Value::Object(args),
            })
        })
        .collect();
    let doc = json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    });
    serde_json::to_string_pretty(&doc).expect("trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        id: u64,
        parent: u64,
        name: &str,
        cat: &'static str,
        tid: u32,
        start_ms: u64,
        dur_ms: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string().into(),
            cat,
            tid,
            start_ms,
            dur_ms,
            args: vec![],
            wall_us: Some(id * 7), // must never leak into output
        }
    }

    #[test]
    fn export_is_invariant_to_allocation_order() {
        // Same logical spans, IDs allocated in two different orders (as a
        // serial vs. pooled backend would).
        let a = vec![
            span(1, 0, "round 0", "crawler.round", 0, 0, 100),
            span(2, 1, "job 0", "crawler.job", 1, 0, 40),
            span(3, 1, "job 1", "crawler.job", 2, 0, 45),
        ];
        let b = vec![
            span(7, 9, "job 1", "crawler.job", 2, 0, 45),
            span(8, 9, "job 0", "crawler.job", 1, 0, 40),
            span(9, 0, "round 0", "crawler.round", 0, 0, 100),
        ];
        assert_eq!(to_chrome_trace(&a), to_chrome_trace(&b));
        assert!(!to_chrome_trace(&a).contains("wall"));
    }

    #[test]
    fn parent_links_survive_renumbering() {
        let spans = vec![
            span(10, 0, "round 0", "crawler.round", 0, 0, 100),
            span(11, 10, "job 0", "crawler.job", 1, 0, 40),
            span(12, 11, "attempt 0", "crawler.attempt", 1, 0, 40),
        ];
        let doc: Value = serde_json::from_str(&to_chrome_trace(&spans)).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 3);
        // Sorted by depth at equal start: round, job, attempt.
        assert_eq!(events[0]["args"]["id"].as_u64(), Some(1));
        assert_eq!(events[0]["args"]["parent"].as_u64(), Some(0));
        assert_eq!(events[1]["args"]["parent"].as_u64(), Some(1));
        assert_eq!(events[2]["args"]["parent"].as_u64(), Some(2));
        assert_eq!(events[0]["ph"].as_str(), Some("X"));
        assert_eq!(events[0]["dur"].as_u64(), Some(100_000));
    }

    #[test]
    fn evicted_parent_becomes_root() {
        let spans = vec![span(5, 999, "job 0", "crawler.job", 1, 10, 40)];
        let doc: Value = serde_json::from_str(&to_chrome_trace(&spans)).unwrap();
        assert_eq!(doc["traceEvents"][0]["args"]["parent"].as_u64(), Some(0));
    }
}
