//! Human-readable per-stage breakdown of a [`MetricsSnapshot`] — the body of
//! `geoserp report`.

use std::collections::BTreeMap;

use crate::registry::{HistogramSnapshot, MetricsSnapshot};

/// Pipeline stage of a metric: the dotted prefix (`net.rtt_ms` → `net`).
fn stage_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Metric name without its stage prefix.
fn short_name(name: &str) -> &str {
    match name.split_once('.') {
        Some((_, rest)) => rest,
        None => name,
    }
}

/// Render the per-stage breakdown table for a snapshot.
///
/// Counters and gauges are grouped under their stage prefix (`engine`,
/// `net`, `crawler`, `analysis`); histograms get a latency table with
/// count / p50 / p90 / p99 / max. Wall-clock metrics (names with the
/// `_wall_` marker) are rendered in their own clearly-labelled section.
pub fn render_run_report(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("geoserp run report\n");
    out.push_str("==================\n");

    let det = snap.deterministic();
    let mut stages: BTreeMap<&str, Vec<(&str, String)>> = BTreeMap::new();
    for (name, value) in &det.counters {
        stages
            .entry(stage_of(name))
            .or_default()
            .push((short_name(name), value.to_string()));
    }
    for (name, value) in &det.gauges {
        stages
            .entry(stage_of(name))
            .or_default()
            .push((short_name(name), value.to_string()));
    }

    for (stage, rows) in &stages {
        out.push_str(&format!("\n[{stage}]\n"));
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in rows {
            out.push_str(&format!("  {name:width$}  {value:>12}\n"));
        }
    }

    let histograms: Vec<(&String, &HistogramSnapshot)> = det.histograms.iter().collect();
    if !histograms.is_empty() {
        out.push_str("\n[latency] (virtual ms, log2 buckets)\n");
        let width = histograms
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max("metric".len());
        out.push_str(&format!(
            "  {:width$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
            "metric", "count", "p50", "p90", "p99", "max"
        ));
        for (name, h) in &histograms {
            out.push_str(&format!(
                "  {name:width$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
                h.count, h.p50, h.p90, h.p99, h.max
            ));
        }
    }

    let wall: Vec<(String, String)> = snap
        .gauges
        .iter()
        .filter(|(k, _)| k.contains(crate::registry::WALL_MARKER))
        .map(|(k, v)| (k.clone(), format!("{v} us")))
        .chain(
            snap.histograms
                .iter()
                .filter(|(k, _)| k.contains(crate::registry::WALL_MARKER))
                .map(|(k, h)| {
                    (
                        k.clone(),
                        format!("n={} p50={} max={} us", h.count, h.p50, h.max),
                    )
                }),
        )
        .collect();
    if !wall.is_empty() {
        out.push_str("\n[wall clock] (host timing; excluded from digests)\n");
        let width = wall.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &wall {
            out.push_str(&format!("  {name:width$}  {value}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn report_groups_by_stage_and_tables_histograms() {
        let reg = MetricsRegistry::new();
        reg.counter("engine.queries").add(216);
        reg.counter("engine.cache_hits").add(12);
        reg.counter("net.requests").add(432);
        reg.counter("crawler.jobs").add(108);
        reg.gauge("analysis.fig2_wall_us").set(5400);
        let h = reg.histogram("net.rtt_ms");
        for v in [40u64, 44, 80, 120] {
            h.observe(v);
        }
        reg.histogram("crawler.checkpoint_wall_us").observe(900);

        let text = render_run_report(&reg.snapshot());
        assert!(text.contains("[engine]"));
        assert!(text.contains("queries"));
        assert!(text.contains("216"));
        assert!(text.contains("[net]"));
        assert!(text.contains("[crawler]"));
        assert!(text.contains("[latency]"));
        assert!(text.contains("net.rtt_ms"));
        assert!(text.contains("[wall clock]"));
        assert!(text.contains("analysis.fig2_wall_us"));
        assert!(text.contains("crawler.checkpoint_wall_us"));
        // Wall metrics stay out of the deterministic stage tables.
        assert!(!text.contains("[analysis]\n"));
    }
}
