//! Human-readable per-stage breakdown of a [`MetricsSnapshot`] — the body of
//! `geoserp report`.

use std::collections::BTreeMap;

use crate::registry::{HistogramSnapshot, MetricsSnapshot};
use crate::trace::Stage;

/// Pipeline stage of a metric: the dotted prefix (`net.rtt_ms` → `net`).
fn stage_of(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

/// Metric name without its stage prefix.
fn short_name(name: &str) -> &str {
    match name.split_once('.') {
        Some((_, rest)) => rest,
        None => name,
    }
}

/// Unit label for the scatter-gather distribution metrics, which count
/// things (shards, candidate docs) rather than time.
fn router_unit(short: &str) -> &'static str {
    match short {
        "fanout" => "shards",
        "merge_candidates" => "docs",
        _ => "",
    }
}

/// Render the per-stage breakdown table for a snapshot.
///
/// Counters and gauges are grouped under their stage prefix (`engine`,
/// `net`, `crawler`, `analysis`); histograms get a latency table with
/// count / p50 / p90 / p99 / max. The `router.*` scatter-gather family
/// and the `serve.stage.*` per-request waterfall get dedicated sections.
/// Wall-clock metrics (names with the `_wall_` marker) are rendered in
/// their own clearly-labelled section.
pub fn render_run_report(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("geoserp run report\n");
    out.push_str("==================\n");

    let det = snap.deterministic();
    let mut stages: BTreeMap<&str, Vec<(&str, String)>> = BTreeMap::new();
    for (name, value) in &det.counters {
        if stage_of(name) == "router" {
            continue; // rendered in the dedicated [router] section
        }
        stages
            .entry(stage_of(name))
            .or_default()
            .push((short_name(name), value.to_string()));
    }
    for (name, value) in &det.gauges {
        if stage_of(name) == "router" {
            continue;
        }
        stages
            .entry(stage_of(name))
            .or_default()
            .push((short_name(name), value.to_string()));
    }

    for (stage, rows) in &stages {
        out.push_str(&format!("\n[{stage}]\n"));
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in rows {
            out.push_str(&format!("  {name:width$}  {value:>12}\n"));
        }
    }

    // Scatter-gather: counters plus distribution histograms whose samples
    // are counts (shards per scatter, docs per merge), not latencies.
    let router_counters: Vec<(&str, String)> = det
        .counters
        .iter()
        .filter(|(k, _)| stage_of(k) == "router")
        .map(|(k, v)| (short_name(k), v.to_string()))
        .collect();
    let router_hists: Vec<(&str, &HistogramSnapshot)> = det
        .histograms
        .iter()
        .filter(|(k, _)| stage_of(k) == "router")
        .map(|(k, h)| (short_name(k), h))
        .collect();
    if !router_counters.is_empty() || !router_hists.is_empty() {
        out.push_str("\n[router] (scatter-gather)\n");
        let width = router_counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(router_hists.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        for (name, value) in &router_counters {
            out.push_str(&format!("  {name:width$}  {value:>12}\n"));
        }
        for (name, h) in &router_hists {
            out.push_str(&format!(
                "  {name:width$}  n={} p50={} max={} {}\n",
                h.count,
                h.p50,
                h.max,
                router_unit(name)
            ));
        }
    }

    let histograms: Vec<(&String, &HistogramSnapshot)> = det
        .histograms
        .iter()
        .filter(|(k, _)| stage_of(k) != "router")
        .collect();
    if !histograms.is_empty() {
        out.push_str("\n[latency] (virtual ms, log2 buckets, 2 linear sub-steps)\n");
        let width = histograms
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max("metric".len());
        out.push_str(&format!(
            "  {:width$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
            "metric", "count", "p50", "p90", "p99", "max"
        ));
        for (name, h) in &histograms {
            out.push_str(&format!(
                "  {name:width$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
                h.count, h.p50, h.p90, h.p99, h.max
            ));
        }
    }

    // Per-request serve waterfall, pipeline order (wall µs per stage).
    let stage_rows: Vec<(&'static str, &HistogramSnapshot)> = Stage::ALL
        .iter()
        .filter_map(|s| {
            snap.histograms
                .get(s.histogram_name())
                .map(|h| (s.name(), h))
        })
        .filter(|(_, h)| h.count > 0)
        .collect();
    if !stage_rows.is_empty() {
        out.push_str("\n[serve stages] (wall us per request; excluded from digests)\n");
        let width = stage_rows
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max("stage".len());
        out.push_str(&format!(
            "  {:width$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
            "stage", "count", "p50", "p90", "p99", "max"
        ));
        for (name, h) in &stage_rows {
            out.push_str(&format!(
                "  {name:width$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
                h.count, h.p50, h.p90, h.p99, h.max
            ));
        }
    }

    let stage_name = |k: &str| Stage::ALL.iter().any(|s| s.histogram_name() == k);
    let wall: Vec<(String, String)> = snap
        .gauges
        .iter()
        .filter(|(k, _)| k.contains(crate::registry::WALL_MARKER))
        .map(|(k, v)| (k.clone(), format!("{v} us")))
        .chain(
            snap.histograms
                .iter()
                .filter(|(k, _)| k.contains(crate::registry::WALL_MARKER) && !stage_name(k))
                .map(|(k, h)| {
                    (
                        k.clone(),
                        format!("n={} p50={} max={} us", h.count, h.p50, h.max),
                    )
                }),
        )
        .collect();
    if !wall.is_empty() {
        out.push_str("\n[wall clock] (host timing; excluded from digests)\n");
        let width = wall.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &wall {
            out.push_str(&format!("  {name:width$}  {value}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn report_groups_by_stage_and_tables_histograms() {
        let reg = MetricsRegistry::new();
        reg.counter("engine.queries").add(216);
        reg.counter("engine.cache_hits").add(12);
        reg.counter("net.requests").add(432);
        reg.counter("crawler.jobs").add(108);
        reg.gauge("analysis.fig2_wall_us").set(5400);
        let h = reg.histogram("net.rtt_ms");
        for v in [40u64, 44, 80, 120] {
            h.observe(v);
        }
        reg.histogram("crawler.checkpoint_wall_us").observe(900);

        let text = render_run_report(&reg.snapshot());
        assert!(text.contains("[engine]"));
        assert!(text.contains("queries"));
        assert!(text.contains("216"));
        assert!(text.contains("[net]"));
        assert!(text.contains("[crawler]"));
        assert!(text.contains("[latency]"));
        assert!(text.contains("net.rtt_ms"));
        assert!(text.contains("[wall clock]"));
        assert!(text.contains("analysis.fig2_wall_us"));
        assert!(text.contains("crawler.checkpoint_wall_us"));
        // Wall metrics stay out of the deterministic stage tables.
        assert!(!text.contains("[analysis]\n"));
    }

    #[test]
    fn report_renders_router_family_and_serve_stage_waterfall() {
        let reg = MetricsRegistry::new();
        reg.counter("router.hedge_fired").add(2);
        reg.counter("router.retries").add(1);
        reg.counter("router.shard_errors").add(3);
        let fanout = reg.histogram("router.fanout");
        fanout.observe(2);
        fanout.observe(2);
        reg.histogram("router.merge_candidates").observe(17);
        for s in Stage::ALL {
            reg.histogram(s.histogram_name()).observe(250);
        }

        let text = render_run_report(&reg.snapshot());
        assert!(text.contains("[router] (scatter-gather)"));
        assert!(text.contains("hedge_fired"));
        assert!(text.contains("retries"));
        assert!(text.contains("shard_errors"));
        assert!(text.contains("fanout"), "{text}");
        assert!(text.contains("n=2 p50=2 max=2 shards"), "{text}");
        assert!(text.contains("n=1 p50=17 max=17 docs"), "{text}");
        // Router distributions are not latencies: out of the latency table.
        assert!(!text.contains("router.fanout"), "{text}");
        assert!(!text.contains("[latency]"), "{text}");

        assert!(text.contains("[serve stages]"), "{text}");
        let stage_section = text.split("[serve stages]").nth(1).unwrap();
        let order: Vec<usize> = Stage::ALL
            .iter()
            .map(|s| stage_section.find(&format!("\n  {}", s.name())).unwrap())
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "pipeline order");
        // Stage histograms render only in the waterfall, not [wall clock].
        assert!(!text.contains("serve.stage.queue_wall_us"), "{text}");
    }
}
