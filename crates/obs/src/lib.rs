//! Deterministic observability for the geoserp workspace.
//!
//! Two complementary pieces live here:
//!
//! 1. A [`MetricsRegistry`] of named counters, gauges, and log-bucketed
//!    latency histograms. Handles are pre-resolved `Arc`s over atomics, so
//!    incrementing on a hot path is a single relaxed atomic op — no lock is
//!    taken after registration.
//! 2. A [`SpanLog`] of completed spans stamped from the shared virtual
//!    clock (millisecond timestamps), so instrumented runs stay byte-identical
//!    across crawl backends and golden dataset digests are unaffected.
//!
//! Wall-clock measurements are allowed, but only under metric names carrying
//!    the `_wall_` marker; [`MetricsSnapshot::deterministic`] strips them so
//!    determinism comparisons never see host timing.
//!
//! Exporters: Prometheus-style text ([`MetricsSnapshot::to_prometheus`]),
//! Chrome trace-event JSON ([`export::to_chrome_trace`]) loadable in
//! Perfetto / `chrome://tracing`, and a human [`report::render_run_report`]
//! per-stage breakdown table.
//!
//! The [`trace`] module extends the span log across process boundaries:
//! deterministic [`TraceContext`]s propagate over the serve tier's wire
//! protocol and [`assemble_chrome_trace`] stitches per-process span logs
//! into one causally-linked, byte-stable Chrome trace.

#![warn(missing_docs)]

pub mod export;
pub mod registry;
pub mod report;
pub mod span;
pub mod trace;

pub use export::to_chrome_trace;
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use report::render_run_report;
pub use span::{SpanLog, SpanRecord};
pub use trace::{
    assemble_chrome_trace, parse_process_spans, process_spans_json, ProcessSpans, Stage,
    TraceContext,
};

/// Default capacity of the bounded span ring buffer.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 18;

/// One hub per crawl world: a metrics registry plus a span log, shared by
/// every instrumented subsystem (net sim, engine, crawler, analysis).
#[derive(Debug)]
pub struct ObsHub {
    metrics: MetricsRegistry,
    spans: SpanLog,
}

impl ObsHub {
    /// A fully-enabled hub (the default for crawls).
    pub fn new() -> Self {
        Self {
            metrics: MetricsRegistry::new(),
            spans: SpanLog::new(DEFAULT_SPAN_CAPACITY),
        }
    }

    /// A no-op hub: every handle it hands out discards writes. Used to
    /// measure instrumentation overhead and for callers that want zero
    /// observability cost.
    pub fn disabled() -> Self {
        Self {
            metrics: MetricsRegistry::disabled(),
            spans: SpanLog::disabled(),
        }
    }

    /// Whether this hub records anything.
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled()
    }

    /// The metrics registry half.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The span log half.
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// Snapshot every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

impl Default for ObsHub {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_roundtrip() {
        let hub = ObsHub::new();
        hub.metrics().counter("net.requests").inc();
        hub.metrics().gauge("analysis.fig2_wall_us").set(1234);
        hub.metrics().histogram("net.rtt_ms").observe(41);
        let snap = hub.snapshot();
        assert_eq!(snap.counters.get("net.requests"), Some(&1));
        assert_eq!(snap.gauges.get("analysis.fig2_wall_us"), Some(&1234));
        assert_eq!(snap.histograms.get("net.rtt_ms").unwrap().count, 1);
    }

    #[test]
    fn disabled_hub_records_nothing() {
        let hub = ObsHub::disabled();
        hub.metrics().counter("net.requests").inc();
        hub.metrics().histogram("net.rtt_ms").observe(41);
        hub.spans().record(SpanRecord {
            id: hub.spans().alloc_id(),
            parent: 0,
            name: "round".into(),
            cat: "crawler",
            tid: 0,
            start_ms: 0,
            dur_ms: 1,
            args: vec![],
            wall_us: None,
        });
        let snap = hub.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(hub.spans().snapshot().is_empty());
        assert!(!hub.is_enabled());
    }

    #[test]
    fn deterministic_filter_strips_wall_metrics() {
        let hub = ObsHub::new();
        hub.metrics().counter("crawler.jobs").inc();
        hub.metrics().gauge("analysis.fig2_wall_us").set(99);
        hub.metrics()
            .histogram("crawler.checkpoint_wall_us")
            .observe(17);
        let det = hub.snapshot().deterministic();
        assert_eq!(det.counters.get("crawler.jobs"), Some(&1));
        assert!(det.gauges.is_empty());
        assert!(det.histograms.is_empty());
    }
}
