//! Completed-span log stamped from the virtual clock.
//!
//! Spans are recorded *after* they finish (start + duration in virtual
//! milliseconds), with explicit parent IDs so nesting survives thread
//! boundaries — a crawl round span owns job spans that may complete on
//! worker threads, which in turn own per-attempt spans. IDs are allocated
//! from an atomic counter, so allocation order (and therefore raw IDs) may
//! differ between backends; the Chrome exporter renumbers deterministically.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// A finished span. All timestamps are virtual-clock milliseconds; the only
/// host-time field is the clearly-marked optional [`SpanRecord::wall_us`],
/// which exporters exclude from deterministic output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span ID (unique within one [`SpanLog`], allocation-ordered).
    pub id: u64,
    /// Parent span ID, or 0 for a root span.
    pub parent: u64,
    /// Human-readable name, e.g. `round 3: "car insurance" @County`.
    /// `Cow` so fixed names (the common per-attempt case) record without
    /// allocating — spans are emitted on the crawl's hot path.
    pub name: Cow<'static, str>,
    /// Category: `crawler.round`, `crawler.job`, or `crawler.attempt`.
    /// Always a literal at the recording site, so no allocation.
    pub cat: &'static str,
    /// Logical track: 0 for the scheduler, `1 + machine_index` for workers.
    pub tid: u32,
    /// Virtual start time in milliseconds.
    pub start_ms: u64,
    /// Virtual duration in milliseconds.
    pub dur_ms: u64,
    /// Extra key/value annotations (deterministic content only). Keys are
    /// literals; only values may be computed.
    pub args: Vec<(&'static str, String)>,
    /// Optional host wall-clock duration in microseconds. Never part of
    /// deterministic exports or digests.
    pub wall_us: Option<u64>,
}

#[derive(Debug, Default)]
struct SpanBuf {
    spans: VecDeque<SpanRecord>,
    /// Total spans ever recorded, including any evicted from the ring.
    total: u64,
}

/// Bounded ring buffer of completed spans plus an ID allocator.
///
/// The buffer and its total-recorded count live under a single mutex so a
/// snapshot always observes a consistent pair (the same discipline
/// `EventLog` follows).
#[derive(Debug)]
pub struct SpanLog {
    enabled: bool,
    capacity: usize,
    next_id: AtomicU64,
    buf: Mutex<SpanBuf>,
}

impl SpanLog {
    /// An enabled log keeping at most `capacity` finished spans.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span log capacity must be positive");
        Self {
            enabled: true,
            capacity,
            next_id: AtomicU64::new(1),
            buf: Mutex::new(SpanBuf::default()),
        }
    }

    /// A log that discards every record (IDs still allocate, cheaply).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            capacity: 1,
            next_id: AtomicU64::new(1),
            buf: Mutex::new(SpanBuf::default()),
        }
    }

    /// Whether records are kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Allocate a fresh span ID (valid even on a disabled log, so callers
    /// never need to branch).
    #[inline]
    pub fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Record a finished span, evicting the oldest if the ring is full.
    pub fn record(&self, span: SpanRecord) {
        if !self.enabled {
            return;
        }
        let mut buf = self.buf.lock();
        if buf.spans.len() == self.capacity {
            buf.spans.pop_front();
        }
        buf.spans.push_back(span);
        buf.total += 1;
    }

    /// Record several finished spans under one lock acquisition — hot-path
    /// callers (a crawl job's attempts plus the job span itself) batch to
    /// keep worker threads from colliding on the ring once per span.
    pub fn record_batch(&self, spans: impl IntoIterator<Item = SpanRecord>) {
        if !self.enabled {
            return;
        }
        let mut buf = self.buf.lock();
        for span in spans {
            if buf.spans.len() == self.capacity {
                buf.spans.pop_front();
            }
            buf.spans.push_back(span);
            buf.total += 1;
        }
    }

    /// Copy of the retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.buf.lock().spans.iter().cloned().collect()
    }

    /// Total spans ever recorded, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.buf.lock().total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &str) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: Cow::Owned(name.to_string()),
            cat: "crawler.round",
            tid: 0,
            start_ms: id * 10,
            dur_ms: 5,
            args: vec![],
            wall_us: None,
        }
    }

    #[test]
    fn records_in_order_and_counts_total() {
        let log = SpanLog::new(8);
        for i in 0..3 {
            let id = log.alloc_id();
            log.record(span(id, 0, &format!("s{i}")));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].name, "s0");
        assert_eq!(snap[2].name, "s2");
        assert_eq!(log.total_recorded(), 3);
    }

    #[test]
    fn ring_evicts_oldest_but_total_keeps_counting() {
        let log = SpanLog::new(2);
        for i in 1..=5u64 {
            log.record(span(i, 0, &format!("s{i}")));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "s4");
        assert_eq!(snap[1].name, "s5");
        assert_eq!(log.total_recorded(), 5);
    }

    #[test]
    fn ids_are_unique_across_threads() {
        let log = SpanLog::new(1024);
        let mut ids: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..100).map(|_| log.alloc_id()).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SpanLog::new(0);
    }
}
