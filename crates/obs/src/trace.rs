//! Cross-process distributed tracing: deterministic trace contexts, wire
//! propagation, and trace assembly.
//!
//! # Determinism contract
//!
//! A [`TraceContext`] is derived *arithmetically* from the request sequence
//! number (`src_ip << 32 | counter`, the same seq the engine's noise model
//! keys on), never from clocks or allocation order. Span IDs are hashes of
//! the context and a stable label, so they are globally unique across
//! processes **and** byte-stable across runs and serve backends — which is
//! what lets trace assembly be a plain concatenate-sort-renumber, with
//! causal parent links that survive process boundaries with no rewrite
//! machinery.
//!
//! Span *timestamps* are logical: each request owns a 10-virtual-ms slot
//! (`(seq & 0xffff_ffff) * 10`) and its stages sit at fixed offsets inside
//! the slot ([`Stage`]). Host wall-clock timing rides along in
//! [`SpanRecord::wall_us`] and the `serve.stage.*_wall_us` histograms, and
//! is excluded from every deterministic export.
//!
//! # Propagation
//!
//! Contexts travel as an HTTP header value (the serve tier reserves
//! `X-Geoserp-Trace`; the header *name* constant lives in
//! `geoserp_net::wire` — this crate only defines the value codec):
//!
//! ```text
//! {trace:016x}-{parent_span:016x}-{base_ms:x}
//! ```
//!
//! # Assembly
//!
//! Every server exposes its own span log as a [`ProcessSpans`] JSON
//! document (the `/spans` collector endpoint). A collector pulls one per
//! process — or reads dumped files — and [`assemble_chrome_trace`] merges
//! them into a single Chrome trace with one `pid` row per process,
//! renumbered exactly like [`crate::export::to_chrome_trace`] so the
//! merged document is byte-identical for virtually-identical runs.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

use crate::span::SpanRecord;
use crate::ObsHub;

/// Virtual milliseconds each request's trace slot spans (and the logical
/// duration of its root `request` span).
pub const REQUEST_SLOT_MS: u64 = 10;

/// Logical duration of the root `request` span inside its slot.
pub const REQUEST_DUR_MS: u64 = 8;

/// Logical offset a shard-side RPC starts at inside the parent's slot
/// (the scatter happens at the retrieve stage's offset).
pub const RPC_OFFSET_MS: u64 = 2;

/// The per-request serve stages with fixed logical offsets inside the
/// request's trace slot. Wall-clock durations per stage feed the
/// `serve.stage.<stage>_wall_us` histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Accept-to-dispatch wait (connection readiness to routing).
    Queue,
    /// Wire parse of the request head and body.
    Parse,
    /// Retrieval (local index or the scatter to shard replicas).
    Retrieve,
    /// Exact merge of shard parts (router only).
    Merge,
    /// SERP render to page bytes.
    Render,
    /// Response bytes reaching the socket.
    Flush,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Queue,
        Stage::Parse,
        Stage::Retrieve,
        Stage::Merge,
        Stage::Render,
        Stage::Flush,
    ];

    /// Stable stage label (span name and metric suffix).
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Parse => "parse",
            Stage::Retrieve => "retrieve",
            Stage::Merge => "merge",
            Stage::Render => "render",
            Stage::Flush => "flush",
        }
    }

    /// Logical start offset inside the request slot, virtual ms.
    pub const fn offset_ms(self) -> u64 {
        match self {
            Stage::Queue => 0,
            Stage::Parse => 1,
            Stage::Retrieve => 2,
            Stage::Merge => 4,
            Stage::Render => 5,
            Stage::Flush => 7,
        }
    }

    /// Logical duration, virtual ms.
    pub const fn dur_ms(self) -> u64 {
        match self {
            Stage::Retrieve => 2,
            _ => 1,
        }
    }

    /// Histogram fed with this stage's wall-clock microseconds. The
    /// `_wall_` marker keeps it out of deterministic snapshots.
    pub const fn histogram_name(self) -> &'static str {
        match self {
            Stage::Queue => "serve.stage.queue_wall_us",
            Stage::Parse => "serve.stage.parse_wall_us",
            Stage::Retrieve => "serve.stage.retrieve_wall_us",
            Stage::Merge => "serve.stage.merge_wall_us",
            Stage::Render => "serve.stage.render_wall_us",
            Stage::Flush => "serve.stage.flush_wall_us",
        }
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed injective u64 hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a label, for mixing stable strings into span IDs.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Salt separating trace IDs from every other seq-derived stream.
const TRACE_SALT: u64 = 0x6765_6f73_6572_7001; // "geoserp" | 1

/// The deterministic trace context of one in-flight request: trace ID,
/// current (parent) span ID, and the logical time base of the request's
/// trace slot. `Copy`, so it crosses thread and closure boundaries freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace ID shared by every span of one end-to-end request.
    pub trace: u64,
    /// Span ID new child spans parent to.
    pub span: u64,
    /// Logical start of this context's slot, virtual ms.
    pub base_ms: u64,
}

impl TraceContext {
    /// Root context for a request with sequence number `seq`. Both the
    /// trace ID and the root span ID are pure functions of `seq`, so two
    /// runs (or two serve backends) that assign the same sequence numbers
    /// produce identical traces.
    pub fn root(seq: u64) -> TraceContext {
        let trace = mix(seq ^ TRACE_SALT);
        TraceContext {
            trace,
            span: mix(trace ^ fnv1a("root")),
            base_ms: (seq & 0xffff_ffff) * REQUEST_SLOT_MS,
        }
    }

    /// Derive a child context whose `span` is this context's child span
    /// for `label`. Deterministic and label-sensitive.
    pub fn child(&self, label: &str) -> TraceContext {
        TraceContext {
            trace: self.trace,
            span: self.span_id(label),
            base_ms: self.base_ms,
        }
    }

    /// The (globally unique, deterministic) ID of this context's child
    /// span named `label`.
    pub fn span_id(&self, label: &str) -> u64 {
        let id = mix(self.span ^ fnv1a(label));
        // 0 means "no parent" in SpanRecord; never hand it out.
        if id == 0 {
            1
        } else {
            id
        }
    }

    /// Shift the logical time base (e.g. a shard-side RPC starts at the
    /// parent's retrieve offset).
    pub fn at_offset(mut self, off_ms: u64) -> TraceContext {
        self.base_ms += off_ms;
        self
    }

    /// Encode as the `X-Geoserp-Trace` header value.
    pub fn encode(&self) -> String {
        format!("{:016x}-{:016x}-{:x}", self.trace, self.span, self.base_ms)
    }

    /// Parse an `X-Geoserp-Trace` header value. `None` for anything that
    /// does not round-trip through [`TraceContext::encode`].
    pub fn parse(s: &str) -> Option<TraceContext> {
        let mut parts = s.split('-');
        let trace = parts.next().filter(|p| p.len() == 16)?;
        let span = parts.next().filter(|p| p.len() == 16)?;
        let base = parts.next()?;
        if parts.next().is_some() {
            return None;
        }
        Some(TraceContext {
            trace: u64::from_str_radix(trace, 16).ok()?,
            span: u64::from_str_radix(span, 16).ok()?,
            base_ms: u64::from_str_radix(base, 16).ok()?,
        })
    }

    /// The trace ID as the 16-hex-digit string spans carry in their args.
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace)
    }
}

struct Active {
    ctx: TraceContext,
    hub: Arc<ObsHub>,
}

thread_local! {
    static ACTIVE: RefCell<Vec<Active>> = const { RefCell::new(Vec::new()) };
}

/// Scope guard returned by [`enter`]; leaving the scope restores the
/// previously active context (if any).
#[must_use = "dropping the guard immediately deactivates the context"]
pub struct TraceGuard {
    // !Send so the guard can only drop on the thread that entered.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| {
            a.borrow_mut().pop();
        });
    }
}

/// Make `ctx` the active trace context of the current thread, recording
/// into `hub`, until the returned guard drops. Instrumentation sites that
/// cannot be handed a hub (the engine's retriever call, a shard service
/// shared by several replica servers) record through this.
pub fn enter(ctx: TraceContext, hub: Arc<ObsHub>) -> TraceGuard {
    ACTIVE.with(|a| a.borrow_mut().push(Active { ctx, hub }));
    TraceGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// The active trace context of the current thread, if any.
pub fn current() -> Option<TraceContext> {
    ACTIVE.with(|a| a.borrow().last().map(|x| x.ctx))
}

/// Record a span under the active context (no-op without one). Returns the
/// span ID when recorded.
pub fn record_span(
    name: Cow<'static, str>,
    cat: &'static str,
    off_ms: u64,
    dur_ms: u64,
    args: Vec<(&'static str, String)>,
    wall_us: Option<u64>,
) -> Option<u64> {
    ACTIVE.with(|a| {
        let a = a.borrow();
        let active = a.last()?;
        Some(record_span_with(
            &active.hub,
            &active.ctx,
            name,
            cat,
            off_ms,
            dur_ms,
            args,
            wall_us,
        ))
    })
}

/// Record a stage span (and feed its wall-clock histogram) under the
/// active context; no-op without one.
pub fn record_stage(stage: Stage, wall_us: Option<u64>) {
    ACTIVE.with(|a| {
        let a = a.borrow();
        if let Some(active) = a.last() {
            record_stage_with(&active.hub, &active.ctx, stage, wall_us);
        }
    });
}

/// Record a span as a child of `ctx` into `hub`'s span log. The span ID is
/// derived from `(ctx, name)`, so it is deterministic and globally unique.
#[allow(clippy::too_many_arguments)]
pub fn record_span_with(
    hub: &ObsHub,
    ctx: &TraceContext,
    name: Cow<'static, str>,
    cat: &'static str,
    off_ms: u64,
    dur_ms: u64,
    mut args: Vec<(&'static str, String)>,
    wall_us: Option<u64>,
) -> u64 {
    let id = ctx.span_id(&name);
    args.insert(0, ("trace", ctx.trace_hex()));
    hub.spans().record(SpanRecord {
        id,
        parent: ctx.span,
        name,
        cat,
        tid: 0,
        start_ms: ctx.base_ms + off_ms,
        dur_ms,
        args,
        wall_us,
    });
    id
}

/// Record a stage span as a child of `ctx` into `hub`, and observe the
/// stage's wall-clock histogram when a measurement is available.
pub fn record_stage_with(hub: &ObsHub, ctx: &TraceContext, stage: Stage, wall_us: Option<u64>) {
    record_span_with(
        hub,
        ctx,
        Cow::Borrowed(stage.name()),
        "serve.stage",
        stage.offset_ms(),
        stage.dur_ms(),
        Vec::new(),
        wall_us,
    );
    if let Some(w) = wall_us {
        hub.metrics().histogram(stage.histogram_name()).observe(w);
    }
}

/// One span as it travels between processes (the `/spans` document and
/// dump files). Deterministic fields only — wall-clock timing never
/// crosses the collector boundary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanDto {
    /// Span ID (hash-derived, globally unique for traced spans).
    pub id: u64,
    /// Parent span ID, 0 for roots. May refer into another process.
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Span category.
    pub cat: String,
    /// Logical track within the process.
    pub tid: u32,
    /// Logical start, virtual ms.
    pub start_ms: u64,
    /// Logical duration, virtual ms.
    pub dur_ms: u64,
    /// Deterministic key/value annotations.
    pub args: Vec<(String, String)>,
}

impl SpanDto {
    /// Convert a local record for export (drops wall-clock timing).
    pub fn from_record(s: &SpanRecord) -> SpanDto {
        SpanDto {
            id: s.id,
            parent: s.parent,
            name: s.name.to_string(),
            cat: s.cat.to_string(),
            tid: s.tid,
            start_ms: s.start_ms,
            dur_ms: s.dur_ms,
            args: s
                .args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

/// One process's span log, named for its row in the assembled trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessSpans {
    /// Process name (`router`, `shard0.r1`, `serve`, …).
    pub process: String,
    /// Retained spans, oldest first.
    pub spans: Vec<SpanDto>,
}

impl ProcessSpans {
    /// Wrap a local span log for assembly or export.
    pub fn from_records(process: &str, spans: &[SpanRecord]) -> ProcessSpans {
        ProcessSpans {
            process: process.to_string(),
            spans: spans.iter().map(SpanDto::from_record).collect(),
        }
    }
}

/// Render one process's spans as the `/spans` collector document.
pub fn process_spans_json(process: &str, spans: &[SpanRecord]) -> String {
    serde_json::to_string_pretty(&ProcessSpans::from_records(process, spans))
        .expect("process spans serialize")
}

/// Parse a `/spans` document (or a dumped spans file).
///
/// # Errors
/// A description of the JSON or shape mismatch.
pub fn parse_process_spans(s: &str) -> Result<ProcessSpans, String> {
    serde_json::from_str(s).map_err(|e| format!("invalid process spans: {e:?}"))
}

/// Nesting depth via the parent chain across every process (missing or
/// evicted parents terminate; cycles are cut at 64).
fn depth_of(span: &SpanDto, by_id: &HashMap<u64, &SpanDto>) -> u32 {
    let mut depth = 0;
    let mut parent = span.parent;
    while parent != 0 && depth < 64 {
        match by_id.get(&parent) {
            Some(p) => {
                depth += 1;
                parent = p.parent;
            }
            None => break,
        }
    }
    depth
}

/// Stitch per-process span logs into one deterministic Chrome trace.
///
/// Processes are sorted by name and assigned `pid` rows in that order
/// (with `process_name` metadata events); spans are sorted by
/// deterministic content — `(start_ms, depth, pid, tid, name, args)` —
/// then renumbered from 1 in sorted order, exactly like
/// [`crate::export::to_chrome_trace`], with parent links (including
/// cross-process ones) rewritten through the same mapping. Byte-identical
/// for virtually-identical runs regardless of serve backend.
pub fn assemble_chrome_trace(processes: &[ProcessSpans]) -> String {
    let mut order: Vec<&ProcessSpans> = processes.iter().collect();
    order.sort_by(|a, b| a.process.cmp(&b.process));

    let mut tagged: Vec<(u32, &SpanDto)> = Vec::new();
    for (i, p) in order.iter().enumerate() {
        for s in &p.spans {
            tagged.push((i as u32 + 1, s));
        }
    }
    let by_id: HashMap<u64, &SpanDto> = tagged.iter().map(|(_, s)| (s.id, *s)).collect();
    tagged.sort_by(|(pa, a), (pb, b)| {
        let ka = (
            a.start_ms,
            depth_of(a, &by_id),
            *pa,
            a.tid,
            &a.name,
            &a.args,
        );
        let kb = (
            b.start_ms,
            depth_of(b, &by_id),
            *pb,
            b.tid,
            &b.name,
            &b.args,
        );
        ka.cmp(&kb)
    });
    let renumber: HashMap<u64, u64> = tagged
        .iter()
        .enumerate()
        .map(|(i, (_, s))| (s.id, i as u64 + 1))
        .collect();

    let mut events: Vec<Value> = order
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut args = serde_json::Map::new();
            args.insert("name".to_string(), json!(p.process));
            json!({
                "name": "process_name",
                "ph": "M",
                "pid": i as u32 + 1,
                "tid": 0u32,
                "args": Value::Object(args),
            })
        })
        .collect();
    events.extend(tagged.iter().map(|(pid, s)| {
        let mut args = serde_json::Map::new();
        args.insert("id".to_string(), json!(renumber[&s.id]));
        args.insert(
            "parent".to_string(),
            json!(renumber.get(&s.parent).copied().unwrap_or(0)),
        );
        for (k, v) in &s.args {
            args.insert(k.clone(), json!(v));
        }
        json!({
            "name": s.name,
            "cat": s.cat,
            "ph": "X",
            "ts": s.start_ms * 1000,
            "dur": s.dur_ms * 1000,
            "pid": pid,
            "tid": s.tid,
            "args": Value::Object(args),
        })
    }));
    let doc = json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    });
    serde_json::to_string_pretty(&doc).expect("trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_context_is_a_pure_function_of_seq() {
        let a = TraceContext::root(42);
        let b = TraceContext::root(42);
        assert_eq!(a, b);
        assert_ne!(a.trace, TraceContext::root(43).trace);
        assert_eq!(a.base_ms, 42 * REQUEST_SLOT_MS);
        // The counter half drives the slot even behind a src prefix.
        let seq = (0x0a09_0001u64 << 32) | 7;
        assert_eq!(TraceContext::root(seq).base_ms, 7 * REQUEST_SLOT_MS);
    }

    #[test]
    fn child_derivation_is_stable_and_label_sensitive() {
        let root = TraceContext::root(1);
        let a = root.child("retrieve");
        assert_eq!(a, root.child("retrieve"));
        assert_ne!(a.span, root.child("suggest").span);
        assert_eq!(a.trace, root.trace);
        assert_eq!(a.span, root.span_id("retrieve"));
    }

    #[test]
    fn header_value_roundtrips() {
        let ctx = TraceContext::root(0x0a09_0001_0000_0003).child("s0.try0");
        let encoded = ctx.encode();
        assert_eq!(TraceContext::parse(&encoded), Some(ctx));
        assert_eq!(TraceContext::parse(""), None);
        assert_eq!(TraceContext::parse("zz-1-2"), None);
        assert_eq!(
            TraceContext::parse("0123456789abcdef-0123456789abcdef"),
            None
        );
        assert_eq!(
            TraceContext::parse("0123456789abcdef-0123456789abcdef-a-b"),
            None
        );
    }

    #[test]
    fn enter_scopes_the_active_context() {
        assert_eq!(current(), None);
        let hub = Arc::new(ObsHub::new());
        let root = TraceContext::root(5);
        {
            let _g = enter(root, Arc::clone(&hub));
            assert_eq!(current(), Some(root));
            record_stage(Stage::Parse, Some(17));
        }
        assert_eq!(current(), None);
        record_stage(Stage::Queue, Some(99)); // no-op outside a scope
        let spans = hub.spans().snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "parse");
        assert_eq!(spans[0].parent, root.span);
        assert_eq!(spans[0].start_ms, root.base_ms + Stage::Parse.offset_ms());
        assert_eq!(spans[0].wall_us, Some(17));
        let snap = hub.snapshot();
        let h = snap.histograms.get("serve.stage.parse_wall_us").unwrap();
        assert_eq!((h.count, h.max), (1, 17));
        assert!(!snap.histograms.contains_key("serve.stage.queue_wall_us"));
    }

    #[test]
    fn process_spans_roundtrip() {
        let hub = ObsHub::new();
        let ctx = TraceContext::root(9);
        record_span_with(
            &hub,
            &ctx,
            Cow::Borrowed("merge"),
            "router.merge",
            4,
            1,
            vec![("candidates", "12".into())],
            Some(33),
        );
        let json = process_spans_json("router", &hub.spans().snapshot());
        assert!(
            !json.contains("wall"),
            "wall timing must not cross the wire"
        );
        let parsed = parse_process_spans(&json).unwrap();
        assert_eq!(parsed.process, "router");
        assert_eq!(parsed.spans.len(), 1);
        assert_eq!(parsed.spans[0].name, "merge");
        assert_eq!(parsed.spans[0].args[0], ("trace".into(), ctx.trace_hex()));
        assert!(parse_process_spans("{not json").is_err());
    }

    #[test]
    fn assembly_links_spans_across_processes_and_is_order_invariant() {
        let root = TraceContext::root(3);
        // The attempt context's label IS the rpc span's name, so the
        // shard-side spans parent to the router's rpc span exactly.
        let rpc = root.child("retrieve").child("rpc s0.r1 #0");

        let router_hub = ObsHub::new();
        record_span_with(
            &router_hub,
            &root,
            Cow::Borrowed("request /search"),
            "serve.request",
            0,
            REQUEST_DUR_MS,
            Vec::new(),
            None,
        );
        let shard_hub = ObsHub::new();
        // Shard-side span parents to the router's rpc child span.
        record_stage_with(
            &shard_hub,
            &rpc.at_offset(RPC_OFFSET_MS),
            Stage::Retrieve,
            None,
        );
        // The rpc span itself, router-side.
        record_span_with(
            &router_hub,
            &root.child("retrieve"),
            Cow::Owned("rpc s0.r1 #0".into()),
            "router.rpc",
            2,
            1,
            vec![("outcome", "win".into())],
            None,
        );

        let router = parse_process_spans(&process_spans_json(
            "router",
            &router_hub.spans().snapshot(),
        ))
        .unwrap();
        let shard = parse_process_spans(&process_spans_json(
            "shard0.r1",
            &shard_hub.spans().snapshot(),
        ))
        .unwrap();

        let a = assemble_chrome_trace(&[router.clone(), shard.clone()]);
        let b = assemble_chrome_trace(&[shard, router]);
        assert_eq!(a, b, "assembly is invariant to pull order");

        let doc: Value = serde_json::from_str(&a).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        // 2 process_name metadata events + 3 spans.
        assert_eq!(events.len(), 5);
        assert_eq!(events[0]["ph"].as_str(), Some("M"));
        assert_eq!(events[0]["args"]["name"].as_str(), Some("router"));
        assert_eq!(events[1]["args"]["name"].as_str(), Some("shard0.r1"));
        let by_name: HashMap<&str, &Value> = events[2..]
            .iter()
            .map(|e| (e["name"].as_str().unwrap(), e))
            .collect();
        let request = by_name["request /search"];
        let rpc_ev = by_name["rpc s0.r1 #0"];
        let shard_retrieve = by_name["retrieve"];
        assert_eq!(request["args"]["parent"].as_u64(), Some(0));
        assert_eq!(rpc_ev["pid"].as_u64(), Some(1));
        assert_eq!(shard_retrieve["pid"].as_u64(), Some(2));
        // Causal chain: shard retrieve → router rpc span, across processes.
        assert_eq!(
            shard_retrieve["args"]["parent"].as_u64(),
            rpc_ev["args"]["id"].as_u64()
        );
        assert_eq!(
            shard_retrieve["ts"].as_u64().unwrap(),
            (3 * REQUEST_SLOT_MS + RPC_OFFSET_MS + Stage::Retrieve.offset_ms()) * 1000
        );
    }
}
