//! Named counters, gauges, and log-bucketed histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are resolved once through
//! the [`MetricsRegistry`] (which takes a short write lock) and then shared as
//! `Arc`s; every subsequent increment/observe is lock-free atomics. A
//! disabled registry hands out unregistered no-op handles so hot paths cost a
//! single branch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Number of buckets in a [`Histogram`]: log2 scale with **2 linear
/// sub-steps per octave**, so relative resolution is ~50% everywhere
/// instead of 2× — a 1.0 ms and a 1.9 ms serve stage no longer collapse
/// into one bucket. Bucket 0 holds the value 0, bucket 1 holds the value
/// 1; for `v >= 2` with `k = floor(log2 v)`, the octave `[2^k, 2^(k+1))`
/// splits at `1.5 * 2^k` into buckets `2k` and `2k+1`. 126 buckets cover
/// the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 126;

fn bucket_index(value: u64) -> usize {
    match value {
        0 => 0,
        1 => 1,
        v => {
            let k = 63 - v.leading_zeros() as usize;
            let half = (1u64 << k) + (1u64 << (k - 1));
            let sub = usize::from(v >= half);
            (2 * k + sub).min(HISTOGRAM_BUCKETS - 1)
        }
    }
}

/// Inclusive upper bound of bucket `i` (saturating for the overflow bucket).
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i == 1 {
        1
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        let k = i / 2;
        if i.is_multiple_of(2) {
            // Lower half-octave: [2^k, 1.5 * 2^k).
            (1u64 << k) + (1u64 << (k - 1)) - 1
        } else {
            // Upper half-octave: [1.5 * 2^k, 2^(k+1)).
            (1u64 << (k + 1)) - 1
        }
    }
}

#[derive(Debug)]
struct CounterCell {
    enabled: bool,
    value: AtomicU64,
}

/// A monotonically increasing named counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<CounterCell>);

impl Counter {
    fn new(enabled: bool) -> Self {
        Self(Arc::new(CounterCell {
            enabled,
            value: AtomicU64::new(0),
        }))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.0.enabled {
            self.0.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct GaugeCell {
    enabled: bool,
    value: AtomicI64,
}

/// A named gauge holding the last value set.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    fn new(enabled: bool) -> Self {
        Self(Arc::new(GaugeCell {
            enabled,
            value: AtomicI64::new(0),
        }))
    }

    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.0.enabled {
            self.0.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adjust the gauge by a signed delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.0.enabled {
            self.0.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCell {
    enabled: bool,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

/// A bucketed histogram of non-negative integer samples (typically
/// latencies in virtual milliseconds or wall-clock microseconds), on a
/// log2 scale with two linear sub-steps per octave (see
/// [`HISTOGRAM_BUCKETS`]). Observation is lock-free.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    fn new(enabled: bool) -> Self {
        Self(Arc::new(HistogramCell {
            enabled,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }))
    }

    /// Record one sample.
    #[inline]
    pub fn observe(&self, value: u64) {
        if !self.0.enabled {
            return;
        }
        let cell = &*self.0;
        cell.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(value, Ordering::Relaxed);
        cell.max.fetch_max(value, Ordering::Relaxed);
        cell.min.fetch_min(value, Ordering::Relaxed);
    }

    /// Snapshot this histogram (count, sum, min/max, approximate quantiles).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cell = &*self.0;
        let buckets: Vec<u64> = cell
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = cell.count.load(Ordering::Relaxed);
        let sum = cell.sum.load(Ordering::Relaxed);
        let max = cell.max.load(Ordering::Relaxed);
        let min = if count == 0 {
            0
        } else {
            cell.min.load(Ordering::Relaxed)
        };
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((q * count as f64).ceil() as u64).max(1);
            let mut seen = 0u64;
            for (i, n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= target {
                    return bucket_upper_bound(i).min(max);
                }
            }
            max
        };
        let nonzero: Vec<(u64, u64)> = buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (bucket_upper_bound(i), *n))
            .collect();
        HistogramSnapshot {
            count,
            sum,
            min,
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            buckets: nonzero,
        }
    }
}

/// Point-in-time view of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples observed.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Approximate 50th percentile (bucket upper bound, clamped to max).
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Registry of named metrics. Dotted lowercase names (`net.requests`,
/// `crawler.backoff_ms`) group metrics by pipeline stage; names containing
/// the `_wall_` marker are understood to hold host wall-clock measurements
/// and are excluded from [`MetricsSnapshot::deterministic`].
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    inner: RwLock<RegistryInner>,
}

impl MetricsRegistry {
    /// An enabled registry.
    pub fn new() -> Self {
        Self {
            enabled: true,
            inner: RwLock::new(RegistryInner::default()),
        }
    }

    /// A registry whose handles all discard writes and which snapshots empty.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            inner: RwLock::new(RegistryInner::default()),
        }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if !self.enabled {
            return Counter::new(false);
        }
        if let Some(c) = self.inner.read().counters.get(name) {
            return c.clone();
        }
        self.inner
            .write()
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Counter::new(true))
            .clone()
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if !self.enabled {
            return Gauge::new(false);
        }
        if let Some(g) = self.inner.read().gauges.get(name) {
            return g.clone();
        }
        self.inner
            .write()
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Gauge::new(true))
            .clone()
    }

    /// Get or register the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        if !self.enabled {
            return Histogram::new(false);
        }
        if let Some(h) = self.inner.read().histograms.get(name) {
            return h.clone();
        }
        self.inner
            .write()
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(true))
            .clone()
    }

    /// Snapshot every registered metric, keys sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Marker substring identifying wall-clock (non-deterministic) metric names.
pub const WALL_MARKER: &str = "_wall_";

/// Point-in-time view of a whole [`MetricsRegistry`]. `BTreeMap` keys make
/// serialization order deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A copy with every wall-clock metric (name containing [`WALL_MARKER`])
    /// removed. Two instrumented runs that are virtually identical must
    /// produce equal deterministic snapshots regardless of backend or host.
    pub fn deterministic(&self) -> MetricsSnapshot {
        let keep = |k: &String| !k.contains(WALL_MARKER);
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Render in the Prometheus text exposition format. Metric names are
    /// sanitized (`.` and other non-alphanumerics become `_`) and prefixed
    /// with `geoserp_`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE geoserp_{n} counter\n"));
            out.push_str(&format!("geoserp_{n} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE geoserp_{n} gauge\n"));
            out.push_str(&format!("geoserp_{n} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE geoserp_{n} histogram\n"));
            let mut cumulative = 0u64;
            for (bound, count) in &h.buckets {
                cumulative += count;
                out.push_str(&format!(
                    "geoserp_{n}_bucket{{le=\"{bound}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!("geoserp_{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("geoserp_{n}_sum {}\n", h.sum));
            out.push_str(&format!("geoserp_{n}_count {}\n", h.count));
        }
        out
    }

    /// Serialize to pretty JSON (stable key order via `BTreeMap`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }

    /// Parse a snapshot previously written by [`Self::to_json`].
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("invalid metrics snapshot: {e:?}"))
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_log2_with_two_linear_substeps() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 3);
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(5), 4);
        assert_eq!(bucket_index(6), 5);
        assert_eq!(bucket_index(7), 5);
        // 1.0 ms vs 1.9 ms (in µs) land in different buckets now.
        assert_ne!(bucket_index(1000), bucket_index(1900));
        assert_eq!(bucket_index(1023), 19);
        assert_eq!(bucket_index(1024), 20);
        assert_eq!(bucket_index(1535), 20);
        assert_eq!(bucket_index(1536), 21);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 2);
        assert_eq!(bucket_upper_bound(3), 3);
        assert_eq!(bucket_upper_bound(19), 1023);
        assert_eq!(bucket_upper_bound(20), 1535);
        assert_eq!(bucket_upper_bound(21), 2047);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // Every value maps into a bucket whose bound contains it.
        for v in (0u64..4096).chain([u64::MAX / 2, u64::MAX]) {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("net.requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-resolving the same name yields the same underlying cell.
        reg.counter("net.requests").inc();
        assert_eq!(c.get(), 6);
        let g = reg.gauge("pool.size");
        g.set(44);
        g.add(-2);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn histogram_quantiles_track_samples() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("net.rtt_ms");
        for v in [1u64, 2, 3, 40, 41, 42, 80, 120, 500, 900] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 1729);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 900);
        assert!(s.p50 >= 40 && s.p50 <= 63, "p50={}", s.p50);
        assert!(s.p90 >= 500 && s.p90 <= 900, "p90={}", s.p90);
        assert_eq!(s.p99, 900);
        assert!((s.mean() - 172.9).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let reg = MetricsRegistry::new();
        let s = reg.histogram("empty").snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0,
                buckets: vec![],
            }
        );
    }

    #[test]
    fn prometheus_export_contains_all_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("engine.queries").add(7);
        reg.gauge("analysis.fig2_wall_us").set(100);
        let h = reg.histogram("net.rtt_ms");
        h.observe(41);
        h.observe(90);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE geoserp_engine_queries counter"));
        assert!(text.contains("geoserp_engine_queries 7"));
        assert!(text.contains("# TYPE geoserp_analysis_fig2_wall_us gauge"));
        assert!(text.contains("# TYPE geoserp_net_rtt_ms histogram"));
        assert!(text.contains("geoserp_net_rtt_ms_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("geoserp_net_rtt_ms_sum 131"));
        assert!(text.contains("geoserp_net_rtt_ms_count 2"));
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let reg = MetricsRegistry::new();
        reg.counter("crawler.jobs").add(108);
        reg.histogram("net.rtt_ms").observe(40);
        let snap = reg.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn concurrent_increments_do_not_lose_counts() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let c = reg.counter("hot");
        let h = reg.histogram("hot_hist");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.observe(i % 100);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.snapshot().count, 8000);
    }
}
