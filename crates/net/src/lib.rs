#![warn(missing_docs)]
//! # geoserp-net — deterministic message-level network simulator
//!
//! The paper's crawler had to navigate real operational constraints: Google
//! rate-limits aggressive clients (hence "44 machines in a single /24
//! subnet"), DNS load-balances across datacenters (hence "we statically
//! mapped the DNS entry for the Google Search server"), and the validation
//! experiment ran from 50 PlanetLab machines with distinct IPs. This crate
//! reproduces those constraints as a *deterministic, virtual-time* network —
//! in the event-driven, no-surprises spirit of smoltcp rather than a real
//! socket stack, because determinism is what makes a simulated measurement
//! study reproducible.
//!
//! Components:
//!
//! * [`VirtualClock`] — shared millisecond clock; nothing in geoserp ever
//!   reads wall time;
//! * [`Request`] / [`Response`] — a minimal HTTP-shaped message pair
//!   ([`bytes::Bytes`] bodies, ordered headers, query parameters);
//! * [`DnsResolver`] — name → set of server IPs, round-robin by default,
//!   with the static-override facility the paper used to pin one datacenter;
//! * [`FaultInjector`] — probabilistic drop / byte-corruption
//!   (smoltcp-style `--drop-chance` / `--corrupt-chance`);
//! * [`RateLimiter`] — per-source sliding-window limits, keyed by exact IP or
//!   /24, the constraint that forced the paper's machine pool;
//! * [`TokenBucket`] — client-side egress shaping (smoltcp-style
//!   `--tx-rate-limit`), installable per source via
//!   [`SimNet::set_egress_shaper`];
//! * [`Server`] — trait for simulated services; [`SimNet`] routes requests
//!   from client IPs to registered servers and keeps a bounded [`EventLog`]
//!   (a pcap-like trace).
//!
//! Everything is `Send + Sync`; the crawler drives many clients from scoped
//! threads against one shared [`SimNet`].

pub mod clock;
pub mod dns;
pub mod fault;
pub mod http;
pub mod ratelimit;
pub mod server;
pub mod shaper;
pub mod shardmsg;
pub mod sim;
pub mod trace;
pub mod wire;

pub use clock::VirtualClock;
pub use dns::DnsResolver;
pub use fault::FaultInjector;
pub use http::{Method, Request, Response, Status};
pub use ratelimit::{RateLimitKey, RateLimiter};
pub use server::{RequestCtx, Server};
pub use shaper::{ShaperConfig, TokenBucket};
pub use shardmsg::{
    ShardRetrieveRequest, ShardRetrieveResponse, ShardSuggestRequest, ShardSuggestResponse,
    SpellCandidate, SHARD_RETRIEVE_PATH, SHARD_SUGGEST_PATH,
};
pub use sim::{NetError, SimNet, SimNetBuilder};
pub use trace::{EventLog, NetEvent, NetEventKind};
pub use wire::{
    encode_request, encode_response, parse_request, parse_response, WireError, WireLimits,
    TRACE_HEADER,
};

/// Convenience: parse an IPv4 address, panicking on bad literals (for tests
/// and fixtures).
pub fn ip(s: &str) -> std::net::Ipv4Addr {
    s.parse().expect("valid IPv4 literal")
}

/// The /24 prefix of an IPv4 address (the granularity Google-style rate
/// limiting and the paper's machine pool care about).
pub fn subnet24(addr: std::net::Ipv4Addr) -> [u8; 3] {
    let o = addr.octets();
    [o[0], o[1], o[2]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_helper_parses() {
        assert_eq!(ip("10.1.2.3").octets(), [10, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "valid IPv4")]
    fn ip_helper_panics_on_garbage() {
        ip("not-an-ip");
    }

    #[test]
    fn subnet_extraction() {
        assert_eq!(subnet24(ip("192.168.7.200")), [192, 168, 7]);
        assert_eq!(subnet24(ip("192.168.7.1")), subnet24(ip("192.168.7.254")));
        assert_ne!(subnet24(ip("192.168.7.1")), subnet24(ip("192.168.8.1")));
    }
}
