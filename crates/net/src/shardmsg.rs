//! Wire messages for the sharded search tier.
//!
//! A shard serves a page-id slice of the corpus and answers retrieval
//! requests from the router with *integer-only* payloads: page ids, matched
//! token counts, and document frequencies. No floating-point score ever
//! crosses the wire — the router recomputes lexical scores with the exact
//! expression the single-process engine uses, which is what makes the
//! scatter-gather merge bit-identical by construction.
//!
//! Distributed-tracing contexts ride *next to* these DTOs, not inside
//! them: the router stamps each shard RPC with the
//! [`crate::wire::TRACE_HEADER`] header so the JSON bodies (and therefore
//! the merge arithmetic and every golden digest over them) are identical
//! with tracing on or off.

use serde::{Deserialize, Serialize};

/// Router → shard: retrieval for one query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRetrieveRequest {
    /// The raw query (each side tokenizes with the shared tokenizer).
    pub query: String,
    /// Upper bound on partial matches the shard returns, ordered by
    /// (matched-count desc, page id asc). The router passes the global
    /// deficit ceiling so every shard's slice of the global top-k is
    /// guaranteed to be inside its response.
    pub max_partials: u32,
}

/// Shard → router: the shard-local retrieval result.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRetrieveResponse {
    /// Pages in this shard containing *every* query token, id-ascending.
    pub fulls: Vec<u32>,
    /// Partial matches `(page id, matched token count)`, the shard-local
    /// top `max_partials` by (count desc, id asc).
    pub partials: Vec<(u32, u32)>,
}

/// Router → shard: spell-correction data for one query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSuggestRequest {
    /// The raw query.
    pub query: String,
}

/// One shard-local spell-correction candidate for an unknown token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpellCandidate {
    /// The vocabulary token.
    pub token: String,
    /// Character edit distance from the query token (≤ 2).
    pub distance: u32,
    /// Shard-local document frequency of the candidate. The router sums
    /// these across shards; because every page's tokens are indexed in
    /// exactly one shard, the sum equals the global document frequency.
    pub df: u64,
}

/// Shard → router: per-token dfs plus correction candidates.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSuggestResponse {
    /// Shard-local document frequency of each query token, in token order.
    pub token_dfs: Vec<u64>,
    /// For each query token, the shard-local candidates within edit
    /// distance 2 (empty when the token is known to this shard — the
    /// router only consults candidates for globally-unknown tokens).
    pub corrections: Vec<Vec<SpellCandidate>>,
}

/// HTTP path a shard answers retrieval requests on (POST, JSON body).
pub const SHARD_RETRIEVE_PATH: &str = "/shard/retrieve";

/// HTTP path a shard answers suggest requests on (POST, JSON body).
pub const SHARD_SUGGEST_PATH: &str = "/shard/suggest";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrieve_roundtrips_through_json() {
        let resp = ShardRetrieveResponse {
            fulls: vec![1, 5, 9],
            partials: vec![(2, 3), (7, 1)],
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: ShardRetrieveResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn suggest_roundtrips_through_json() {
        let resp = ShardSuggestResponse {
            token_dfs: vec![0, 12],
            corrections: vec![
                vec![SpellCandidate {
                    token: "coffee".into(),
                    distance: 1,
                    df: 40,
                }],
                vec![],
            ],
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: ShardSuggestResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }
}
