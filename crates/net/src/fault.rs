//! Fault injection, in the style of smoltcp's example options
//! (`--drop-chance`, `--corrupt-chance`).
//!
//! The paper's crawler retried failed page loads; fault injection lets the
//! crawler's retry logic be tested deterministically. Faults default to off
//! for the reproduction experiments (network loss is not a phenomenon the
//! paper studies).
//!
//! Decisions are *pure functions of a nonce* (the network's per-source
//! request sequence number) rather than draws from a shared stream — so a
//! parallel crawl makes exactly the same fault decisions regardless of how
//! its threads interleave, which keeps lossy crawls replayable.

use bytes::{Bytes, BytesMut};
use geoserp_geo::Seed;
use serde::{Deserialize, Serialize};

/// What the injector decided to do to one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultDecision {
    /// Deliver.
    Deliver,
    /// Drop.
    Drop,
    /// Corrupt.
    Corrupt,
}

/// Probabilistic message mangler. Stateless: decisions depend only on the
/// seed and the caller-provided nonce.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    drop_chance: f64,
    corrupt_chance: f64,
    seed: Seed,
}

impl FaultInjector {
    /// Chances are probabilities in `[0, 1]`; both zero means a perfect
    /// network.
    pub fn new(seed: Seed, drop_chance: f64, corrupt_chance: f64) -> Self {
        assert!((0.0..=1.0).contains(&drop_chance), "drop_chance in [0,1]");
        assert!(
            (0.0..=1.0).contains(&corrupt_chance),
            "corrupt_chance in [0,1]"
        );
        FaultInjector {
            drop_chance,
            corrupt_chance,
            seed: seed.derive("fault-injector"),
        }
    }

    /// A no-fault injector.
    pub fn perfect(seed: Seed) -> Self {
        Self::new(seed, 0.0, 0.0)
    }

    /// The configured drop probability.
    pub fn drop_chance(&self) -> f64 {
        self.drop_chance
    }

    /// The configured corruption probability.
    pub fn corrupt_chance(&self) -> f64 {
        self.corrupt_chance
    }

    /// True if any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.drop_chance > 0.0 || self.corrupt_chance > 0.0
    }

    /// Decide the fate of the message identified by `nonce`.
    pub fn decide(&self, nonce: u64) -> FaultDecision {
        if !self.is_active() {
            return FaultDecision::Deliver;
        }
        let mut rng = self.seed.derive_idx("decision", nonce).rng();
        if rng.chance(self.drop_chance) {
            FaultDecision::Drop
        } else if rng.chance(self.corrupt_chance) {
            FaultDecision::Corrupt
        } else {
            FaultDecision::Deliver
        }
    }

    /// Mutate one bit of `body`, deterministically for the given nonce
    /// (smoltcp corrupts exactly one octet). Empty bodies pass through.
    pub fn corrupt(&self, nonce: u64, body: &Bytes) -> Bytes {
        if body.is_empty() {
            return body.clone();
        }
        let mut rng = self.seed.derive_idx("corrupt", nonce).rng();
        let idx = rng.below(body.len());
        let bit = 1u8 << rng.below(8);
        let mut m = BytesMut::from(&body[..]);
        m[idx] ^= bit;
        m.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_injector_always_delivers() {
        let f = FaultInjector::perfect(Seed::new(1));
        assert!(!f.is_active());
        for nonce in 0..100 {
            assert_eq!(f.decide(nonce), FaultDecision::Deliver);
        }
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let f = FaultInjector::new(Seed::new(2), 0.3, 0.0);
        let drops = (0..10_000u64)
            .filter(|&n| f.decide(n) == FaultDecision::Drop)
            .count();
        assert!((2_500..3_500).contains(&drops), "{drops}");
    }

    #[test]
    fn corrupt_changes_exactly_one_bit() {
        let f = FaultInjector::new(Seed::new(3), 0.0, 1.0);
        let body = Bytes::from_static(b"hello, serp!");
        let mangled = f.corrupt(42, &body);
        assert_eq!(body.len(), mangled.len());
        let diff_bits: u32 = body
            .iter()
            .zip(mangled.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff_bits, 1);
    }

    #[test]
    fn corrupt_empty_body_is_noop() {
        let f = FaultInjector::new(Seed::new(4), 0.0, 1.0);
        assert!(f.corrupt(0, &Bytes::new()).is_empty());
    }

    #[test]
    fn decisions_are_pure_in_the_nonce() {
        let f = FaultInjector::new(Seed::new(5), 0.2, 0.2);
        for nonce in 0..50 {
            assert_eq!(f.decide(nonce), f.decide(nonce), "nonce {nonce}");
        }
        // Different nonces differ somewhere.
        let all: std::collections::HashSet<FaultDecision> = (0..200).map(|n| f.decide(n)).collect();
        assert!(all.len() > 1);
    }

    #[test]
    fn corruption_is_pure_in_the_nonce() {
        let f = FaultInjector::new(Seed::new(6), 0.0, 1.0);
        let body = Bytes::from_static(b"stable content here");
        assert_eq!(f.corrupt(9, &body), f.corrupt(9, &body));
        assert_ne!(f.corrupt(9, &body), f.corrupt(10, &body));
    }

    #[test]
    #[should_panic(expected = "drop_chance")]
    fn rejects_bad_probability() {
        FaultInjector::new(Seed::new(0), 1.5, 0.0);
    }
}
