//! Client-side egress shaping: a virtual-time token bucket.
//!
//! smoltcp's examples expose `--tx-rate-limit`/`--shaping-interval` to
//! throttle traffic; geoserp's equivalent lets an experiment cap how fast a
//! crawl machine may transmit — e.g. to prove that an *unshaped* single
//! machine trips the server-side rate limiter while a shaped one does not
//! (the decision that motivated the paper's 44-machine pool).

use crate::clock::SimInstant;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Token-bucket parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShaperConfig {
    /// Bucket capacity in tokens (burst size). One request costs one token.
    pub capacity: f64,
    /// Refill rate in tokens per second of virtual time.
    pub tokens_per_sec: f64,
}

impl ShaperConfig {
    /// A shaper allowing `rate` requests/second with a burst of `burst`.
    pub fn per_second(rate: f64, burst: u32) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!(burst >= 1, "burst must be at least 1");
        ShaperConfig {
            capacity: burst as f64,
            tokens_per_sec: rate,
        }
    }
}

/// A virtual-time token bucket. Thread-safe.
#[derive(Debug)]
pub struct TokenBucket {
    config: ShaperConfig,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill_ms: u64,
}

impl TokenBucket {
    /// A full bucket at t = 0.
    pub fn new(config: ShaperConfig) -> Self {
        assert!(config.capacity >= 1.0, "capacity must be >= 1");
        assert!(config.tokens_per_sec > 0.0, "refill rate must be positive");
        TokenBucket {
            config,
            state: Mutex::new(BucketState {
                tokens: config.capacity,
                last_refill_ms: 0,
            }),
        }
    }

    fn refill(&self, state: &mut BucketState, now: SimInstant) {
        let now_ms = now.millis();
        if now_ms > state.last_refill_ms {
            let dt_s = (now_ms - state.last_refill_ms) as f64 / 1_000.0;
            state.tokens =
                (state.tokens + dt_s * self.config.tokens_per_sec).min(self.config.capacity);
            state.last_refill_ms = now_ms;
        }
    }

    /// Try to spend one token at virtual time `now`.
    pub fn try_acquire(&self, now: SimInstant) -> bool {
        let mut state = self.state.lock();
        self.refill(&mut state, now);
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&self, now: SimInstant) -> f64 {
        let mut state = self.state.lock();
        self.refill(&mut state, now);
        state.tokens
    }

    /// Earliest virtual instant at which one token will be available.
    pub fn next_available(&self, now: SimInstant) -> SimInstant {
        let mut state = self.state.lock();
        self.refill(&mut state, now);
        if state.tokens >= 1.0 {
            return now;
        }
        let deficit = 1.0 - state.tokens;
        let wait_ms = (deficit / self.config.tokens_per_sec * 1_000.0).ceil() as u64;
        SimInstant(now.millis() + wait_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle() {
        let tb = TokenBucket::new(ShaperConfig::per_second(1.0, 3));
        let t0 = SimInstant(0);
        assert!(tb.try_acquire(t0));
        assert!(tb.try_acquire(t0));
        assert!(tb.try_acquire(t0));
        assert!(!tb.try_acquire(t0), "burst exhausted");
    }

    #[test]
    fn refills_over_virtual_time() {
        let tb = TokenBucket::new(ShaperConfig::per_second(2.0, 1));
        assert!(tb.try_acquire(SimInstant(0)));
        assert!(!tb.try_acquire(SimInstant(100)), "0.2 tokens refilled");
        assert!(tb.try_acquire(SimInstant(600)), ">1 token after 500ms+");
    }

    #[test]
    fn capacity_caps_refill() {
        let tb = TokenBucket::new(ShaperConfig::per_second(10.0, 2));
        // A very long idle period still leaves only `capacity` tokens.
        assert!((tb.available(SimInstant(3_600_000)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn next_available_is_exact() {
        let tb = TokenBucket::new(ShaperConfig::per_second(1.0, 1));
        let t0 = SimInstant(0);
        assert!(tb.try_acquire(t0));
        let next = tb.next_available(t0);
        assert_eq!(next.millis(), 1_000);
        assert!(!tb.try_acquire(SimInstant(999)));
        assert!(tb.try_acquire(next));
    }

    #[test]
    fn next_available_now_when_tokens_remain() {
        let tb = TokenBucket::new(ShaperConfig::per_second(1.0, 5));
        assert_eq!(tb.next_available(SimInstant(7)), SimInstant(7));
    }

    #[test]
    fn time_never_rewinds_the_bucket() {
        let tb = TokenBucket::new(ShaperConfig::per_second(1.0, 1));
        assert!(tb.try_acquire(SimInstant(5_000)));
        // An earlier timestamp must not mint tokens.
        assert!(!tb.try_acquire(SimInstant(0)));
        assert!(!tb.try_acquire(SimInstant(5_100)));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        ShaperConfig::per_second(0.0, 1);
    }
}
