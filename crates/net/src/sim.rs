//! The network simulator: routes requests from client IPs to registered
//! servers under DNS, latency, and fault models, logging every step.

use crate::clock::{SimInstant, VirtualClock};
use crate::dns::DnsResolver;
use crate::fault::{FaultDecision, FaultInjector};
use crate::http::{Request, Response};
use crate::server::{RequestCtx, Server};
use crate::shaper::{ShaperConfig, TokenBucket};
use crate::trace::{EventLog, NetEvent, NetEventKind};
use geoserp_geo::Seed;
use geoserp_obs::{Counter, Histogram, ObsHub};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Why a request failed at the network layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// DNS had no answer for the host.
    NoRoute(String),
    /// No server is listening at the resolved address.
    ConnectionRefused(Ipv4Addr),
    /// The fault injector ate the message.
    Dropped,
    /// The source's egress shaper has no tokens left right now.
    Shaped,
    /// The exchange exceeded the configured client timeout.
    TimedOut,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NoRoute(host) => write!(f, "no route to host {host}"),
            NetError::ConnectionRefused(ip) => write!(f, "connection refused at {ip}"),
            NetError::Dropped => write!(f, "request dropped"),
            NetError::Shaped => write!(f, "egress shaper throttled the request"),
            NetError::TimedOut => write!(f, "request timed out"),
        }
    }
}

impl std::error::Error for NetError {}

/// Pre-resolved metric handles for the simulator's hot path. Incrementing
/// is a single relaxed atomic op; the registry lock was paid once here.
#[derive(Debug)]
struct NetMetrics {
    requests: Counter,
    responses: Counter,
    rtt_ms: Histogram,
    dns_lookups: Counter,
    no_route: Counter,
    refused: Counter,
    dropped: Counter,
    corrupted: Counter,
    shaped: Counter,
    timeouts: Counter,
}

impl NetMetrics {
    fn resolve(hub: &ObsHub) -> Self {
        let m = hub.metrics();
        NetMetrics {
            requests: m.counter("net.requests"),
            responses: m.counter("net.responses"),
            rtt_ms: m.histogram("net.rtt_ms"),
            dns_lookups: m.counter("net.dns_lookups"),
            no_route: m.counter("net.no_route"),
            refused: m.counter("net.connection_refused"),
            dropped: m.counter("net.dropped"),
            corrupted: m.counter("net.corrupted"),
            shaped: m.counter("net.shaped"),
            timeouts: m.counter("net.timeouts"),
        }
    }
}

/// Latency model: deterministic per (src, dst) base delay plus bounded
/// per-request jitter, all derived from the simulator seed.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    seed: Seed,
    /// The base ms.
    pub base_ms: u64,
    /// The spread ms.
    pub spread_ms: u64,
}

impl LatencyModel {
    /// Round-trip time for one exchange, in milliseconds.
    pub fn rtt_ms(&self, src: Ipv4Addr, dst: Ipv4Addr, seq: u64) -> u64 {
        let path = self
            .seed
            .derive_idx("lat-src", u32::from_be_bytes(src.octets()) as u64)
            .derive_idx("lat-dst", u32::from_be_bytes(dst.octets()) as u64);
        let mut path_rng = path.rng();
        let path_extra = path_rng.below((self.spread_ms + 1) as usize) as u64;
        let mut jitter_rng = path.derive_idx("jitter", seq).rng();
        let jitter = jitter_rng.below((self.spread_ms / 2 + 1) as usize) as u64;
        self.base_ms + path_extra + jitter
    }
}

/// The deterministic network simulator. Share via [`Arc`].
pub struct SimNet {
    clock: VirtualClock,
    dns: DnsResolver,
    servers: RwLock<HashMap<Ipv4Addr, Arc<dyn Server>>>,
    latency: LatencyModel,
    faults: FaultInjector,
    log: EventLog,
    /// Per-source request counters: seq = src_ip << 32 | counter. Keying by
    /// source makes sequence numbers deterministic even when many client
    /// threads drive the network concurrently (each client is single-
    /// threaded), which is what keeps parallel crawls replayable.
    seq_per_src: Mutex<HashMap<Ipv4Addr, u32>>,
    /// Optional per-source egress shapers (smoltcp-style tx rate limits).
    egress: RwLock<HashMap<Ipv4Addr, TokenBucket>>,
    /// Optional client timeout: exchanges whose RTT exceeds it fail.
    timeout_ms: Mutex<Option<u64>>,
    /// Shared observability hub (metrics + spans) for this world.
    obs: Arc<ObsHub>,
    /// Handles resolved once from `obs` at construction.
    metrics: NetMetrics,
}

impl fmt::Debug for SimNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNet")
            .field("servers", &self.servers.read().len())
            .field("now", &self.clock.now())
            .finish()
    }
}

/// Configures and constructs a [`SimNet`].
///
/// Obtained from [`SimNet::builder`]. By default the network is perfect
/// (no faults) and reports into a fresh enabled [`ObsHub`].
#[must_use = "call .build() to construct the simulator"]
pub struct SimNetBuilder {
    seed: Seed,
    drop_chance: f64,
    corrupt_chance: f64,
    obs: Option<Arc<ObsHub>>,
}

impl SimNetBuilder {
    /// Enable smoltcp-style fault injection with the given per-message
    /// drop and corruption probabilities.
    pub fn faults(mut self, drop_chance: f64, corrupt_chance: f64) -> Self {
        self.drop_chance = drop_chance;
        self.corrupt_chance = corrupt_chance;
        self
    }

    /// Report into a caller-supplied observability hub (pass
    /// [`ObsHub::disabled`] for zero-cost metrics).
    pub fn obs(mut self, obs: Arc<ObsHub>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Build the simulator.
    pub fn build(self) -> SimNet {
        let SimNetBuilder {
            seed,
            drop_chance,
            corrupt_chance,
            obs,
        } = self;
        let obs = obs.unwrap_or_else(|| Arc::new(ObsHub::new()));
        let metrics = NetMetrics::resolve(&obs);
        SimNet {
            clock: VirtualClock::new(),
            dns: DnsResolver::new(),
            servers: RwLock::new(HashMap::new()),
            latency: LatencyModel {
                seed: seed.derive("latency"),
                base_ms: 40,
                spread_ms: 40,
            },
            faults: FaultInjector::new(seed.derive("faults"), drop_chance, corrupt_chance),
            log: EventLog::new(65_536),
            seq_per_src: Mutex::new(HashMap::new()),
            egress: RwLock::new(HashMap::new()),
            timeout_ms: Mutex::new(None),
            obs,
            metrics,
        }
    }
}

impl SimNet {
    /// Start building a simulator with default latency (40–80 ms RTT),
    /// no faults, and a fresh enabled [`ObsHub`]; override with
    /// [`SimNetBuilder::faults`] and [`SimNetBuilder::obs`].
    pub fn builder(seed: Seed) -> SimNetBuilder {
        SimNetBuilder {
            seed,
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            obs: None,
        }
    }

    /// The observability hub this world reports into.
    pub fn obs(&self) -> &Arc<ObsHub> {
        &self.obs
    }

    /// Install (or replace) an egress token bucket for one source address.
    pub fn set_egress_shaper(&self, src: Ipv4Addr, config: ShaperConfig) {
        self.egress.write().insert(src, TokenBucket::new(config));
    }

    /// Remove a source's egress shaper.
    pub fn clear_egress_shaper(&self, src: Ipv4Addr) {
        self.egress.write().remove(&src);
    }

    /// Set (or clear) the client-side exchange timeout in milliseconds.
    pub fn set_timeout_ms(&self, timeout: Option<u64>) {
        *self.timeout_ms.lock() = timeout;
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The DNS resolver (register records, pin datacenters).
    pub fn dns(&self) -> &DnsResolver {
        &self.dns
    }

    /// The event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The fault injector's `(drop_chance, corrupt_chance)` configuration —
    /// checkpoints record it so a resume can verify the rebuilt world runs
    /// under the same loss model.
    pub fn fault_rates(&self) -> (f64, f64) {
        (self.faults.drop_chance(), self.faults.corrupt_chance())
    }

    /// Snapshot of the per-source request counters, sorted by source
    /// address. Together with the virtual clock this *is* the simulator's
    /// stream position: fault decisions, latency, and every seeded noise
    /// draw downstream are pure functions of `(source, sequence, time)`, so
    /// restoring the cursor replays the exact same randomness.
    pub fn seq_cursor(&self) -> Vec<(Ipv4Addr, u32)> {
        let counters = self.seq_per_src.lock();
        let mut cursor: Vec<(Ipv4Addr, u32)> = counters.iter().map(|(&ip, &c)| (ip, c)).collect();
        cursor.sort_unstable_by_key(|(ip, _)| u32::from_be_bytes(ip.octets()));
        cursor
    }

    /// Restore per-source request counters from [`SimNet::seq_cursor`].
    /// Sources absent from the cursor are reset to zero (a fresh world has
    /// no counters at all, so a full overwrite is the faithful restore).
    pub fn restore_seq_cursor(&self, cursor: &[(Ipv4Addr, u32)]) {
        let mut counters = self.seq_per_src.lock();
        counters.clear();
        for &(ip, c) in cursor {
            counters.insert(ip, c);
        }
    }

    /// Attach a server at an address.
    pub fn register_server(&self, addr: Ipv4Addr, server: Arc<dyn Server>) {
        self.servers.write().insert(addr, server);
    }

    /// Register a named service: DNS record for `host` over `addrs`, same
    /// server object behind every address.
    pub fn register_service(&self, host: &str, addrs: &[Ipv4Addr], server: Arc<dyn Server>) {
        self.dns.register(host, addrs.to_vec());
        for &a in addrs {
            self.register_server(a, Arc::clone(&server));
        }
    }

    /// Issue one request from `src` to `req.host`.
    ///
    /// Returns the response and the virtual RTT. The global clock is *not*
    /// advanced (concurrent clients would race); the caller's scheduler owns
    /// time.
    pub fn request(&self, src: Ipv4Addr, req: &Request) -> Result<(Response, u64), NetError> {
        let now = self.clock.now();
        self.metrics.requests.inc();
        {
            let egress = self.egress.read();
            if let Some(bucket) = egress.get(&src) {
                if !bucket.try_acquire(now) {
                    self.metrics.shaped.inc();
                    return Err(NetError::Shaped);
                }
            }
        }
        self.metrics.dns_lookups.inc();
        let Some(dst) = self.dns.resolve(&req.host) else {
            self.metrics.no_route.inc();
            self.log.record(NetEvent {
                at: now,
                src,
                dst: None,
                kind: NetEventKind::NoRoute {
                    host: req.host.clone(),
                },
            });
            return Err(NetError::NoRoute(req.host.clone()));
        };

        let server = {
            let servers = self.servers.read();
            servers.get(&dst).cloned()
        };
        let Some(server) = server else {
            self.metrics.refused.inc();
            return Err(NetError::ConnectionRefused(dst));
        };

        let seq = {
            let mut counters = self.seq_per_src.lock();
            let c = counters.entry(src).or_insert(0);
            let seq = ((u32::from_be_bytes(src.octets()) as u64) << 32) | *c as u64;
            *c += 1;
            seq
        };

        // Fault decisions are pure in the per-source sequence number, so a
        // parallel crawl replays its losses exactly.
        match self.faults.decide(seq) {
            FaultDecision::Drop => {
                self.metrics.dropped.inc();
                self.log.record(NetEvent {
                    at: now,
                    src,
                    dst: Some(dst),
                    kind: NetEventKind::Dropped,
                });
                return Err(NetError::Dropped);
            }
            FaultDecision::Corrupt | FaultDecision::Deliver => {}
        }

        let rtt = self.latency.rtt_ms(src, dst, seq);
        self.log.record(NetEvent {
            at: now,
            src,
            dst: Some(dst),
            kind: NetEventKind::Request {
                host: req.host.clone(),
                target: req.target(),
            },
        });

        if let Some(limit) = *self.timeout_ms.lock() {
            if rtt > limit {
                self.metrics.timeouts.inc();
                self.log.record(NetEvent {
                    at: SimInstant(now.millis() + limit),
                    src,
                    dst: Some(dst),
                    kind: NetEventKind::TimedOut,
                });
                return Err(NetError::TimedOut);
            }
        }

        let ctx = RequestCtx {
            src,
            dst,
            at: now,
            seq,
        };
        let mut resp = server.handle(&ctx, req);

        // Corruption applies to the response body on the return path (an
        // independent decision from the request path, keyed off seq + 2^63).
        let resp_nonce = seq ^ (1 << 63);
        if self.faults.is_active() && self.faults.decide(resp_nonce) == FaultDecision::Corrupt {
            resp.body = self.faults.corrupt(resp_nonce, &resp.body);
            self.metrics.corrupted.inc();
            self.log.record(NetEvent {
                at: SimInstant(now.millis() + rtt),
                src,
                dst: Some(dst),
                kind: NetEventKind::Corrupted,
            });
        }

        self.metrics.responses.inc();
        self.metrics.rtt_ms.observe(rtt);
        self.log.record(NetEvent {
            at: SimInstant(now.millis() + rtt),
            src,
            dst: Some(dst),
            kind: NetEventKind::Response {
                status: resp.status.code(),
            },
        });
        Ok((resp, rtt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Status;
    use crate::ip;

    fn echo_server() -> Arc<dyn Server> {
        Arc::new(|ctx: &RequestCtx, req: &Request| {
            Response::ok(format!("{} {} {}", ctx.src, ctx.dst, req.target()))
        })
    }

    #[test]
    fn request_roundtrip() {
        let net = SimNet::builder(Seed::new(1)).build();
        net.register_service("svc.example", &[ip("10.1.0.1")], echo_server());
        let (resp, rtt) = net
            .request(ip("10.0.0.9"), &Request::get("svc.example", "/hi"))
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.body_text().contains("/hi"));
        assert!((40..=120).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn unknown_host_is_no_route() {
        let net = SimNet::builder(Seed::new(1)).build();
        let err = net
            .request(ip("10.0.0.9"), &Request::get("ghost.example", "/"))
            .unwrap_err();
        assert_eq!(err, NetError::NoRoute("ghost.example".into()));
        assert_eq!(
            net.log()
                .count_where(|e| matches!(e.kind, NetEventKind::NoRoute { .. })),
            1
        );
    }

    #[test]
    fn dangling_dns_is_connection_refused() {
        let net = SimNet::builder(Seed::new(1)).build();
        net.dns().register("svc.example", vec![ip("10.1.0.1")]);
        let err = net
            .request(ip("10.0.0.9"), &Request::get("svc.example", "/"))
            .unwrap_err();
        assert_eq!(err, NetError::ConnectionRefused(ip("10.1.0.1")));
    }

    #[test]
    fn rotation_spreads_over_datacenters_and_pin_fixes_it() {
        let net = SimNet::builder(Seed::new(1)).build();
        let dcs = [ip("10.1.0.1"), ip("10.1.0.2"), ip("10.1.0.3")];
        net.register_service(
            "svc.example",
            &dcs,
            Arc::new(|ctx: &RequestCtx, _: &Request| Response::ok(ctx.dst.to_string())),
        );
        let mut seen = std::collections::HashSet::new();
        for _ in 0..6 {
            let (resp, _) = net
                .request(ip("10.0.0.9"), &Request::get("svc.example", "/"))
                .unwrap();
            seen.insert(resp.body_text());
        }
        assert_eq!(seen.len(), 3, "rotation hits every datacenter");

        net.dns().pin("svc.example", dcs[1]);
        for _ in 0..5 {
            let (resp, _) = net
                .request(ip("10.0.0.9"), &Request::get("svc.example", "/"))
                .unwrap();
            assert_eq!(resp.body_text(), dcs[1].to_string());
        }
    }

    #[test]
    fn drops_surface_as_errors() {
        let net = SimNet::builder(Seed::new(2)).faults(1.0, 0.0).build();
        net.register_service("svc.example", &[ip("10.1.0.1")], echo_server());
        let err = net
            .request(ip("10.0.0.9"), &Request::get("svc.example", "/"))
            .unwrap_err();
        assert_eq!(err, NetError::Dropped);
    }

    #[test]
    fn corruption_mangles_but_delivers() {
        let net = SimNet::builder(Seed::new(3)).faults(0.0, 1.0).build();
        net.register_service(
            "svc.example",
            &[ip("10.1.0.1")],
            Arc::new(|_: &RequestCtx, _: &Request| Response::ok("pristine-body-content")),
        );
        let (resp, _) = net
            .request(ip("10.0.0.9"), &Request::get("svc.example", "/"))
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_ne!(resp.body_text(), "pristine-body-content");
    }

    #[test]
    fn latency_is_deterministic_per_sequence() {
        let mk = || {
            let net = SimNet::builder(Seed::new(7)).build();
            net.register_service("svc.example", &[ip("10.1.0.1")], echo_server());
            let mut rtts = Vec::new();
            for _ in 0..5 {
                let (_, rtt) = net
                    .request(ip("10.0.0.9"), &Request::get("svc.example", "/"))
                    .unwrap();
                rtts.push(rtt);
            }
            rtts
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn request_does_not_advance_clock() {
        let net = SimNet::builder(Seed::new(1)).build();
        net.register_service("svc.example", &[ip("10.1.0.1")], echo_server());
        net.request(ip("10.0.0.9"), &Request::get("svc.example", "/"))
            .unwrap();
        assert_eq!(net.clock().now().millis(), 0);
    }

    #[test]
    fn egress_shaper_throttles_then_recovers() {
        let net = SimNet::builder(Seed::new(9)).build();
        net.register_service("svc.example", &[ip("10.1.0.1")], echo_server());
        net.set_egress_shaper(
            ip("10.0.0.9"),
            crate::shaper::ShaperConfig::per_second(1.0, 2),
        );
        let req = Request::get("svc.example", "/");
        assert!(net.request(ip("10.0.0.9"), &req).is_ok());
        assert!(net.request(ip("10.0.0.9"), &req).is_ok());
        assert_eq!(
            net.request(ip("10.0.0.9"), &req).unwrap_err(),
            NetError::Shaped
        );
        // Another source is unaffected…
        assert!(net.request(ip("10.0.0.10"), &req).is_ok());
        // …and virtual time refills the bucket.
        net.clock().advance_ms(1_100);
        assert!(net.request(ip("10.0.0.9"), &req).is_ok());
        net.clear_egress_shaper(ip("10.0.0.9"));
        assert!(net.request(ip("10.0.0.9"), &req).is_ok());
        assert!(net.request(ip("10.0.0.9"), &req).is_ok());
    }

    #[test]
    fn timeout_fails_slow_exchanges() {
        let net = SimNet::builder(Seed::new(10)).build();
        net.register_service("svc.example", &[ip("10.1.0.1")], echo_server());
        // RTTs are 40–120 ms; a 1 ms deadline fails everything…
        net.set_timeout_ms(Some(1));
        assert_eq!(
            net.request(ip("10.0.0.9"), &Request::get("svc.example", "/"))
                .unwrap_err(),
            NetError::TimedOut
        );
        assert_eq!(
            net.log()
                .count_where(|e| matches!(e.kind, NetEventKind::TimedOut)),
            1
        );
        // …and a generous one passes.
        net.set_timeout_ms(Some(10_000));
        assert!(net
            .request(ip("10.0.0.9"), &Request::get("svc.example", "/"))
            .is_ok());
        net.set_timeout_ms(None);
    }

    #[test]
    fn seq_cursor_roundtrips_and_replays_the_stream() {
        // Two worlds, same seed. World A issues 5 requests, snapshots its
        // cursor; world B restores the cursor and must see the exact RTTs
        // (i.e. the same stream positions) world A sees next.
        let mk = || {
            let net = SimNet::builder(Seed::new(21)).build();
            net.register_service("svc.example", &[ip("10.1.0.1")], echo_server());
            net
        };
        let a = mk();
        let req = Request::get("svc.example", "/");
        for _ in 0..5 {
            a.request(ip("10.0.0.9"), &req).unwrap();
        }
        a.request(ip("10.0.0.10"), &req).unwrap();
        let cursor = a.seq_cursor();
        assert_eq!(cursor, vec![(ip("10.0.0.9"), 5), (ip("10.0.0.10"), 1)]);

        let b = mk();
        b.restore_seq_cursor(&cursor);
        for _ in 0..3 {
            let (_, rtt_a) = a.request(ip("10.0.0.9"), &req).unwrap();
            let (_, rtt_b) = b.request(ip("10.0.0.9"), &req).unwrap();
            assert_eq!(rtt_a, rtt_b, "restored cursor must replay the stream");
        }
    }

    #[test]
    fn restore_seq_cursor_overwrites_stale_counters() {
        let net = SimNet::builder(Seed::new(22)).build();
        net.register_service("svc.example", &[ip("10.1.0.1")], echo_server());
        net.request(ip("10.0.0.9"), &Request::get("svc.example", "/"))
            .unwrap();
        net.restore_seq_cursor(&[(ip("10.0.0.10"), 7)]);
        assert_eq!(net.seq_cursor(), vec![(ip("10.0.0.10"), 7)]);
    }

    #[test]
    fn fault_rates_are_exposed() {
        assert_eq!(
            SimNet::builder(Seed::new(1)).build().fault_rates(),
            (0.0, 0.0)
        );
        assert_eq!(
            SimNet::builder(Seed::new(1))
                .faults(0.25, 0.1)
                .build()
                .fault_rates(),
            (0.25, 0.1)
        );
    }

    #[test]
    fn metrics_count_exchanges_and_faults() {
        let net = SimNet::builder(Seed::new(2)).faults(1.0, 0.0).build();
        net.register_service("svc.example", &[ip("10.1.0.1")], echo_server());
        let req = Request::get("svc.example", "/");
        net.request(ip("10.0.0.9"), &req).unwrap_err(); // dropped
        net.request(ip("10.0.0.9"), &Request::get("ghost.example", "/"))
            .unwrap_err(); // no route
        let snap = net.obs().snapshot();
        assert_eq!(snap.counters.get("net.requests"), Some(&2));
        assert_eq!(snap.counters.get("net.dropped"), Some(&1));
        assert_eq!(snap.counters.get("net.no_route"), Some(&1));
        assert_eq!(snap.counters.get("net.dns_lookups"), Some(&2));
        assert_eq!(snap.counters.get("net.responses"), Some(&0));

        let ok = SimNet::builder(Seed::new(3)).build();
        ok.register_service("svc.example", &[ip("10.1.0.1")], echo_server());
        for _ in 0..4 {
            ok.request(ip("10.0.0.9"), &req).unwrap();
        }
        let snap = ok.obs().snapshot();
        assert_eq!(snap.counters.get("net.responses"), Some(&4));
        let rtt = snap.histograms.get("net.rtt_ms").unwrap();
        assert_eq!(rtt.count, 4);
        assert!(rtt.min >= 40 && rtt.max <= 120, "{rtt:?}");
    }

    #[test]
    fn request_context_sequence_is_per_source_and_increments() {
        let net = SimNet::builder(Seed::new(1)).build();
        net.register_service(
            "svc.example",
            &[ip("10.1.0.1")],
            Arc::new(|ctx: &RequestCtx, _: &Request| Response::ok(ctx.seq.to_string())),
        );
        let fetch = |src: &str| -> u64 {
            net.request(ip(src), &Request::get("svc.example", "/"))
                .unwrap()
                .0
                .body_text()
                .parse()
                .unwrap()
        };
        let a0 = fetch("10.0.0.9");
        let a1 = fetch("10.0.0.9");
        let b0 = fetch("10.0.0.10");
        // Same source: counter increments. Different source: independent
        // stream with a distinct high half.
        assert_eq!(a1, a0 + 1);
        assert_ne!(b0 >> 32, a0 >> 32);
        assert_eq!(b0 & 0xffff_ffff, 0);
    }
}
