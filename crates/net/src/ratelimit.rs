//! Server-side rate limiting.
//!
//! Google throttles clients that query too aggressively; §2.2 of the paper
//! works around this by spreading load "over 44 machines in a single /24
//! subnet". The simulated limiter supports both keying disciplines —
//! per-exact-IP (what made the machine pool effective) and per-/24 (what
//! would have defeated it) — so the crawler's design choice is testable.

use crate::clock::SimInstant;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

/// What a limiter keys its windows by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RateLimitKey {
    /// One window per source IP (real-world per-client limiting).
    PerIp,
    /// One window per source /24 (aggregate limiting; defeats the paper's
    /// machine-pool strategy — used by the ablation benches).
    PerSubnet24,
}

/// Sliding-window request limiter.
#[derive(Debug)]
pub struct RateLimiter {
    key: RateLimitKey,
    max_requests: usize,
    window_ms: u64,
    windows: Mutex<HashMap<u32, VecDeque<u64>>>,
}

impl RateLimiter {
    /// Allow at most `max_requests` per `window_ms` for each key.
    pub fn new(key: RateLimitKey, max_requests: usize, window_ms: u64) -> Self {
        assert!(max_requests > 0, "max_requests must be positive");
        assert!(window_ms > 0, "window must be positive");
        RateLimiter {
            key,
            max_requests,
            window_ms,
            windows: Mutex::new(HashMap::new()),
        }
    }

    fn key_of(&self, src: Ipv4Addr) -> u32 {
        let o = src.octets();
        match self.key {
            RateLimitKey::PerIp => u32::from_be_bytes(o),
            RateLimitKey::PerSubnet24 => u32::from_be_bytes([o[0], o[1], o[2], 0]),
        }
    }

    /// Record a request at virtual time `now`; returns `true` if it is
    /// admitted, `false` if the source must be throttled (HTTP 429).
    pub fn admit(&self, src: Ipv4Addr, now: SimInstant) -> bool {
        let key = self.key_of(src);
        let mut windows = self.windows.lock();
        let q = windows.entry(key).or_default();
        // An event at time t occupies the window while t + window_ms > now.
        while q
            .front()
            .is_some_and(|&t| t + self.window_ms <= now.millis())
        {
            q.pop_front();
        }
        if q.len() >= self.max_requests {
            return false;
        }
        q.push_back(now.millis());
        true
    }

    /// Number of in-window requests currently charged to `src`.
    pub fn load(&self, src: Ipv4Addr, now: SimInstant) -> usize {
        let key = self.key_of(src);
        let windows = self.windows.lock();
        windows
            .get(&key)
            .map(|q| {
                q.iter()
                    .filter(|&&t| t + self.window_ms > now.millis())
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip;

    #[test]
    fn admits_up_to_limit_then_throttles() {
        let rl = RateLimiter::new(RateLimitKey::PerIp, 3, 1_000);
        let src = ip("10.0.0.1");
        let t = SimInstant(0);
        assert!(rl.admit(src, t));
        assert!(rl.admit(src, t));
        assert!(rl.admit(src, t));
        assert!(!rl.admit(src, t));
        assert_eq!(rl.load(src, t), 3);
    }

    #[test]
    fn window_slides() {
        let rl = RateLimiter::new(RateLimitKey::PerIp, 1, 1_000);
        let src = ip("10.0.0.1");
        assert!(rl.admit(src, SimInstant(0)));
        assert!(!rl.admit(src, SimInstant(500)));
        assert!(rl.admit(src, SimInstant(1_001)));
    }

    #[test]
    fn per_ip_keys_are_independent() {
        let rl = RateLimiter::new(RateLimitKey::PerIp, 1, 1_000);
        assert!(rl.admit(ip("10.0.0.1"), SimInstant(0)));
        assert!(
            rl.admit(ip("10.0.0.2"), SimInstant(0)),
            "distinct IP not throttled"
        );
    }

    #[test]
    fn per_subnet_aggregates_the_pool() {
        // The paper's 44-machines-in-a-/24 strategy works against PerIp but
        // not against PerSubnet24.
        let rl = RateLimiter::new(RateLimitKey::PerSubnet24, 2, 1_000);
        assert!(rl.admit(ip("192.0.2.1"), SimInstant(0)));
        assert!(rl.admit(ip("192.0.2.2"), SimInstant(0)));
        assert!(
            !rl.admit(ip("192.0.2.3"), SimInstant(0)),
            "same /24 shares the window"
        );
        assert!(
            rl.admit(ip("192.0.3.1"), SimInstant(0)),
            "other /24 unaffected"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_limit() {
        RateLimiter::new(RateLimitKey::PerIp, 0, 1_000);
    }
}
