//! Server-side rate limiting.
//!
//! Google throttles clients that query too aggressively; §2.2 of the paper
//! works around this by spreading load "over 44 machines in a single /24
//! subnet". The simulated limiter supports both keying disciplines —
//! per-exact-IP (what made the machine pool effective) and per-/24 (what
//! would have defeated it) — so the crawler's design choice is testable.

use crate::clock::SimInstant;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

/// What a limiter keys its windows by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RateLimitKey {
    /// One window per source IP (real-world per-client limiting).
    PerIp,
    /// One window per source /24 (aggregate limiting; defeats the paper's
    /// machine-pool strategy — used by the ablation benches).
    PerSubnet24,
}

/// Sliding-window request limiter.
#[derive(Debug)]
pub struct RateLimiter {
    key: RateLimitKey,
    max_requests: usize,
    window_ms: u64,
    windows: Mutex<HashMap<u32, VecDeque<u64>>>,
    /// `admit` calls until the next full sweep of expired windows.
    sweep_countdown: Mutex<usize>,
}

/// Every this many `admit` calls, drop map entries whose window emptied.
/// Without the sweep the map holds one entry per source *forever* — a
/// long-lived server scanning many one-shot clients leaks an entry (key +
/// empty deque) per client address.
const SWEEP_EVERY: usize = 1024;

impl RateLimiter {
    /// Allow at most `max_requests` per `window_ms` for each key.
    pub fn new(key: RateLimitKey, max_requests: usize, window_ms: u64) -> Self {
        assert!(max_requests > 0, "max_requests must be positive");
        assert!(window_ms > 0, "window must be positive");
        RateLimiter {
            key,
            max_requests,
            window_ms,
            windows: Mutex::new(HashMap::new()),
            sweep_countdown: Mutex::new(SWEEP_EVERY),
        }
    }

    fn key_of(&self, src: Ipv4Addr) -> u32 {
        let o = src.octets();
        match self.key {
            RateLimitKey::PerIp => u32::from_be_bytes(o),
            RateLimitKey::PerSubnet24 => u32::from_be_bytes([o[0], o[1], o[2], 0]),
        }
    }

    /// Record a request at virtual time `now`; returns `true` if it is
    /// admitted, `false` if the source must be throttled (HTTP 429).
    ///
    /// Amortized O(1): each call prunes only its own key's window, and one
    /// call in [`SWEEP_EVERY`] additionally evicts every map entry whose
    /// window has fully expired, so tracked state is bounded by the set of
    /// *recently active* sources rather than every source ever seen.
    pub fn admit(&self, src: Ipv4Addr, now: SimInstant) -> bool {
        let key = self.key_of(src);
        let mut windows = self.windows.lock();
        self.maybe_sweep(&mut windows, now);
        let q = windows.entry(key).or_default();
        // An event at time t occupies the window while t + window_ms > now.
        while q
            .front()
            .is_some_and(|&t| t + self.window_ms <= now.millis())
        {
            q.pop_front();
        }
        if q.len() >= self.max_requests {
            return false;
        }
        q.push_back(now.millis());
        true
    }

    fn maybe_sweep(&self, windows: &mut HashMap<u32, VecDeque<u64>>, now: SimInstant) {
        let mut countdown = self.sweep_countdown.lock();
        *countdown -= 1;
        if *countdown > 0 {
            return;
        }
        *countdown = SWEEP_EVERY;
        windows.retain(|_, q| q.back().is_some_and(|&t| t + self.window_ms > now.millis()));
        windows.shrink_to_fit();
    }

    /// Number of sources (keys) currently tracked, including ones whose
    /// window has expired but has not been swept yet. Observability for
    /// the leak regression test and `/metrics`-style introspection.
    pub fn tracked_keys(&self) -> usize {
        self.windows.lock().len()
    }

    /// Number of in-window requests currently charged to `src`.
    pub fn load(&self, src: Ipv4Addr, now: SimInstant) -> usize {
        let key = self.key_of(src);
        let windows = self.windows.lock();
        windows
            .get(&key)
            .map(|q| {
                q.iter()
                    .filter(|&&t| t + self.window_ms > now.millis())
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip;

    #[test]
    fn admits_up_to_limit_then_throttles() {
        let rl = RateLimiter::new(RateLimitKey::PerIp, 3, 1_000);
        let src = ip("10.0.0.1");
        let t = SimInstant(0);
        assert!(rl.admit(src, t));
        assert!(rl.admit(src, t));
        assert!(rl.admit(src, t));
        assert!(!rl.admit(src, t));
        assert_eq!(rl.load(src, t), 3);
    }

    #[test]
    fn window_slides() {
        let rl = RateLimiter::new(RateLimitKey::PerIp, 1, 1_000);
        let src = ip("10.0.0.1");
        assert!(rl.admit(src, SimInstant(0)));
        assert!(!rl.admit(src, SimInstant(500)));
        assert!(rl.admit(src, SimInstant(1_001)));
    }

    #[test]
    fn per_ip_keys_are_independent() {
        let rl = RateLimiter::new(RateLimitKey::PerIp, 1, 1_000);
        assert!(rl.admit(ip("10.0.0.1"), SimInstant(0)));
        assert!(
            rl.admit(ip("10.0.0.2"), SimInstant(0)),
            "distinct IP not throttled"
        );
    }

    #[test]
    fn per_subnet_aggregates_the_pool() {
        // The paper's 44-machines-in-a-/24 strategy works against PerIp but
        // not against PerSubnet24.
        let rl = RateLimiter::new(RateLimitKey::PerSubnet24, 2, 1_000);
        assert!(rl.admit(ip("192.0.2.1"), SimInstant(0)));
        assert!(rl.admit(ip("192.0.2.2"), SimInstant(0)));
        assert!(
            !rl.admit(ip("192.0.2.3"), SimInstant(0)),
            "same /24 shares the window"
        );
        assert!(
            rl.admit(ip("192.0.3.1"), SimInstant(0)),
            "other /24 unaffected"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_limit() {
        RateLimiter::new(RateLimitKey::PerIp, 0, 1_000);
    }

    #[test]
    fn expired_windows_are_evicted_not_leaked() {
        let rl = RateLimiter::new(RateLimitKey::PerIp, 10, 1_000);
        // A scan: more one-shot sources than one sweep interval, each seen
        // exactly once at t=0.
        let n = SWEEP_EVERY * 2;
        for i in 0..n {
            let octets = ((10 << 24) | i as u32).to_be_bytes();
            assert!(rl.admit(Ipv4Addr::from(octets), SimInstant(0)));
        }
        assert!(rl.tracked_keys() >= n - 1, "all scanners tracked in-window");
        // Long after every window expired, fresh traffic from one source
        // must shrink the map back down instead of growing it forever.
        let src = ip("192.0.2.7");
        for t in 0..SWEEP_EVERY as u64 {
            rl.admit(src, SimInstant(1_000_000 + t));
        }
        assert!(
            rl.tracked_keys() <= 2,
            "expired windows still tracked: {} keys",
            rl.tracked_keys()
        );
    }
}
