//! HTTP/1.1 wire codec: serialize/parse the simulator's [`Request`] /
//! [`Response`] message types to and from bytes.
//!
//! The sim transport ([`crate::SimNet`]) passes structured messages
//! in-process; the socket transport (`geoserp-serve`) speaks real HTTP/1.1
//! over TCP. Both ends share this codec, which is what makes the serving
//! determinism contract checkable: a request that round-trips through
//! `encode_request` → `parse_request` is *equal* to the original, so the
//! served engine sees exactly the structured request the sim path would.
//!
//! Framing rules (deliberately strict — this is a codec for one search
//! service, not a general HTTP stack):
//!
//! * `Host` and `Content-Length` are **framing** headers: the encoder emits
//!   them from [`Request::host`] / body length, and the parser strips them
//!   back out. Application headers never contain them.
//! * Bodies are framed by `Content-Length` only (no chunked encoding).
//! * Query strings reuse the urlencoding from [`Request::target`], which
//!   escapes `&` and `=` — arbitrary parameter keys/values round-trip.
//! * Everything a peer can get wrong (truncation, oversized heads, unknown
//!   methods, bad header bytes) is a typed [`WireError`], never a panic.

use crate::http::{urldecode, Method, Request, Response, Status};
use bytes::Bytes;
use std::fmt;

/// Header carrying a distributed-tracing context between serve-tier
/// processes (router → shard replica). The value is the deterministic
/// codec of `geoserp_obs::trace::TraceContext::encode`:
/// `{trace:016x}-{parent_span:016x}-{base_ms:x}` — token bytes only, so
/// it passes [`encode_request`]'s header validation unchanged. The codec
/// itself treats this as an ordinary application header; reserving the
/// name here keeps every propagation site in the workspace on one
/// spelling.
pub const TRACE_HEADER: &str = "X-Geoserp-Trace";

/// Hard bounds a parser enforces on incoming messages.
///
/// The struct is `#[non_exhaustive]`: build it with [`WireLimits::new`] /
/// `Default` and adjust with the fluent setters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct WireLimits {
    /// Maximum bytes of request/status line plus headers (the "head").
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` a peer may declare.
    pub max_body_bytes: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
}

impl WireLimits {
    /// The defaults: 16 KiB head, 1 MiB body, 64 headers.
    pub fn new() -> Self {
        WireLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
            max_headers: 64,
        }
    }

    /// Set the maximum head size in bytes.
    pub fn max_head_bytes(mut self, n: usize) -> Self {
        self.max_head_bytes = n;
        self
    }

    /// Set the maximum declared body size in bytes.
    pub fn max_body_bytes(mut self, n: usize) -> Self {
        self.max_body_bytes = n;
        self
    }

    /// Set the maximum header count.
    pub fn max_headers(mut self, n: usize) -> Self {
        self.max_headers = n;
        self
    }
}

impl Default for WireLimits {
    fn default() -> Self {
        WireLimits::new()
    }
}

/// Why a message could not be encoded or parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The head (request/status line + headers) exceeds the size limit.
    HeadTooLarge {
        /// The limit in force, bytes.
        limit: usize,
    },
    /// The declared `Content-Length` exceeds the body size limit.
    BodyTooLarge {
        /// The declared length.
        declared: usize,
        /// The limit in force, bytes.
        limit: usize,
    },
    /// More header lines than the limit allows.
    TooManyHeaders {
        /// The limit in force.
        limit: usize,
    },
    /// The request/status line is not `METHOD target HTTP/1.1` /
    /// `HTTP/1.1 code reason`.
    BadStartLine,
    /// The method token is not one this codec speaks.
    UnknownMethod(String),
    /// The status code is not one this codec speaks.
    UnknownStatus(u16),
    /// A header line has no `:`, an empty name, or an illegal byte in its
    /// name or value (CR/LF/NUL; names must be HTTP token characters).
    BadHeader(String),
    /// A request head carries no `Host` header.
    MissingHost,
    /// `Content-Length` is not a decimal integer.
    BadContentLength(String),
    /// An outgoing message uses a reserved framing header (`Host`,
    /// `Content-Length`) as an application header.
    ReservedHeader(String),
    /// An outgoing request's path cannot be framed (empty, no leading `/`,
    /// or contains whitespace/`?`/control bytes).
    BadPath(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::HeadTooLarge { limit } => {
                write!(f, "message head exceeds {limit} bytes")
            }
            WireError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds {limit}")
            }
            WireError::TooManyHeaders { limit } => {
                write!(f, "more than {limit} headers")
            }
            WireError::BadStartLine => f.write_str("malformed start line"),
            WireError::UnknownMethod(m) => write!(f, "unknown method {m:?}"),
            WireError::UnknownStatus(c) => write!(f, "unknown status code {c}"),
            WireError::BadHeader(h) => write!(f, "malformed header {h:?}"),
            WireError::MissingHost => f.write_str("request has no Host header"),
            WireError::BadContentLength(v) => {
                write!(f, "bad Content-Length {v:?}")
            }
            WireError::ReservedHeader(h) => {
                write!(f, "{h:?} is a framing header; set host/body instead")
            }
            WireError::BadPath(p) => write!(f, "path {p:?} cannot be framed"),
        }
    }
}

impl std::error::Error for WireError {}

/// Reason phrase for the status line.
fn reason(status: Status) -> &'static str {
    match status {
        Status::Ok => "OK",
        Status::BadRequest => "Bad Request",
        Status::NotFound => "Not Found",
        Status::TooManyRequests => "Too Many Requests",
        Status::InternalError => "Internal Server Error",
        Status::ServiceUnavailable => "Service Unavailable",
    }
}

/// Status for a wire code, if it is one the [`Status`] enum carries.
fn status_from_code(code: u16) -> Option<Status> {
    match code {
        200 => Some(Status::Ok),
        400 => Some(Status::BadRequest),
        404 => Some(Status::NotFound),
        429 => Some(Status::TooManyRequests),
        500 => Some(Status::InternalError),
        503 => Some(Status::ServiceUnavailable),
        _ => None,
    }
}

/// True for bytes legal in an HTTP header-name token.
fn is_token_byte(b: u8) -> bool {
    matches!(b,
        b'!' | b'#' | b'$' | b'%' | b'&' | b'\'' | b'*' | b'+' | b'-' | b'.'
        | b'^' | b'_' | b'`' | b'|' | b'~'
        | b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z')
}

/// Validate one application header for encoding. Values may hold any byte
/// except CR/LF/NUL, and no leading/trailing blanks (the parser trims them,
/// which would break the round-trip).
fn check_header(name: &str, value: &str) -> Result<(), WireError> {
    if name.is_empty() || !name.bytes().all(is_token_byte) {
        return Err(WireError::BadHeader(name.to_string()));
    }
    if name.eq_ignore_ascii_case("host") || name.eq_ignore_ascii_case("content-length") {
        return Err(WireError::ReservedHeader(name.to_string()));
    }
    if value.bytes().any(|b| matches!(b, b'\r' | b'\n' | 0))
        || value.starts_with([' ', '\t'])
        || value.ends_with([' ', '\t'])
    {
        return Err(WireError::BadHeader(format!("{name}: {value}")));
    }
    Ok(())
}

/// Serialize a request to HTTP/1.1 bytes.
///
/// # Errors
/// Rejects requests that would not round-trip: unframeable paths, reserved
/// or malformed headers (see [`WireError`]).
pub fn encode_request(req: &Request) -> Result<Vec<u8>, WireError> {
    if req.path.is_empty()
        || !req.path.starts_with('/')
        || req
            .path
            .bytes()
            .any(|b| b <= b' ' || b == b'?' || b == 0x7f)
    {
        return Err(WireError::BadPath(req.path.clone()));
    }
    if req.host.is_empty() || req.host.bytes().any(|b| b <= b' ' || b == 0x7f) {
        return Err(WireError::BadHeader(format!("Host: {}", req.host)));
    }
    for (name, value) in &req.headers {
        check_header(name, value)?;
    }
    let mut out = Vec::with_capacity(256 + req.body.len());
    out.extend_from_slice(format!("{} {} HTTP/1.1\r\n", req.method, req.target()).as_bytes());
    out.extend_from_slice(format!("Host: {}\r\n", req.host).as_bytes());
    for (name, value) in &req.headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", req.body.len()).as_bytes());
    out.extend_from_slice(&req.body);
    Ok(out)
}

/// Serialize a response to HTTP/1.1 bytes.
///
/// # Errors
/// Rejects responses with reserved or malformed headers.
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, WireError> {
    for (name, value) in &resp.headers {
        check_header(name, value)?;
    }
    let mut out = Vec::with_capacity(128 + resp.body.len());
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {} {}\r\n",
            resp.status.code(),
            reason(resp.status)
        )
        .as_bytes(),
    );
    for (name, value) in &resp.headers {
        out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", resp.body.len()).as_bytes());
    out.extend_from_slice(&resp.body);
    Ok(out)
}

/// The parsed head of a message: start line, headers, body framing.
struct Head<'a> {
    start_line: &'a str,
    /// Application headers, in wire order, minus the framing headers.
    headers: Vec<(String, String)>,
    /// From `Host` (requests only).
    host: Option<String>,
    /// From `Content-Length` (0 when absent).
    content_length: usize,
    /// Offset of the first body byte.
    body_start: usize,
}

/// Find and parse the head, or report that more bytes are needed (`None`).
fn parse_head<'a>(buf: &'a [u8], limits: &WireLimits) -> Result<Option<Head<'a>>, WireError> {
    let search_window = buf.len().min(limits.max_head_bytes + 4);
    let head_end = buf[..search_window]
        .windows(4)
        .position(|w| w == b"\r\n\r\n");
    let Some(head_end) = head_end else {
        if buf.len() > limits.max_head_bytes {
            return Err(WireError::HeadTooLarge {
                limit: limits.max_head_bytes,
            });
        }
        return Ok(None); // need more bytes
    };
    if head_end > limits.max_head_bytes {
        return Err(WireError::HeadTooLarge {
            limit: limits.max_head_bytes,
        });
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| WireError::BadHeader("non-UTF-8 head".to_string()))?;
    let mut lines = head.split("\r\n");
    let start_line = lines.next().ok_or(WireError::BadStartLine)?;
    let mut headers = Vec::new();
    let mut host = None;
    let mut content_length = 0usize;
    let mut count = 0usize;
    for line in lines {
        count += 1;
        if count > limits.max_headers {
            return Err(WireError::TooManyHeaders {
                limit: limits.max_headers,
            });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(WireError::BadHeader(line.to_string()));
        };
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(WireError::BadHeader(line.to_string()));
        }
        let value = value.trim_matches([' ', '\t']);
        if name.eq_ignore_ascii_case("host") {
            host = Some(value.to_string());
        } else if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| WireError::BadContentLength(value.to_string()))?;
            if content_length > limits.max_body_bytes {
                return Err(WireError::BodyTooLarge {
                    declared: content_length,
                    limit: limits.max_body_bytes,
                });
            }
        } else {
            headers.push((name.to_string(), value.to_string()));
        }
    }
    Ok(Some(Head {
        start_line,
        headers,
        host,
        content_length,
        body_start: head_end + 4,
    }))
}

/// Parse one request from the front of `buf`.
///
/// Returns `Ok(None)` when `buf` holds a valid but incomplete message
/// (read more bytes and retry), or `Ok(Some((request, consumed)))` where
/// `consumed` is the number of bytes the message occupied — a keep-alive
/// connection parses the next request starting there.
///
/// # Errors
/// Any malformed or over-limit input is a typed [`WireError`]; hostile
/// bytes can never panic this parser.
pub fn parse_request(
    buf: &[u8],
    limits: &WireLimits,
) -> Result<Option<(Request, usize)>, WireError> {
    let Some(head) = parse_head(buf, limits)? else {
        return Ok(None);
    };
    let mut parts = head.start_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(WireError::BadStartLine);
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => return Err(WireError::UnknownMethod(other.to_string())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(WireError::BadStartLine);
    }
    let (path, query) = match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, qs)) => {
            let query = qs
                .split('&')
                .filter(|pair| !pair.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (urldecode(k), urldecode(v)),
                    None => (urldecode(pair), String::new()),
                })
                .collect();
            (path.to_string(), query)
        }
    };
    if path.is_empty() || !path.starts_with('/') {
        return Err(WireError::BadStartLine);
    }
    let host = head.host.ok_or(WireError::MissingHost)?;
    let total = head.body_start + head.content_length;
    if buf.len() < total {
        return Ok(None); // body still in flight
    }
    let req = Request {
        method,
        host,
        path,
        query,
        headers: head.headers,
        body: Bytes::copy_from_slice(&buf[head.body_start..total]),
    };
    Ok(Some((req, total)))
}

/// Parse one response from the front of `buf`. Same contract as
/// [`parse_request`] (`Ok(None)` = incomplete, `consumed` = message bytes).
///
/// # Errors
/// Any malformed or over-limit input is a typed [`WireError`].
pub fn parse_response(
    buf: &[u8],
    limits: &WireLimits,
) -> Result<Option<(Response, usize)>, WireError> {
    let Some(head) = parse_head(buf, limits)? else {
        return Ok(None);
    };
    let mut parts = head.start_line.splitn(3, ' ');
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(WireError::BadStartLine);
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(WireError::BadStartLine);
    }
    let code: u16 = code.parse().map_err(|_| WireError::BadStartLine)?;
    let status = status_from_code(code).ok_or(WireError::UnknownStatus(code))?;
    let total = head.body_start + head.content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let resp = Response {
        status,
        headers: head.headers,
        body: Bytes::copy_from_slice(&buf[head.body_start..total]),
    };
    Ok(Some((resp, total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> WireLimits {
        WireLimits::default()
    }

    fn search_request() -> Request {
        Request::get("search.example.com", "/search")
            .with_query("q", "coffee shop")
            .with_query("start", "12")
            .with_header("User-Agent", "Mozilla/5.0 (iPhone; Safari 8)")
            .with_header("X-Geolocation", "41.499300,-81.694400")
            .with_header("Cookie", "sid=abc123")
    }

    #[test]
    fn request_roundtrips_exactly() {
        let req = search_request();
        let bytes = encode_request(&req).unwrap();
        let (back, consumed) = parse_request(&bytes, &limits()).unwrap().unwrap();
        assert_eq!(back, req);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn request_wire_form_is_http11() {
        let bytes = encode_request(&search_request()).unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(
            text.starts_with("GET /search?q=coffee+shop&start=12 HTTP/1.1\r\n"),
            "{text}"
        );
        assert!(text.contains("\r\nHost: search.example.com\r\n"));
        assert!(text.contains("\r\nContent-Length: 0\r\n\r\n"));
    }

    #[test]
    fn response_roundtrips_exactly() {
        let resp = Response::ok("<html>serp</html>")
            .with_header("Content-Type", "text/x-serp")
            .with_header("X-Datacenter", "dc1");
        let bytes = encode_response(&resp).unwrap();
        let (back, consumed) = parse_response(&bytes, &limits()).unwrap().unwrap();
        assert_eq!(back, resp);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn every_status_roundtrips() {
        for status in [
            Status::Ok,
            Status::BadRequest,
            Status::NotFound,
            Status::TooManyRequests,
            Status::InternalError,
            Status::ServiceUnavailable,
        ] {
            let resp = Response::status(status);
            let bytes = encode_response(&resp).unwrap();
            let (back, _) = parse_response(&bytes, &limits()).unwrap().unwrap();
            assert_eq!(back.status, status);
        }
    }

    #[test]
    fn query_strings_with_hostile_values_roundtrip() {
        let req = Request::get("h.example", "/p")
            .with_query("a&b=c", "d=e&f")
            .with_query("", "empty key")
            .with_query("sp ace", "%41 already encoded");
        let bytes = encode_request(&req).unwrap();
        let (back, _) = parse_request(&bytes, &limits()).unwrap().unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn truncation_returns_incomplete_never_error() {
        let bytes = encode_request(&search_request()).unwrap();
        for cut in 0..bytes.len() {
            match parse_request(&bytes[..cut], &limits()) {
                Ok(None) => {}
                other => panic!("cut at {cut}: expected Ok(None), got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_body_is_incomplete() {
        let mut req = search_request();
        req.body = Bytes::from_static(b"0123456789");
        let bytes = encode_request(&req).unwrap();
        assert!(parse_request(&bytes[..bytes.len() - 1], &limits())
            .unwrap()
            .is_none());
        let (back, _) = parse_request(&bytes, &limits()).unwrap().unwrap();
        assert_eq!(back.body, req.body);
    }

    #[test]
    fn keep_alive_pipelining_consumes_exact_lengths() {
        let a = encode_request(&search_request()).unwrap();
        let b = encode_request(&Request::get("h.example", "/healthz")).unwrap();
        let mut wire = a.clone();
        wire.extend_from_slice(&b);
        let (first, used) = parse_request(&wire, &limits()).unwrap().unwrap();
        assert_eq!(used, a.len());
        assert_eq!(first.path, "/search");
        let (second, used2) = parse_request(&wire[used..], &limits()).unwrap().unwrap();
        assert_eq!(used2, b.len());
        assert_eq!(second.path, "/healthz");
    }

    #[test]
    fn unknown_method_is_rejected() {
        let wire = b"BREW /pot HTTP/1.1\r\nHost: h\r\n\r\n";
        assert_eq!(
            parse_request(wire, &limits()),
            Err(WireError::UnknownMethod("BREW".to_string()))
        );
    }

    #[test]
    fn missing_host_is_rejected() {
        let wire = b"GET / HTTP/1.1\r\nX-A: b\r\n\r\n";
        assert_eq!(parse_request(wire, &limits()), Err(WireError::MissingHost));
    }

    #[test]
    fn bad_version_and_start_lines_are_rejected() {
        for wire in [
            &b"GET / HTTP/2\r\nHost: h\r\n\r\n"[..],
            &b"GET /\r\nHost: h\r\n\r\n"[..],
            &b"GET / HTTP/1.1 extra\r\nHost: h\r\n\r\n"[..],
            &b"\r\nHost: h\r\n\r\n"[..],
        ] {
            assert!(
                matches!(
                    parse_request(wire, &limits()),
                    Err(WireError::BadStartLine) | Err(WireError::UnknownMethod(_))
                ),
                "{:?}",
                String::from_utf8_lossy(wire)
            );
        }
    }

    #[test]
    fn oversized_head_is_rejected_even_without_terminator() {
        let small = WireLimits::new().max_head_bytes(64);
        let wire = vec![b'A'; 100];
        assert_eq!(
            parse_request(&wire, &small),
            Err(WireError::HeadTooLarge { limit: 64 })
        );
    }

    #[test]
    fn oversized_declared_body_is_rejected() {
        let small = WireLimits::new().max_body_bytes(10);
        let wire = b"GET / HTTP/1.1\r\nHost: h\r\nContent-Length: 11\r\n\r\n";
        assert_eq!(
            parse_request(wire, &small),
            Err(WireError::BodyTooLarge {
                declared: 11,
                limit: 10
            })
        );
    }

    #[test]
    fn bad_content_length_is_rejected() {
        let wire = b"GET / HTTP/1.1\r\nHost: h\r\nContent-Length: ten\r\n\r\n";
        assert!(matches!(
            parse_request(wire, &limits()),
            Err(WireError::BadContentLength(_))
        ));
    }

    #[test]
    fn too_many_headers_is_rejected() {
        let small = WireLimits::new().max_headers(3);
        let mut wire = b"GET / HTTP/1.1\r\nHost: h\r\n".to_vec();
        for i in 0..4 {
            wire.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        wire.extend_from_slice(b"\r\n");
        assert_eq!(
            parse_request(&wire, &small),
            Err(WireError::TooManyHeaders { limit: 3 })
        );
    }

    #[test]
    fn garbage_bytes_error_cleanly() {
        for wire in [
            &b"\x00\x01\x02\x03\r\n\r\n"[..],
            &b"GET \xff\xfe HTTP/1.1\r\nHost: h\r\n\r\n"[..],
            &b"headerless\r\n\r\n"[..],
            &b": novalue\r\n\r\n"[..],
        ] {
            assert!(parse_request(wire, &limits()).is_err(), "{wire:?}");
        }
    }

    #[test]
    fn encoder_rejects_reserved_and_malformed_headers() {
        let reserved = Request::get("h", "/").with_header("Host", "evil");
        assert!(matches!(
            encode_request(&reserved),
            Err(WireError::ReservedHeader(_))
        ));
        let reserved = Request::get("h", "/").with_header("content-length", "0");
        assert!(matches!(
            encode_request(&reserved),
            Err(WireError::ReservedHeader(_))
        ));
        let split = Request::get("h", "/").with_header("X-A", "a\r\nX-Injected: b");
        assert!(matches!(
            encode_request(&split),
            Err(WireError::BadHeader(_))
        ));
        let padded = Request::get("h", "/").with_header("X-A", " padded ");
        assert!(matches!(
            encode_request(&padded),
            Err(WireError::BadHeader(_))
        ));
        let response = Response::ok("x").with_header("Content-Length", "999");
        assert!(matches!(
            encode_response(&response),
            Err(WireError::ReservedHeader(_))
        ));
    }

    #[test]
    fn trace_header_roundtrips_through_the_codec() {
        let req = Request::get("h", "/search")
            .with_header(TRACE_HEADER, "00c0ffee00c0ffee-0123456789abcdef-2a");
        let wire = encode_request(&req).unwrap();
        let (back, used) = parse_request(&wire, &limits()).unwrap().unwrap();
        assert_eq!(used, wire.len());
        assert_eq!(back, req);
        assert_eq!(
            back.header(TRACE_HEADER),
            Some("00c0ffee00c0ffee-0123456789abcdef-2a")
        );
    }

    #[test]
    fn encoder_rejects_unframeable_paths() {
        for path in ["", "no-slash", "/sp ace", "/qu?ery", "/line\nbreak"] {
            let mut req = Request::get("h", "/");
            req.path = path.to_string();
            assert!(
                matches!(encode_request(&req), Err(WireError::BadPath(_))),
                "{path:?}"
            );
        }
    }

    #[test]
    fn response_parse_handles_truncation_and_unknown_codes() {
        let bytes = encode_response(&Response::ok("body")).unwrap();
        for cut in 0..bytes.len() {
            assert!(parse_response(&bytes[..cut], &limits()).unwrap().is_none());
        }
        let wire = b"HTTP/1.1 302 Found\r\n\r\n";
        assert_eq!(
            parse_response(wire, &limits()),
            Err(WireError::UnknownStatus(302))
        );
    }

    #[test]
    fn errors_display_without_panicking() {
        let errors: Vec<WireError> = vec![
            WireError::HeadTooLarge { limit: 1 },
            WireError::BodyTooLarge {
                declared: 2,
                limit: 1,
            },
            WireError::TooManyHeaders { limit: 1 },
            WireError::BadStartLine,
            WireError::UnknownMethod("BREW".into()),
            WireError::UnknownStatus(999),
            WireError::BadHeader("x".into()),
            WireError::MissingHost,
            WireError::BadContentLength("ten".into()),
            WireError::ReservedHeader("Host".into()),
            WireError::BadPath("".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
            let _: &dyn std::error::Error = &e;
        }
    }
}
