//! Network event log — a pcap-like trace of everything the simulator did.
//!
//! Bounded ring buffer so long studies don't grow without limit; the crawler
//! and tests read it to assert operational properties (e.g. "all queries hit
//! the pinned datacenter", "no request was rate-limited").
//!
//! **Windowed, not total.** Because the buffer is bounded, every query over
//! retained events — [`EventLog::snapshot`], [`EventLog::count_where`], the
//! exports — sees only the most recent `capacity` events. In particular a
//! drop/corruption count taken with `count_where` after a long crawl is a
//! *windowed* count, not a lifetime total; once more than `capacity` events
//! have been recorded, older faults have been evicted. The only lifetime
//! counter is [`EventLog::total_recorded`]. Code that needs exact lifetime
//! fault totals must keep its own counters (the crawler's `CrawlStats` does
//! exactly this for retries, net errors, and parse failures).

use crate::clock::SimInstant;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io;
use std::net::Ipv4Addr;

/// What happened to one message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetEventKind {
    /// Request delivered to a server.
    Request {
        /// Target host name.
        host: String,
        /// Path plus query string.
        target: String,
    },
    /// Response returned to the client.
    Response {
        /// Numeric HTTP status.
        status: u16,
    },
    /// DNS lookup failed.
    NoRoute {
        /// The unresolvable host name.
        host: String,
    },
    /// Fault injector dropped the message.
    Dropped,
    /// Fault injector corrupted the response body.
    Corrupted,
    /// The client timed out waiting for the exchange.
    TimedOut,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetEvent {
    /// Virtual-clock timestamp at which the event was observed.
    pub at: SimInstant,
    /// Source address — the client machine that initiated the exchange.
    pub src: Ipv4Addr,
    /// Destination, when one was resolved.
    pub dst: Option<Ipv4Addr>,
    /// What happened to the message (request, response, or fault).
    pub kind: NetEventKind,
}

/// Retained events and the lifetime total, kept under ONE mutex so any
/// reader observes a consistent pair. (Splitting them across two locks let a
/// concurrent `snapshot()` + `total_recorded()` see a recorded event with a
/// stale total, or vice versa.)
#[derive(Debug)]
struct LogState {
    events: VecDeque<NetEvent>,
    total: u64,
}

/// Bounded, thread-safe event log.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    state: Mutex<LogState>,
}

impl EventLog {
    /// Keep at most `capacity` most-recent events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        EventLog {
            capacity,
            state: Mutex::new(LogState {
                events: VecDeque::with_capacity(capacity.min(4096)),
                total: 0,
            }),
        }
    }

    /// Append an event, evicting the oldest if full.
    pub fn record(&self, event: NetEvent) {
        let mut s = self.state.lock();
        if s.events.len() == self.capacity {
            s.events.pop_front();
        }
        s.events.push_back(event);
        s.total += 1;
    }

    /// Snapshot of retained events, oldest first.
    pub fn snapshot(&self) -> Vec<NetEvent> {
        self.state.lock().events.iter().cloned().collect()
    }

    /// Atomic snapshot of (retained events, lifetime total): both values are
    /// read under the same lock acquisition, so `total >= events.len()` and,
    /// while fewer than `capacity` events have been recorded, the two agree
    /// exactly.
    pub fn snapshot_with_total(&self) -> (Vec<NetEvent>, u64) {
        let s = self.state.lock();
        (s.events.iter().cloned().collect(), s.total)
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.state.lock().total
    }

    /// Count retained events matching a predicate.
    pub fn count_where(&self, pred: impl Fn(&NetEvent) -> bool) -> usize {
        self.state.lock().events.iter().filter(|e| pred(e)).count()
    }

    /// Drop all retained events (the running total is preserved).
    pub fn clear(&self) {
        self.state.lock().events.clear();
    }

    /// Stream retained events as JSON Lines (one event per line, each
    /// newline-terminated) into `w` without building one giant `String`.
    pub fn write_jsonl(&self, w: &mut impl io::Write) -> io::Result<()> {
        let s = self.state.lock();
        for e in s.events.iter() {
            let line = serde_json::to_string(e).expect("events serialize");
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Export retained events as JSON Lines — a thin wrapper over
    /// [`Self::write_jsonl`] for callers that want a `String`.
    pub fn to_jsonl(&self) -> String {
        let mut buf = Vec::new();
        self.write_jsonl(&mut buf).expect("Vec<u8> writes succeed");
        String::from_utf8(buf).expect("JSON is UTF-8")
    }

    /// Export retained events as a tcpdump-style text trace.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in self.state.lock().events.iter() {
            let t = e.at.millis();
            let dst = e
                .dst
                .map(|d| d.to_string())
                .unwrap_or_else(|| "?".to_string());
            let line = match &e.kind {
                NetEventKind::Request { host, target } => {
                    format!(
                        "{:>10}.{:03} {} > {} GET {host}{target}",
                        t / 1000,
                        t % 1000,
                        e.src,
                        dst
                    )
                }
                NetEventKind::Response { status } => {
                    format!(
                        "{:>10}.{:03} {} < {} HTTP {status}",
                        t / 1000,
                        t % 1000,
                        e.src,
                        dst
                    )
                }
                NetEventKind::NoRoute { host } => {
                    format!(
                        "{:>10}.{:03} {} !> {host}: no route",
                        t / 1000,
                        t % 1000,
                        e.src
                    )
                }
                NetEventKind::Dropped => {
                    format!(
                        "{:>10}.{:03} {} > {} DROPPED",
                        t / 1000,
                        t % 1000,
                        e.src,
                        dst
                    )
                }
                NetEventKind::Corrupted => {
                    format!(
                        "{:>10}.{:03} {} < {} CORRUPTED",
                        t / 1000,
                        t % 1000,
                        e.src,
                        dst
                    )
                }
                NetEventKind::TimedOut => {
                    format!(
                        "{:>10}.{:03} {} < {} TIMEOUT",
                        t / 1000,
                        t % 1000,
                        e.src,
                        dst
                    )
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip;

    fn ev(t: u64, kind: NetEventKind) -> NetEvent {
        NetEvent {
            at: SimInstant(t),
            src: ip("10.0.0.1"),
            dst: Some(ip("10.1.0.1")),
            kind,
        }
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let log = EventLog::new(10);
        log.record(ev(1, NetEventKind::Dropped));
        log.record(ev(2, NetEventKind::Corrupted));
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].at, SimInstant(1));
        assert_eq!(snap[1].at, SimInstant(2));
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let log = EventLog::new(3);
        for t in 0..5 {
            log.record(ev(t, NetEventKind::Dropped));
        }
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].at, SimInstant(2));
        assert_eq!(log.total_recorded(), 5);
    }

    #[test]
    fn count_where_filters() {
        let log = EventLog::new(10);
        log.record(ev(0, NetEventKind::Dropped));
        log.record(ev(1, NetEventKind::Response { status: 200 }));
        log.record(ev(2, NetEventKind::Response { status: 429 }));
        let throttled =
            log.count_where(|e| matches!(e.kind, NetEventKind::Response { status: 429 }));
        assert_eq!(throttled, 1);
    }

    #[test]
    fn clear_keeps_total() {
        let log = EventLog::new(4);
        log.record(ev(0, NetEventKind::Dropped));
        log.clear();
        assert!(log.snapshot().is_empty());
        assert_eq!(log.total_recorded(), 1);
    }

    #[test]
    fn jsonl_export_is_one_valid_object_per_line() {
        let log = EventLog::new(8);
        log.record(ev(
            1,
            NetEventKind::Request {
                host: "h".into(),
                target: "/t".into(),
            },
        ));
        log.record(ev(2, NetEventKind::Response { status: 200 }));
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
            assert!(v.get("at").is_some());
        }
    }

    #[test]
    fn text_export_reads_like_tcpdump() {
        let log = EventLog::new(8);
        log.record(ev(
            1_234,
            NetEventKind::Request {
                host: "search.example.com".into(),
                target: "/search?q=x".into(),
            },
        ));
        log.record(ev(1_345, NetEventKind::Response { status: 429 }));
        log.record(ev(1_400, NetEventKind::TimedOut));
        let text = log.to_text();
        assert!(text.contains("GET search.example.com/search?q=x"), "{text}");
        assert!(text.contains("HTTP 429"));
        assert!(text.contains("TIMEOUT"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        EventLog::new(0);
    }

    #[test]
    fn write_jsonl_matches_to_jsonl_exactly() {
        let log = EventLog::new(8);
        log.record(ev(
            1,
            NetEventKind::Request {
                host: "search.example.com".into(),
                target: "/search?q=x".into(),
            },
        ));
        log.record(ev(2, NetEventKind::Response { status: 429 }));
        log.record(ev(3, NetEventKind::NoRoute { host: "h".into() }));
        let mut streamed = Vec::new();
        log.write_jsonl(&mut streamed).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), log.to_jsonl());
    }

    #[test]
    fn snapshot_and_total_stay_consistent_under_concurrent_records() {
        // With events and total behind separate mutexes, a reader could see
        // a recorded event whose total had not yet been incremented. With a
        // single lock and no eviction, len == total always holds.
        let log = EventLog::new(100_000);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for t in 0..2_000 {
                        log.record(ev(t, NetEventKind::Dropped));
                    }
                });
            }
            s.spawn(|| {
                for _ in 0..2_000 {
                    let (events, total) = log.snapshot_with_total();
                    assert_eq!(events.len() as u64, total);
                }
            });
        });
        assert_eq!(log.total_recorded(), 8_000);
    }
}
