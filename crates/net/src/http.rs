//! Minimal HTTP-shaped messages.
//!
//! The browser talks to the simulated search service with these; they carry
//! exactly the surface the study methodology depends on — method, host,
//! path, query parameters, ordered headers (the browser fingerprint), and a
//! [`bytes::Bytes`] body (the rendered SERP markup).

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Request method. The crawler only issues GETs, but POST exists so the
/// substrate is not search-specific.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Get.
    Get,
    /// Post.
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// Response status, the subset a search crawler encounters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    /// Ok.
    Ok,
    /// Bad request.
    BadRequest,
    /// Not found.
    NotFound,
    /// Rate-limited ("unusual traffic from your computer network").
    TooManyRequests,
    /// Internal error.
    InternalError,
    /// Overloaded — the socket server sheds load with this when its accept
    /// queue is full (the simulator itself never produces it).
    ServiceUnavailable,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::TooManyRequests => 429,
            Status::InternalError => 500,
            Status::ServiceUnavailable => 503,
        }
    }

    /// True for 2xx.
    pub fn is_success(self) -> bool {
        matches!(self, Status::Ok)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// An HTTP-shaped request.
///
/// Headers are an ordered list (not a map): header order is part of a
/// browser fingerprint, and the study requires treatments to present
/// *identical* fingerprints (§2.2 "Browser State").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// Target host name (resolved through the simulator's DNS).
    pub host: String,
    /// Path, e.g. `/search`.
    pub path: String,
    /// Query parameters in order, e.g. `[("q", "starbucks")]`.
    pub query: Vec<(String, String)>,
    /// Ordered headers, e.g. `User-Agent`, `Cookie`, `X-Geolocation`.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Bytes,
}

impl Request {
    /// A GET request with no parameters or headers.
    pub fn get(host: impl Into<String>, path: impl Into<String>) -> Self {
        Request {
            method: Method::Get,
            host: host.into(),
            path: path.into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    /// Append a query parameter.
    pub fn with_query(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.query.push((key.into(), value.into()));
        self
    }

    /// Append a header.
    pub fn with_header(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((key.into(), value.into()));
        self
    }

    /// First query parameter with the given key.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First header with the given key (ASCII case-insensitive, as in HTTP).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    /// The full request target, e.g. `/search?q=starbucks&hl=en`.
    pub fn target(&self) -> String {
        if self.query.is_empty() {
            return self.path.clone();
        }
        let qs: Vec<String> = self
            .query
            .iter()
            .map(|(k, v)| format!("{}={}", urlencode(k), urlencode(v)))
            .collect();
        format!("{}?{}", self.path, qs.join("&"))
    }
}

/// An HTTP-shaped response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The status.
    pub status: Status,
    /// The headers.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Bytes,
}

impl Response {
    /// A 200 response with a UTF-8 body.
    pub fn ok(body: impl Into<Bytes>) -> Self {
        Response {
            status: Status::Ok,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// An empty response with the given status.
    pub fn status(status: Status) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    /// Append a header.
    pub fn with_header(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((key.into(), value.into()));
        self
    }

    /// First header with the given key (ASCII case-insensitive).
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(key))
            .map(|(_, v)| v.as_str())
    }

    /// Body interpreted as UTF-8 (lossy — corrupted responses surface as
    /// replacement characters rather than panics, letting the parser decide).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Percent-encode the characters that would break our query-string framing.
pub(crate) fn urlencode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b',' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decode the percent/plus encoding produced by the request renderer.
pub fn urldecode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                if let (Some(h), Some(l)) = (
                    bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                    bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
                ) {
                    out.push((h * 16 + l) as u8);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_and_accessors() {
        let r = Request::get("search.example.com", "/search")
            .with_query("q", "coffee shop")
            .with_query("hl", "en")
            .with_header("User-Agent", "Safari 8 iOS")
            .with_header("Cookie", "");
        assert_eq!(r.query_param("q"), Some("coffee shop"));
        assert_eq!(r.query_param("missing"), None);
        assert_eq!(r.header("user-agent"), Some("Safari 8 iOS"));
        assert_eq!(r.target(), "/search?q=coffee+shop&hl=en");
    }

    #[test]
    fn target_without_query() {
        assert_eq!(Request::get("h", "/m").target(), "/m");
    }

    #[test]
    fn urlencode_decode_roundtrip() {
        for s in [
            "coffee shop",
            "Wendy's",
            "41.499300,-81.694400",
            "a&b=c%d+e",
            "Chick-fil-a",
        ] {
            assert_eq!(urldecode(&super::urlencode(s)), s, "{s}");
        }
    }

    #[test]
    fn urldecode_tolerates_malformed_percent() {
        assert_eq!(urldecode("100%"), "100%");
        assert_eq!(urldecode("%zz"), "%zz");
    }

    #[test]
    fn response_helpers() {
        let r = Response::ok("hello").with_header("X-Datacenter", "dc1");
        assert!(r.status.is_success());
        assert_eq!(r.body_text(), "hello");
        assert_eq!(r.header("x-datacenter"), Some("dc1"));
        let e = Response::status(Status::TooManyRequests);
        assert_eq!(e.status.code(), 429);
        assert!(!e.status.is_success());
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::BadRequest.code(), 400);
        assert_eq!(Status::NotFound.code(), 404);
        assert_eq!(Status::InternalError.code(), 500);
    }

    #[test]
    fn lossy_body_text_on_invalid_utf8() {
        let r = Response::ok(Bytes::from(vec![0xff, 0xfe, b'a']));
        let t = r.body_text();
        assert!(t.contains('a'));
    }
}
