//! Virtual time.
//!
//! All timestamps in geoserp are milliseconds on a shared [`VirtualClock`].
//! The crawler's lock-step scheduler advances the clock explicitly (e.g. the
//! paper's 11-minute wait between subsequent queries, §2.2); nothing sleeps
//! and nothing reads the OS clock, so runs are reproducible and fast.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A millisecond timestamp on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimInstant(pub u64);

impl SimInstant {
    /// Milliseconds since the start of the simulation.
    pub fn millis(self) -> u64 {
        self.0
    }

    /// Duration in milliseconds from `earlier` to `self` (saturating).
    pub fn since(self, earlier: SimInstant) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

/// Shared, thread-safe virtual clock.
///
/// Cheap to clone (an [`Arc`] around an atomic); all clones see the same
/// timeline.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now_ms: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        SimInstant(self.now_ms.load(Ordering::SeqCst))
    }

    /// Advance by `ms` milliseconds; returns the new time.
    pub fn advance_ms(&self, ms: u64) -> SimInstant {
        SimInstant(self.now_ms.fetch_add(ms, Ordering::SeqCst) + ms)
    }

    /// Advance by whole minutes (the paper's waits are quoted in minutes).
    pub fn advance_minutes(&self, minutes: u64) -> SimInstant {
        self.advance_ms(minutes * 60_000)
    }

    /// Jump to an absolute time; panics if that would move time backwards.
    pub fn set(&self, at: SimInstant) {
        let prev = self.now_ms.swap(at.0, Ordering::SeqCst);
        assert!(
            prev <= at.0,
            "virtual time may not go backwards ({prev} -> {})",
            at.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now().millis(), 0);
        assert_eq!(c.advance_ms(250).millis(), 250);
        assert_eq!(c.now().millis(), 250);
    }

    #[test]
    fn minutes_helper() {
        let c = VirtualClock::new();
        c.advance_minutes(11); // the paper's inter-query wait
        assert_eq!(c.now().millis(), 11 * 60_000);
    }

    #[test]
    fn clones_share_the_timeline() {
        let c = VirtualClock::new();
        let c2 = c.clone();
        c.advance_ms(10);
        assert_eq!(c2.now().millis(), 10);
    }

    #[test]
    fn since_is_saturating() {
        let a = SimInstant(100);
        let b = SimInstant(40);
        assert_eq!(a.since(b), 60);
        assert_eq!(b.since(a), 0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn set_cannot_rewind() {
        let c = VirtualClock::new();
        c.advance_ms(100);
        c.set(SimInstant(50));
    }
}
