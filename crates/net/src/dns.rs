//! Simulated DNS.
//!
//! The search service is fronted by several datacenter IPs behind one name;
//! plain resolution rotates across them (load balancing), which is itself a
//! noise source (different datacenters may serve different index replicas).
//! §2.2 of the paper eliminates this confound by statically mapping the DNS
//! entry — [`DnsResolver::pin`] reproduces exactly that.

use crate::clock::SimInstant;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default record TTL: 60 seconds, a typical load-balancer setting.
pub const DEFAULT_TTL_MS: u64 = 60_000;

/// Thread-safe name → IPs resolver with static overrides and per-client
/// TTL caching.
#[derive(Debug, Default)]
pub struct DnsResolver {
    records: RwLock<HashMap<String, (Vec<Ipv4Addr>, u64)>>,
    overrides: RwLock<HashMap<String, Ipv4Addr>>,
    /// (client, name) → (answer, expiry) — each client OS caches answers
    /// for the record's TTL, which is what keeps an unpinned client on one
    /// datacenter for minutes at a time.
    client_cache: RwLock<HashMap<(Ipv4Addr, String), (Ipv4Addr, u64)>>,
    counter: AtomicU64,
}

impl DnsResolver {
    /// See the type-level docs: `new`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) the address set for a name with the default
    /// 60-second TTL.
    pub fn register(&self, name: impl Into<String>, addrs: Vec<Ipv4Addr>) {
        self.register_with_ttl(name, addrs, DEFAULT_TTL_MS);
    }

    /// Register (or replace) the address set for a name with an explicit
    /// TTL (milliseconds of virtual time).
    pub fn register_with_ttl(&self, name: impl Into<String>, addrs: Vec<Ipv4Addr>, ttl_ms: u64) {
        assert!(!addrs.is_empty(), "a DNS record needs at least one address");
        assert!(ttl_ms > 0, "TTL must be positive");
        self.records.write().insert(name.into(), (addrs, ttl_ms));
    }

    /// Statically map `name` to a single address, bypassing rotation — the
    /// paper's "/etc/hosts" datacenter pinning. The address must be one of
    /// the name's registered addresses (you can only pin to a real server).
    pub fn pin(&self, name: &str, addr: Ipv4Addr) {
        let records = self.records.read();
        let (addrs, _) = records
            .get(name)
            .unwrap_or_else(|| panic!("cannot pin unregistered name {name}"));
        assert!(
            addrs.contains(&addr),
            "{addr} is not a registered address of {name}"
        );
        drop(records);
        self.overrides.write().insert(name.to_string(), addr);
        // A static mapping bypasses (and invalidates) client caches.
        self.client_cache.write().retain(|(_, n), _| n != name);
    }

    /// Remove a static mapping.
    pub fn unpin(&self, name: &str) {
        self.overrides.write().remove(name);
    }

    /// Resolve a name. Overrides win; otherwise round-robin over the record
    /// set (deterministic: an internal counter, not wall-clock or entropy).
    pub fn resolve(&self, name: &str) -> Option<Ipv4Addr> {
        if let Some(&addr) = self.overrides.read().get(name) {
            return Some(addr);
        }
        let records = self.records.read();
        let (addrs, _) = records.get(name)?;
        let i = self.counter.fetch_add(1, Ordering::Relaxed) as usize % addrs.len();
        Some(addrs[i])
    }

    /// Resolve with a per-client TTL cache: the first lookup picks an
    /// address (round-robin) and the client keeps getting it until the
    /// record's TTL expires at virtual time `now`. Overrides bypass the
    /// cache entirely.
    pub fn resolve_cached(
        &self,
        client: Ipv4Addr,
        name: &str,
        now: SimInstant,
    ) -> Option<Ipv4Addr> {
        if let Some(&addr) = self.overrides.read().get(name) {
            return Some(addr);
        }
        let key = (client, name.to_string());
        if let Some(&(addr, expiry)) = self.client_cache.read().get(&key) {
            if now.millis() < expiry {
                return Some(addr);
            }
        }
        let ttl = self.records.read().get(name)?.1;
        let addr = self.resolve(name)?;
        self.client_cache
            .write()
            .insert(key, (addr, now.millis() + ttl));
        Some(addr)
    }

    /// All registered addresses of a name (for diagnostics/validation).
    pub fn addresses(&self, name: &str) -> Vec<Ipv4Addr> {
        self.records
            .read()
            .get(name)
            .map(|(a, _)| a.clone())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip;

    #[test]
    fn round_robin_rotation() {
        let dns = DnsResolver::new();
        dns.register("search.example.com", vec![ip("10.0.0.1"), ip("10.0.0.2")]);
        let a = dns.resolve("search.example.com").unwrap();
        let b = dns.resolve("search.example.com").unwrap();
        let c = dns.resolve("search.example.com").unwrap();
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn pin_fixes_the_answer() {
        let dns = DnsResolver::new();
        dns.register("search.example.com", vec![ip("10.0.0.1"), ip("10.0.0.2")]);
        dns.pin("search.example.com", ip("10.0.0.2"));
        for _ in 0..5 {
            assert_eq!(dns.resolve("search.example.com"), Some(ip("10.0.0.2")));
        }
        dns.unpin("search.example.com");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            seen.insert(dns.resolve("search.example.com").unwrap());
        }
        assert_eq!(seen.len(), 2, "rotation resumes after unpin");
    }

    #[test]
    fn unknown_name_is_none() {
        let dns = DnsResolver::new();
        assert_eq!(dns.resolve("nope.example"), None);
        assert!(dns.addresses("nope.example").is_empty());
    }

    #[test]
    #[should_panic(expected = "not a registered address")]
    fn pin_requires_registered_address() {
        let dns = DnsResolver::new();
        dns.register("a.example", vec![ip("10.0.0.1")]);
        dns.pin("a.example", ip("10.9.9.9"));
    }

    #[test]
    #[should_panic(expected = "cannot pin unregistered")]
    fn pin_requires_registered_name() {
        let dns = DnsResolver::new();
        dns.pin("a.example", ip("10.0.0.1"));
    }

    #[test]
    fn cached_resolution_sticks_until_ttl() {
        use crate::clock::SimInstant;
        let dns = DnsResolver::new();
        dns.register_with_ttl(
            "svc.example",
            vec![ip("10.0.0.1"), ip("10.0.0.2"), ip("10.0.0.3")],
            1_000,
        );
        let client = ip("203.0.113.9");
        let first = dns
            .resolve_cached(client, "svc.example", SimInstant(0))
            .unwrap();
        // Within the TTL every lookup returns the cached answer even though
        // plain resolution keeps rotating underneath.
        for t in [1, 500, 999] {
            assert_eq!(
                dns.resolve_cached(client, "svc.example", SimInstant(t)),
                Some(first)
            );
        }
        // Another client gets its own (rotated) answer.
        let other = dns
            .resolve_cached(ip("203.0.113.10"), "svc.example", SimInstant(0))
            .unwrap();
        assert_ne!(other, first);
        // After expiry the client may move datacenters.
        let renewed = dns
            .resolve_cached(client, "svc.example", SimInstant(1_000))
            .unwrap();
        assert_ne!(renewed, first, "rotation advanced past the cached answer");
    }

    #[test]
    fn pin_overrides_and_flushes_caches() {
        use crate::clock::SimInstant;
        let dns = DnsResolver::new();
        dns.register("svc.example", vec![ip("10.0.0.1"), ip("10.0.0.2")]);
        let client = ip("203.0.113.9");
        let cached = dns
            .resolve_cached(client, "svc.example", SimInstant(0))
            .unwrap();
        let target = if cached == ip("10.0.0.1") {
            ip("10.0.0.2")
        } else {
            ip("10.0.0.1")
        };
        dns.pin("svc.example", target);
        assert_eq!(
            dns.resolve_cached(client, "svc.example", SimInstant(1)),
            Some(target),
            "pinning must beat the client cache"
        );
    }

    #[test]
    #[should_panic(expected = "at least one address")]
    fn register_rejects_empty() {
        let dns = DnsResolver::new();
        dns.register("a.example", vec![]);
    }
}
