//! The server side of the simulated network.
//!
//! A [`Server`] is any service reachable at an IP — in geoserp, the search
//! service's datacenters. [`RequestCtx`] carries the transport-level facts a
//! real server would see (source IP, arrival time, which of its addresses
//! was dialed) and which the search engine's IP-geolocation fallback and
//! noise model consume.

use crate::clock::SimInstant;
use crate::http::{Request, Response};
use std::net::Ipv4Addr;

/// Transport-level context delivered alongside each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestCtx {
    /// Client source address (what IP-geolocation keys on).
    pub src: Ipv4Addr,
    /// Server address the client dialed (selects the datacenter).
    pub dst: Ipv4Addr,
    /// Virtual arrival time.
    pub at: SimInstant,
    /// Monotonic per-network request sequence number; unique per delivered
    /// request. Servers may use it to seed per-request nondeterminism
    /// (A/B bucketing, replica choice) deterministically.
    pub seq: u64,
}

/// A simulated network service.
pub trait Server: Send + Sync {
    /// Handle one request. Must be pure with respect to wall-clock time —
    /// all time comes from `ctx.at`.
    fn handle(&self, ctx: &RequestCtx, req: &Request) -> Response;
}

/// Blanket impl so closures can serve as toy servers in tests.
impl<F> Server for F
where
    F: Fn(&RequestCtx, &Request) -> Response + Send + Sync,
{
    fn handle(&self, ctx: &RequestCtx, req: &Request) -> Response {
        self(ctx, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Status;
    use crate::ip;

    #[test]
    fn closures_are_servers() {
        let echo = |_ctx: &RequestCtx, req: &Request| Response::ok(req.target());
        let ctx = RequestCtx {
            src: ip("10.0.0.1"),
            dst: ip("10.1.0.1"),
            at: SimInstant(5),
            seq: 0,
        };
        let resp = echo.handle(&ctx, &Request::get("h", "/x").with_query("a", "b"));
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.body_text(), "/x?a=b");
    }
}
