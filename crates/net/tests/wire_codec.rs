//! Wire-codec battery: `parse(serialize(m)) == m` for arbitrary messages,
//! and typed errors (never panics) on a hostile-input corpus.

use bytes::Bytes;
use geoserp_net::http::{Method, Request, Response, Status};
use geoserp_net::{encode_request, encode_response, parse_request, parse_response, WireLimits};
use proptest::prelude::*;

/// An arbitrary byte (the vendored proptest has no `any::<u8>()`).
fn arb_byte() -> impl Strategy<Value = u8> {
    (0u16..256).prop_map(|b| b as u8)
}

/// Header names: HTTP token characters only (what the encoder accepts).
fn arb_header_name() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z][A-Za-z0-9!#$%&'*+.^_`|~-]{0,15}").unwrap()
}

/// Header values: printable, no CR/LF/NUL, no leading/trailing blanks
/// (trimmed into shape). Interior spaces and any visible ASCII remain.
fn arb_header_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,24}")
        .unwrap()
        .prop_map(|s| s.trim_matches([' ', '\t']).to_string())
}

/// Query keys/values: completely arbitrary text — the urlencoding must
/// carry anything, including `&`, `=`, `%`, `+`, and non-ASCII.
fn arb_query_text() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~éß❤]{0,24}").unwrap()
}

fn arb_host() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9.-]{1,30}").unwrap()
}

fn arb_path() -> impl Strategy<Value = String> {
    proptest::string::string_regex("/[/A-Za-z0-9._~%-]{0,16}").unwrap()
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        prop_oneof![Just(Method::Get), Just(Method::Post)],
        arb_host(),
        arb_path(),
        proptest::collection::vec((arb_query_text(), arb_query_text()), 0..6),
        proptest::collection::vec((arb_header_name(), arb_header_value()), 0..8),
        proptest::collection::vec(arb_byte(), 0..200),
    )
        .prop_map(|(method, host, path, query, headers, body)| Request {
            method,
            host,
            path,
            query,
            headers,
            body: Bytes::from(body),
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        prop_oneof![
            Just(Status::Ok),
            Just(Status::BadRequest),
            Just(Status::NotFound),
            Just(Status::TooManyRequests),
            Just(Status::InternalError)
        ],
        proptest::collection::vec((arb_header_name(), arb_header_value()), 0..8),
        proptest::collection::vec(arb_byte(), 0..200),
    )
        .prop_map(|(status, headers, body)| Response {
            status,
            headers,
            body: Bytes::from(body),
        })
}

/// Encoder accepts this header set only if no name collides with a framing
/// header — generated names *can* spell "Host" legally.
fn framing_safe(headers: &[(String, String)]) -> bool {
    headers
        .iter()
        .all(|(n, _)| !n.eq_ignore_ascii_case("host") && !n.eq_ignore_ascii_case("content-length"))
}

proptest! {
    /// Round-trip: any encodable request parses back byte-for-byte equal,
    /// consuming exactly the bytes the encoder produced.
    #[test]
    fn request_roundtrips(req in arb_request()) {
        prop_assume!(framing_safe(&req.headers));
        let bytes = encode_request(&req).expect("generated request is encodable");
        let (back, consumed) = parse_request(&bytes, &WireLimits::default())
            .expect("own encoding parses")
            .expect("own encoding is complete");
        prop_assert_eq!(back, req);
        prop_assert_eq!(consumed, bytes.len());
    }

    /// Same contract for responses.
    #[test]
    fn response_roundtrips(resp in arb_response()) {
        prop_assume!(framing_safe(&resp.headers));
        let bytes = encode_response(&resp).expect("generated response is encodable");
        let (back, consumed) = parse_response(&bytes, &WireLimits::default())
            .expect("own encoding parses")
            .expect("own encoding is complete");
        prop_assert_eq!(back, resp);
        prop_assert_eq!(consumed, bytes.len());
    }

    /// Every prefix of a valid message is "incomplete", never an error:
    /// a socket read that stops mid-message must simply wait for more.
    #[test]
    fn request_prefixes_are_incomplete(req in arb_request(), frac in 0.0f64..1.0) {
        prop_assume!(framing_safe(&req.headers));
        let bytes = encode_request(&req).expect("encodable");
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(parse_request(&bytes[..cut.min(bytes.len() - 1)], &WireLimits::default())
            .expect("prefix must not be an error")
            .is_none());
    }

    /// Arbitrary bytes never panic the parser — they parse or they produce
    /// a typed error, including inputs that happen to contain `\r\n\r\n`.
    #[test]
    fn garbage_never_panics(mut bytes in proptest::collection::vec(arb_byte(), 0..300),
                            terminated in (0u8..2).prop_map(|b| b == 1)) {
        if terminated {
            bytes.extend_from_slice(b"\r\n\r\n");
        }
        let _ = parse_request(&bytes, &WireLimits::default());
        let _ = parse_response(&bytes, &WireLimits::default());
    }

    /// ASCII-ish garbage exercises the header-line paths more deeply.
    #[test]
    fn ascii_garbage_never_panics(head in proptest::string::string_regex("[ -~\r\n\t]{0,200}").unwrap()) {
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(b"\r\n\r\n");
        let _ = parse_request(&bytes, &WireLimits::default());
        let _ = parse_response(&bytes, &WireLimits::default());
    }
}

/// The fixed hostile corpus from the issue: truncated requests, oversized
/// heads, unknown methods, garbage — each must yield `Err` (a server turns
/// that into a 400) or `Ok(None)` (incomplete), and must never panic.
#[test]
fn hostile_corpus_yields_typed_errors() {
    let limits = WireLimits::new().max_head_bytes(512).max_body_bytes(1024);
    let oversized_head = {
        let mut s = b"GET / HTTP/1.1\r\nHost: h\r\nX-Pad: ".to_vec();
        s.extend(std::iter::repeat_n(b'a', 4096));
        s.extend_from_slice(b"\r\n\r\n");
        s
    };
    let errors: Vec<(&str, Vec<u8>)> = vec![
        (
            "unknown method",
            b"BREW /pot HTTP/1.1\r\nHost: h\r\n\r\n".to_vec(),
        ),
        ("bad version", b"GET / SPDY/99\r\nHost: h\r\n\r\n".to_vec()),
        ("missing host", b"GET / HTTP/1.1\r\n\r\n".to_vec()),
        (
            "no colon header",
            b"GET / HTTP/1.1\r\nHost: h\r\nnocolon\r\n\r\n".to_vec(),
        ),
        (
            "empty header name",
            b"GET / HTTP/1.1\r\nHost: h\r\n: v\r\n\r\n".to_vec(),
        ),
        (
            "space in header name",
            b"GET / HTTP/1.1\r\nHost: h\r\nX A: v\r\n\r\n".to_vec(),
        ),
        (
            "non-numeric length",
            b"GET / HTTP/1.1\r\nHost: h\r\nContent-Length: ten\r\n\r\n".to_vec(),
        ),
        (
            "huge declared body",
            b"GET / HTTP/1.1\r\nHost: h\r\nContent-Length: 99999999\r\n\r\n".to_vec(),
        ),
        ("oversized head", oversized_head),
        ("pure binary", b"\x00\xff\x13\x37\r\n\r\n".to_vec()),
        ("bare path", b"/search?q=x\r\nHost: h\r\n\r\n".to_vec()),
    ];
    for (label, wire) in &errors {
        assert!(
            parse_request(wire, &limits).is_err(),
            "{label}: expected a typed error, got {:?}",
            parse_request(wire, &limits)
        );
    }

    let incompletes: Vec<(&str, Vec<u8>)> = vec![
        ("empty input", Vec::new()),
        ("half a start line", b"GET /sea".to_vec()),
        (
            "head without terminator",
            b"GET / HTTP/1.1\r\nHost: h\r\n".to_vec(),
        ),
        (
            "body shorter than declared",
            b"GET / HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\n\r\nabc".to_vec(),
        ),
    ];
    for (label, wire) in &incompletes {
        assert!(
            matches!(parse_request(wire, &limits), Ok(None)),
            "{label}: expected Ok(None), got {:?}",
            parse_request(wire, &limits)
        );
    }
}
