//! Browser identity: fingerprint, cookies, geolocation override.

use geoserp_geo::Coord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The attributes a server can observe about a browser.
///
/// Treatments must present *identical* fingerprints (§2.2); equality of two
/// `Fingerprint`s therefore implies equality of the emitted header list,
/// including order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// The user agent.
    pub user_agent: String,
    /// The accept language.
    pub accept_language: String,
    /// The platform.
    pub platform: String,
    /// Screen size in CSS pixels (part of a mobile fingerprint).
    pub screen: (u32, u32),
}

impl Fingerprint {
    /// The paper's treatment identity: Safari 8 on iOS.
    pub fn iphone_safari8() -> Self {
        Fingerprint {
            user_agent:
                "Mozilla/5.0 (iPhone; CPU iPhone OS 8_0 like Mac OS X) AppleWebKit/600.1.4 \
                 (KHTML, like Gecko) Version/8.0 Mobile/12A365 Safari/600.1.4"
                    .to_string(),
            accept_language: "en-US,en;q=0.8".to_string(),
            platform: "iPhone".to_string(),
            screen: (375, 667),
        }
    }

    /// Fingerprint headers, in the deterministic order they are emitted.
    pub fn headers(&self) -> Vec<(String, String)> {
        vec![
            ("User-Agent".to_string(), self.user_agent.clone()),
            ("Accept-Language".to_string(), self.accept_language.clone()),
            ("X-Platform".to_string(), self.platform.clone()),
            (
                "X-Screen".to_string(),
                format!("{}x{}", self.screen.0, self.screen.1),
            ),
        ]
    }
}

/// Cookie storage. Ordered map so the emitted `Cookie` header is
/// deterministic regardless of insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CookieJar {
    cookies: BTreeMap<String, String>,
}

impl CookieJar {
    /// See the type-level docs: `new`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a cookie.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.cookies.insert(name.into(), value.into());
    }

    /// Read a cookie.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.cookies.get(name).map(String::as_str)
    }

    /// Drop everything (the paper's post-query hygiene).
    pub fn clear(&mut self) {
        self.cookies.clear();
    }

    /// True when no cookies are stored.
    pub fn is_empty(&self) -> bool {
        self.cookies.is_empty()
    }

    /// The `Cookie` header value, or `None` when the jar is empty.
    pub fn header_value(&self) -> Option<String> {
        if self.cookies.is_empty() {
            return None;
        }
        Some(
            self.cookies
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join("; "),
        )
    }
}

/// The spoofed Geolocation-API fix.
///
/// `None` models a user who denied the geolocation permission prompt — the
/// engine then falls back to IP geolocation, which is how the paper's
/// validation experiment separates the two signals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GeolocationOverride(pub Option<Coord>);

impl GeolocationOverride {
    /// Spoof the given coordinate.
    pub fn at(coord: Coord) -> Self {
        GeolocationOverride(Some(coord))
    }

    /// Deny geolocation.
    pub fn denied() -> Self {
        GeolocationOverride(None)
    }

    /// Header value forwarded to the engine, if any.
    pub fn header_value(&self) -> Option<String> {
        self.0.map(|c| c.to_gps_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fingerprint_is_stable_and_identical() {
        let a = Fingerprint::iphone_safari8();
        let b = Fingerprint::iphone_safari8();
        assert_eq!(a, b);
        assert_eq!(a.headers(), b.headers());
        assert!(a.user_agent.contains("iPhone"));
        assert!(a.user_agent.contains("Version/8.0"));
    }

    #[test]
    fn header_order_is_deterministic() {
        let keys: Vec<String> = Fingerprint::iphone_safari8()
            .headers()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(
            keys,
            vec!["User-Agent", "Accept-Language", "X-Platform", "X-Screen"]
        );
    }

    #[test]
    fn cookie_jar_roundtrip_and_clear() {
        let mut jar = CookieJar::new();
        assert!(jar.is_empty());
        assert_eq!(jar.header_value(), None);
        jar.set("sid", "abc");
        jar.set("pref", "x");
        assert_eq!(jar.get("sid"), Some("abc"));
        assert_eq!(jar.header_value().unwrap(), "pref=x; sid=abc");
        jar.clear();
        assert!(jar.is_empty());
        assert_eq!(jar.get("sid"), None);
    }

    #[test]
    fn cookie_header_order_independent_of_insertion() {
        let mut a = CookieJar::new();
        a.set("b", "2");
        a.set("a", "1");
        let mut b = CookieJar::new();
        b.set("a", "1");
        b.set("b", "2");
        assert_eq!(a.header_value(), b.header_value());
    }

    #[test]
    fn geolocation_override_header() {
        let c = Coord::new(41.499312, -81.694361);
        let g = GeolocationOverride::at(c);
        assert_eq!(g.header_value().unwrap(), "41.499312,-81.694361");
        assert_eq!(GeolocationOverride::denied().header_value(), None);
    }
}
