#![warn(missing_docs)]
//! # geoserp-browser — the headless browser
//!
//! The paper gathers data with PhantomJS, "a full implementation of a WebKit
//! browser", driving the mobile Google SERP with a JavaScript shim that
//! overrides the Geolocation API (§2.2). This crate is that browser for the
//! simulated world:
//!
//! * [`Fingerprint`] — the browser identity presented to the server. The
//!   paper controls for fingerprint effects by making every treatment
//!   identical ("The script presented the User-Agent for Safari 8 on iOS,
//!   and all other browser attributes were the same across treatments");
//!   [`Fingerprint::iphone_safari8`] is that shared identity, and the header
//!   *order* it emits is deterministic;
//! * [`CookieJar`] — cookie state; the methodology clears it after every
//!   query ("we cleared all cookies after each query, which mitigates
//!   personalization effects due to search history, and prevents Google from
//!   'remembering' a treatment's prior location");
//! * [`GeolocationOverride`] — the spoofed GPS fix, forwarded to the engine
//!   as the `X-Geolocation` header exactly as the JS shim fed coordinates to
//!   the Geolocation API;
//! * [`Browser`] — ties the pieces to a [`geoserp_net::SimNet`] client IP
//!   and runs the PhantomJS-script equivalent: [`Browser::run_search_job`]
//!   loads the search homepage, issues the query, and returns the raw SERP
//!   body (parsing belongs to the crawler, as scraping did in the paper).

pub mod client;
pub mod fingerprint;

pub use client::{Browser, BrowserError, SerpFetch};
pub use fingerprint::{CookieJar, Fingerprint, GeolocationOverride};
