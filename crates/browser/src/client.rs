//! The browser client: page loads over the simulated network and the
//! PhantomJS-script equivalent.

use crate::fingerprint::{CookieJar, Fingerprint, GeolocationOverride};
use geoserp_geo::Coord;
use geoserp_net::{NetError, Request, SimNet, Status};
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Why a page load failed after retries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrowserError {
    /// Network-layer failure (DNS, refused, or dropped beyond retry budget).
    Net(NetError),
    /// Server answered with a non-success status.
    Http(Status),
}

impl fmt::Display for BrowserError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrowserError::Net(e) => write!(f, "network error: {e}"),
            BrowserError::Http(s) => write!(f, "http error: {s}"),
        }
    }
}

impl std::error::Error for BrowserError {}

/// A fetched SERP body plus transport metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SerpFetch {
    /// Raw response body (the SERP wire markup; parsing is the scraper's
    /// job).
    pub body: String,
    /// Virtual round-trip time of the successful request, milliseconds.
    pub rtt_ms: u64,
    /// `X-Datacenter` response header, when present.
    pub datacenter: Option<String>,
}

/// A headless browser bound to one client IP on the simulated network.
#[derive(Clone)]
pub struct Browser {
    net: Arc<SimNet>,
    ip: Ipv4Addr,
    fingerprint: Fingerprint,
    cookies: CookieJar,
    geolocation: GeolocationOverride,
    /// Page-load attempts per request (drops are retried; the paper's
    /// crawler re-ran failed loads).
    pub max_attempts: usize,
}

impl Browser {
    /// A browser with the paper's treatment fingerprint and no cookies.
    pub fn new(net: Arc<SimNet>, ip: Ipv4Addr) -> Self {
        Browser {
            net,
            ip,
            fingerprint: Fingerprint::iphone_safari8(),
            cookies: CookieJar::new(),
            geolocation: GeolocationOverride::denied(),
            max_attempts: 3,
        }
    }

    /// This browser's client IP.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// The presented fingerprint.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// Override the Geolocation API (the JS-shim equivalent).
    pub fn set_geolocation(&mut self, coord: Coord) {
        self.geolocation = GeolocationOverride::at(coord);
    }

    /// Deny geolocation.
    pub fn deny_geolocation(&mut self) {
        self.geolocation = GeolocationOverride::denied();
    }

    /// Mutable cookie access.
    pub fn cookies_mut(&mut self) -> &mut CookieJar {
        &mut self.cookies
    }

    /// Cookie access.
    pub fn cookies(&self) -> &CookieJar {
        &self.cookies
    }

    /// Clear cookies (the paper's after-every-query hygiene).
    pub fn clear_cookies(&mut self) {
        self.cookies.clear();
    }

    /// Assemble a request with the browser's full identity.
    fn decorate(&self, mut req: Request) -> Request {
        for (k, v) in self.fingerprint.headers() {
            req = req.with_header(k, v);
        }
        if let Some(cookie) = self.cookies.header_value() {
            req = req.with_header("Cookie", cookie);
        }
        if let Some(gps) = self.geolocation.header_value() {
            req = req.with_header("X-Geolocation", gps);
        }
        req
    }

    /// Load a page, retrying dropped requests up to `max_attempts`.
    pub fn load(
        &self,
        host: &str,
        path: &str,
        query: &[(&str, &str)],
    ) -> Result<SerpFetch, BrowserError> {
        let mut req = Request::get(host, path);
        for (k, v) in query {
            req = req.with_query(*k, *v);
        }
        let req = self.decorate(req);

        let mut last_err = BrowserError::Net(NetError::Dropped);
        for _ in 0..self.max_attempts.max(1) {
            match self.net.request(self.ip, &req) {
                Ok((resp, rtt)) => {
                    if !resp.status.is_success() {
                        return Err(BrowserError::Http(resp.status));
                    }
                    return Ok(SerpFetch {
                        body: resp.body_text(),
                        rtt_ms: rtt,
                        datacenter: resp.header("X-Datacenter").map(str::to_owned),
                    });
                }
                Err(e @ (NetError::Dropped | NetError::TimedOut)) => {
                    last_err = BrowserError::Net(e);
                    continue; // transient: retry
                }
                Err(e) => return Err(BrowserError::Net(e)),
            }
        }
        Err(last_err)
    }

    /// The PhantomJS-script equivalent (§2.2): "takes a search term and a
    /// latitude/longitude pair as input, loads the mobile version of Google
    /// Search, executes the query, and saves the first page of search
    /// results."
    pub fn run_search_job(
        &mut self,
        host: &str,
        term: &str,
        coord: Coord,
    ) -> Result<SerpFetch, BrowserError> {
        self.set_geolocation(coord);
        // Loading the homepage first mirrors the real flow (and exercises
        // the service the way a browser would).
        self.load(host, "/", &[])?;
        self.load(host, "/search", &[("q", term)])
    }
}

impl fmt::Debug for Browser {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Browser")
            .field("ip", &self.ip)
            .field("geolocation", &self.geolocation)
            .field("cookies", &self.cookies.is_empty())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoserp_geo::Seed;
    use geoserp_net::{ip, RequestCtx, Response, Server};

    /// A toy server echoing back what the browser presented.
    fn echo_server() -> Arc<dyn Server> {
        Arc::new(|_ctx: &RequestCtx, req: &Request| {
            let ua = req.header("User-Agent").unwrap_or("none");
            let cookie = req.header("Cookie").unwrap_or("none");
            let gps = req.header("X-Geolocation").unwrap_or("none");
            Response::ok(format!("{}|{}|{}|{}", req.target(), ua, cookie, gps))
                .with_header("X-Datacenter", "dc9")
        })
    }

    fn net_with_echo() -> Arc<SimNet> {
        let net = Arc::new(SimNet::builder(Seed::new(3)).build());
        net.register_service("echo.example", &[ip("10.2.0.1")], echo_server());
        net
    }

    #[test]
    fn load_presents_fingerprint_and_geolocation() {
        let net = net_with_echo();
        let mut b = Browser::new(net, ip("10.8.0.1"));
        b.set_geolocation(Coord::new(41.5, -81.7));
        b.cookies_mut().set("sid", "t1");
        let fetch = b
            .load("echo.example", "/search", &[("q", "coffee")])
            .unwrap();
        assert!(fetch.body.contains("/search?q=coffee"));
        assert!(fetch.body.contains("iPhone"));
        assert!(fetch.body.contains("sid=t1"));
        assert!(fetch.body.contains("41.5"));
        assert_eq!(fetch.datacenter.as_deref(), Some("dc9"));
    }

    #[test]
    fn cleared_cookies_and_denied_geolocation_are_absent() {
        let net = net_with_echo();
        let mut b = Browser::new(net, ip("10.8.0.1"));
        b.cookies_mut().set("sid", "x");
        b.clear_cookies();
        b.deny_geolocation();
        let fetch = b.load("echo.example", "/", &[]).unwrap();
        assert!(fetch.body.contains("|none|none"), "{}", fetch.body);
    }

    #[test]
    fn two_browsers_present_identical_fingerprints() {
        let net = net_with_echo();
        let a = Browser::new(Arc::clone(&net), ip("10.8.0.1"));
        let b = Browser::new(net, ip("10.8.0.2"));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn unknown_host_is_a_net_error() {
        let net = net_with_echo();
        let b = Browser::new(net, ip("10.8.0.1"));
        let err = b.load("ghost.example", "/", &[]).unwrap_err();
        assert!(matches!(err, BrowserError::Net(NetError::NoRoute(_))));
    }

    #[test]
    fn http_error_is_surfaced() {
        let net = Arc::new(SimNet::builder(Seed::new(4)).build());
        net.register_service(
            "err.example",
            &[ip("10.2.0.9")],
            Arc::new(|_: &RequestCtx, _: &Request| Response::status(Status::InternalError)),
        );
        let b = Browser::new(net, ip("10.8.0.1"));
        let err = b.load("err.example", "/", &[]).unwrap_err();
        assert_eq!(err, BrowserError::Http(Status::InternalError));
    }

    #[test]
    fn drops_are_retried_until_budget_exhausted() {
        // 100% drop: all attempts fail.
        let net = Arc::new(SimNet::builder(Seed::new(5)).faults(1.0, 0.0).build());
        net.register_service("echo.example", &[ip("10.2.0.1")], echo_server());
        let b = Browser::new(net.clone(), ip("10.8.0.1"));
        let err = b.load("echo.example", "/", &[]).unwrap_err();
        assert_eq!(err, BrowserError::Net(NetError::Dropped));
        // Three attempts were made.
        assert_eq!(net.log().total_recorded(), 3);
    }

    #[test]
    fn moderate_drop_rate_usually_succeeds_with_retries() {
        let net = Arc::new(SimNet::builder(Seed::new(6)).faults(0.3, 0.0).build());
        net.register_service("echo.example", &[ip("10.2.0.1")], echo_server());
        let b = Browser::new(net, ip("10.8.0.1"));
        let ok = (0..50)
            .filter(|_| b.load("echo.example", "/", &[]).is_ok())
            .count();
        assert!(ok >= 45, "only {ok}/50 loads succeeded");
    }
}
