//! Politician roster generation (§2.1).
//!
//! The paper's 120 politician queries: "11 members of the Cuyahoga County
//! Board, 53 random members of the Ohio House and Senate, all 18 members of
//! the US Senate and House from Ohio, 36 random members of the US House and
//! Senate not from Ohio, Joe Biden, and Barack Obama."
//!
//! Names are generated from seeded pools, except two Ohio congressional
//! members who are deliberately assigned the common names "Bill Johnson" and
//! "Tim Ryan" — the two names §3.2 identifies as ambiguity-driven outliers —
//! plus a seeded handful of other common names. The web corpus later creates
//! *unrelated* pages (a football coach, a company founder, …) for every
//! common-named politician so that their queries are genuinely ambiguous.

use geoserp_geo::Seed;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The level of office a politician holds; determines the geographic scope of
/// their coverage on the synthetic web.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OfficeLevel {
    /// Cuyahoga County Board member — county-scoped coverage.
    CountyBoard,
    /// Ohio House / Senate member — state-scoped coverage.
    StateLegislature,
    /// US House / Senate member from Ohio.
    UsCongressOhio,
    /// US House / Senate member from another state.
    UsCongressOther,
    /// National figure (Biden, Obama) — globally scoped coverage only.
    National,
}

impl OfficeLevel {
    /// Roster size for this level in the paper's corpus.
    pub fn paper_count(self) -> usize {
        match self {
            OfficeLevel::CountyBoard => 11,
            OfficeLevel::StateLegislature => 53,
            OfficeLevel::UsCongressOhio => 18,
            OfficeLevel::UsCongressOther => 36,
            OfficeLevel::National => 2,
        }
    }

    /// All levels.
    pub const ALL: [OfficeLevel; 5] = [
        OfficeLevel::CountyBoard,
        OfficeLevel::StateLegislature,
        OfficeLevel::UsCongressOhio,
        OfficeLevel::UsCongressOther,
        OfficeLevel::National,
    ];
}

impl fmt::Display for OfficeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OfficeLevel::CountyBoard => "Cuyahoga County Board",
            OfficeLevel::StateLegislature => "Ohio General Assembly",
            OfficeLevel::UsCongressOhio => "US Congress (Ohio)",
            OfficeLevel::UsCongressOther => "US Congress (other state)",
            OfficeLevel::National => "National figure",
        };
        f.write_str(s)
    }
}

/// One politician in the roster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Politician {
    /// Full name, also the query term.
    pub name: String,
    /// The level.
    pub level: OfficeLevel,
    /// Home state abbreviation.
    pub state_abbrev: String,
    /// Home county (for county-board and state-legislature members).
    pub home_county: Option<String>,
    /// True if this name was drawn from the common-name pool; the web corpus
    /// attaches unrelated same-named entities to these.
    pub common_name: bool,
    /// Party label, generated for flavour (the engine ignores it).
    pub party: Party,
}

/// Party affiliation (cosmetic; the engine must not read it, mirroring the
/// paper's finding that demographics/politics do not drive personalization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Party {
    /// Democratic.
    Democratic,
    /// Republican.
    Republican,
    /// Independent.
    Independent,
}

const FIRST_NAMES: [&str; 40] = [
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Karen",
    "Charles",
    "Sarah",
    "Christopher",
    "Nancy",
    "Daniel",
    "Margaret",
    "Matthew",
    "Lisa",
    "Anthony",
    "Betty",
    "Marcus",
    "Dorothy",
    "Donald",
    "Sandra",
    "Steven",
    "Ashley",
    "Paul",
    "Kimberly",
    "Andrea",
    "Donna",
    "Kenneth",
    "Carol",
];

const LAST_NAMES: [&str; 44] = [
    "Abernathy",
    "Bergstrom",
    "Castellano",
    "Delacroix",
    "Eisenberg",
    "Fairbanks",
    "Galloway",
    "Hathaway",
    "Ingersoll",
    "Jankowski",
    "Kowalczyk",
    "Lindqvist",
    "Montgomery",
    "Novakovic",
    "Okonkwo",
    "Pellegrini",
    "Quarterman",
    "Rasmussen",
    "Szymanski",
    "Thibodeaux",
    "Underwood",
    "Vanderbilt",
    "Wadsworth",
    "Xenakis",
    "Yarborough",
    "Zablocki",
    "Ashford",
    "Blackwood",
    "Carrington",
    "Dunmore",
    "Ellsworth",
    "Fitzwilliam",
    "Greenfield",
    "Holloway",
    "Ironside",
    "Jefferson",
    "Kingsley",
    "Lockhart",
    "Merriweather",
    "Northcott",
    "Oakhurst",
    "Pemberton",
    "Ravenscroft",
    "Stonebridge",
];

/// Names deliberately shared with unrelated non-politicians on the synthetic
/// web. "Bill Johnson" and "Tim Ryan" are the paper's own examples.
pub const COMMON_NAMES: [&str; 6] = [
    "Bill Johnson",
    "Tim Ryan",
    "Mike Smith",
    "John Brown",
    "Dave Miller",
    "Jim Jones",
];

/// The generated roster of 120 politicians.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Roster {
    politicians: Vec<Politician>,
}

impl Roster {
    /// Generate the paper's roster from a seed, deterministically.
    ///
    /// Uniqueness of names is guaranteed (each name is also a query term).
    pub fn generate(seed: Seed) -> Self {
        let mut rng = seed.derive("roster").rng();
        let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut politicians = Vec::with_capacity(120);

        // Which common names go where: 2 are pinned to Ohio US Congress,
        // the rest sprinkled over the state legislature.
        let mut common_pool: Vec<&str> = COMMON_NAMES[2..].to_vec();
        rng.shuffle(&mut common_pool);

        let fresh_name = |rng: &mut geoserp_geo::DetRng,
                          used: &mut std::collections::HashSet<String>| loop {
            let name = format!("{} {}", rng.pick(&FIRST_NAMES), rng.pick(&LAST_NAMES));
            if used.insert(name.clone()) {
                return name;
            }
        };
        let party = |rng: &mut geoserp_geo::DetRng| {
            if rng.chance(0.48) {
                Party::Democratic
            } else if rng.chance(0.96) {
                Party::Republican
            } else {
                Party::Independent
            }
        };

        // 11 Cuyahoga County Board members.
        for _ in 0..11 {
            let name = fresh_name(&mut rng, &mut used);
            let p = party(&mut rng);
            politicians.push(Politician {
                name,
                level: OfficeLevel::CountyBoard,
                state_abbrev: "OH".into(),
                home_county: Some("Cuyahoga".into()),
                common_name: false,
                party: p,
            });
        }

        // 53 Ohio General Assembly members; up to 2 get common names.
        let common_in_assembly = 2.min(common_pool.len());
        #[allow(clippy::needless_range_loop)] // only the first 2 of 53 index the pool
        for i in 0..53 {
            let (name, common) = if i < common_in_assembly {
                let n = common_pool[i].to_string();
                used.insert(n.clone());
                (n, true)
            } else {
                (fresh_name(&mut rng, &mut used), false)
            };
            let county =
                geoserp_geo::us::OHIO_COUNTIES[rng.below(geoserp_geo::us::OHIO_COUNTIES.len())];
            let p = party(&mut rng);
            politicians.push(Politician {
                name,
                level: OfficeLevel::StateLegislature,
                state_abbrev: "OH".into(),
                home_county: Some(county.to_string()),
                common_name: common,
                party: p,
            });
        }

        // 18 Ohio members of the US Congress; two are the paper's ambiguous
        // names.
        for i in 0..18 {
            let (name, common) = match i {
                0 => ("Bill Johnson".to_string(), true),
                1 => ("Tim Ryan".to_string(), true),
                _ => (fresh_name(&mut rng, &mut used), false),
            };
            used.insert(name.clone());
            let county =
                geoserp_geo::us::OHIO_COUNTIES[rng.below(geoserp_geo::us::OHIO_COUNTIES.len())];
            let p = party(&mut rng);
            politicians.push(Politician {
                name,
                level: OfficeLevel::UsCongressOhio,
                state_abbrev: "OH".into(),
                home_county: Some(county.to_string()),
                common_name: common,
                party: p,
            });
        }

        // 36 non-Ohio members of the US Congress.
        for i in 0..36 {
            let (name, common) = if i < common_pool.len().saturating_sub(common_in_assembly) {
                let n = common_pool[common_in_assembly + i].to_string();
                used.insert(n.clone());
                (n, true)
            } else {
                (fresh_name(&mut rng, &mut used), false)
            };
            // A non-Ohio state.
            let state = loop {
                let (_, abbrev, _, _) =
                    geoserp_geo::us::STATES[rng.below(geoserp_geo::us::STATES.len())];
                if abbrev != "OH" {
                    break abbrev;
                }
            };
            let p = party(&mut rng);
            politicians.push(Politician {
                name,
                level: OfficeLevel::UsCongressOther,
                state_abbrev: state.to_string(),
                home_county: None,
                common_name: common,
                party: p,
            });
        }

        // Biden and Obama.
        politicians.push(Politician {
            name: "Joe Biden".into(),
            level: OfficeLevel::National,
            state_abbrev: "DE".into(),
            home_county: None,
            common_name: false,
            party: Party::Democratic,
        });
        politicians.push(Politician {
            name: "Barack Obama".into(),
            level: OfficeLevel::National,
            state_abbrev: "IL".into(),
            home_county: None,
            common_name: false,
            party: Party::Democratic,
        });

        Roster { politicians }
    }

    /// All 120 politicians in roster order.
    pub fn all(&self) -> &[Politician] {
        &self.politicians
    }

    /// Politicians at one office level.
    pub fn at_level(&self, level: OfficeLevel) -> impl Iterator<Item = &Politician> {
        self.politicians.iter().filter(move |p| p.level == level)
    }

    /// Look up a politician by exact name.
    pub fn by_name(&self, name: &str) -> Option<&Politician> {
        self.politicians.iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roster() -> Roster {
        Roster::generate(Seed::new(2015))
    }

    #[test]
    fn roster_size_and_level_counts() {
        let r = roster();
        assert_eq!(r.all().len(), 120);
        for level in OfficeLevel::ALL {
            assert_eq!(
                r.at_level(level).count(),
                level.paper_count(),
                "level {level}"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let r = roster();
        let mut names: Vec<&str> = r.all().iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 120);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Roster::generate(Seed::new(3));
        let b = Roster::generate(Seed::new(3));
        assert_eq!(a.all(), b.all());
    }

    #[test]
    fn different_seeds_differ() {
        let a = Roster::generate(Seed::new(3));
        let b = Roster::generate(Seed::new(4));
        assert_ne!(a.all(), b.all());
    }

    #[test]
    fn papers_ambiguous_names_are_in_ohio_congress() {
        let r = roster();
        let bj = r.by_name("Bill Johnson").expect("Bill Johnson exists");
        assert_eq!(bj.level, OfficeLevel::UsCongressOhio);
        assert!(bj.common_name);
        let tr = r.by_name("Tim Ryan").expect("Tim Ryan exists");
        assert_eq!(tr.level, OfficeLevel::UsCongressOhio);
        assert!(tr.common_name);
    }

    #[test]
    fn biden_and_obama_present() {
        let r = roster();
        assert_eq!(r.by_name("Joe Biden").unwrap().level, OfficeLevel::National);
        assert_eq!(
            r.by_name("Barack Obama").unwrap().level,
            OfficeLevel::National
        );
    }

    #[test]
    fn county_board_members_live_in_cuyahoga() {
        let r = roster();
        for p in r.at_level(OfficeLevel::CountyBoard) {
            assert_eq!(p.home_county.as_deref(), Some("Cuyahoga"));
            assert_eq!(p.state_abbrev, "OH");
        }
    }

    #[test]
    fn non_ohio_congress_is_non_ohio() {
        let r = roster();
        for p in r.at_level(OfficeLevel::UsCongressOther) {
            assert_ne!(p.state_abbrev, "OH", "{}", p.name);
        }
    }

    #[test]
    fn several_common_names_exist() {
        let r = roster();
        let commons = r.all().iter().filter(|p| p.common_name).count();
        assert!(commons >= 4, "only {commons} common names");
    }
}
