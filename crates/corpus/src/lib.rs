#![warn(missing_docs)]
//! # geoserp-corpus — the synthetic web and query corpus
//!
//! The paper measures a live search engine against the live web. This crate
//! supplies the deterministic synthetic equivalents of both inputs:
//!
//! * a **web corpus** ([`WebCorpus`]) of pages — chain-store outlets and
//!   generic local establishments (schools, hospitals, banks, …), politician
//!   pages at four levels of office, controversial-topic pages, and news
//!   articles — each with a URL, indexable tokens, a static authority score,
//!   and a geographic scope;
//! * the paper's **query corpus** ([`QueryCorpus`], §2.1): 33 local queries,
//!   87 controversial queries, and 120 politician-name queries (240 total).
//!
//! Both are generated from a [`geoserp_geo::Seed`] so that an entire study is
//! reproducible from one `u64`.
//!
//! The corpus is shaped so that the *mechanisms* the paper observed exist in
//! the synthetic world:
//!
//! * brand terms (Starbucks, KFC, …) have a dominant navigational domain and
//!   comparatively few near-duplicate local candidates;
//! * generic establishment terms (school, hospital, …) have many near-equal
//!   geo-scoped candidates everywhere, so ranking is distance- and
//!   tie-break-sensitive;
//! * politicians are covered by globally scoped pages (encyclopedia,
//!   official sites) plus home-region news; a few share deliberately common
//!   names with unrelated people (§3.2's "Bill Johnson" ambiguity);
//! * controversial topics are globally scoped with an attached pool of news
//!   articles.

pub mod establishments;
pub mod page;
pub mod politicians;
pub mod queries;
pub mod text;
pub mod topics;
pub mod web;

pub use establishments::{
    CategoryDef, NameStyle, Place, PlaceId, BRAND_CATEGORIES, GENERIC_CATEGORIES,
};
pub use page::{GeoScope, Page, PageId, PageKind};
pub use politicians::{OfficeLevel, Politician, Roster};
pub use queries::{Query, QueryCategory, QueryCorpus, CONTROVERSIAL_TERMS, LOCAL_TERMS};
pub use text::{slugify, tokenize};
pub use topics::{Topic, TopicSet, NEWS_WINDOW_DAYS, STATE_INSTITUTION_TERMS};
pub use web::WebCorpus;
