//! The paper's query corpus (§2.1): 240 queries in three categories —
//! 33 *local*, 87 *controversial*, 120 *politicians*.
//!
//! The 33 local terms are read directly off the paper's Figures 3/4/6 (they
//! plot every local query by name). The controversial list contains the 18
//! examples of Table 1, the three terms §3.2 singles out as most personalized
//! ("health", "republican party", "politics"), and 66 further news/politics
//! issue terms in the same style, for the stated total of 87. Politician
//! queries are the names of a generated [`crate::Roster`].

use crate::politicians::Roster;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Query category, the paper's primary query-side dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum QueryCategory {
    /// Physical establishments, restaurants, public services.
    Local,
    /// News/politics issue terms (Table 1).
    Controversial,
    /// Politician names.
    Politician,
}

impl QueryCategory {
    /// All categories in the paper's figure order.
    pub const ALL: [QueryCategory; 3] = [
        QueryCategory::Politician,
        QueryCategory::Controversial,
        QueryCategory::Local,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            QueryCategory::Local => "Local",
            QueryCategory::Controversial => "Controversial",
            QueryCategory::Politician => "Politicians",
        }
    }
}

impl fmt::Display for QueryCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A single search query.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// The term.
    pub term: String,
    /// The category.
    pub category: QueryCategory,
}

impl Query {
    /// See the type-level docs: `new`.
    pub fn new(term: impl Into<String>, category: QueryCategory) -> Self {
        Query {
            term: term.into(),
            category,
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.category, self.term)
    }
}

/// The 33 local query terms, exactly as plotted in the paper's Figure 3.
pub const LOCAL_TERMS: [&str; 33] = [
    "Chipotle",
    "Starbucks",
    "Dairy Queen",
    "Mcdonalds",
    "Subway",
    "Burger King",
    "Post Office",
    "Polling Place",
    "KFC",
    "Wendy's",
    "Chick-fil-a",
    "Train",
    "University",
    "Sushi",
    "Football",
    "Bank",
    "Burger",
    "Rail",
    "Coffee",
    "Restaurant",
    "Park",
    "Fast Food",
    "Police Station",
    "Bus",
    "School",
    "Fire Station",
    "Airport",
    "Hospital",
    "College",
    "Station",
    "High School",
    "Elementary School",
    "Middle School",
];

/// The subset of [`LOCAL_TERMS`] that are brand names (chains). The paper
/// finds these less noisy and less personalized than generic terms because
/// they resolve navigationally and "searches for specific brands typically do
/// not yield Maps results".
pub const BRAND_TERMS: [&str; 9] = [
    "Chipotle",
    "Starbucks",
    "Dairy Queen",
    "Mcdonalds",
    "Subway",
    "Burger King",
    "KFC",
    "Wendy's",
    "Chick-fil-a",
];

/// The 87 controversial query terms: Table 1's 18 examples first, then the
/// three terms called out in §3.2, then 66 more in the same register.
pub const CONTROVERSIAL_TERMS: [&str; 87] = [
    // Table 1 (verbatim).
    "Progressive Tax",
    "Impose A Flat Tax",
    "End Medicaid",
    "Affordable Health And Care Act",
    "Fluoridate Water",
    "Stem Cell Research",
    "Andrew Wakefield Vindicated",
    "Autism Caused By Vaccines",
    "US Government Loses AAA Bond Rate",
    "Is Global Warming Real",
    "Man Made Global Warming Hoax",
    "Nuclear Power Plants",
    "Offshore Drilling",
    "Genetically Modified Organisms",
    "Late Term Abortion",
    "Barack Obama Birth Certificate",
    "Impeach Barack Obama",
    "Gay Marriage",
    // §3.2's most-personalized controversial queries.
    "Health",
    "Republican Party",
    "Politics",
    // Remaining terms in the same news/politics register.
    "Gun Control",
    "Minimum Wage Increase",
    "Immigration Reform",
    "Death Penalty",
    "Climate Change",
    "Obamacare Repeal",
    "Marijuana Legalization",
    "School Vouchers",
    "Social Security Reform",
    "Voter ID Laws",
    "Affirmative Action",
    "Common Core Standards",
    "Fracking",
    "Keystone Pipeline",
    "Net Neutrality",
    "NSA Surveillance",
    "Drone Strikes",
    "Guantanamo Bay",
    "Defense Spending",
    "Welfare Reform",
    "Food Stamps",
    "Charter Schools",
    "Teacher Tenure",
    "Student Loan Debt",
    "Free College Tuition",
    "Single Payer Healthcare",
    "Medicare Privatization",
    "Tax Loopholes",
    "Estate Tax",
    "Capital Gains Tax",
    "Corporate Tax Rate",
    "Carbon Tax",
    "Renewable Energy Subsidies",
    "Coal Industry Regulations",
    "Clean Air Act",
    "Endangered Species Act",
    "Public Lands Drilling",
    "Water Rights",
    "Right To Work Laws",
    "Union Dues",
    "Outsourcing Jobs",
    "Free Trade Agreements",
    "Currency Manipulation",
    "Federal Reserve Audit",
    "Balanced Budget Amendment",
    "Debt Ceiling",
    "Government Shutdown",
    "Term Limits",
    "Gerrymandering",
    "Campaign Finance Reform",
    "Super PACs",
    "Electoral College",
    "Statehood For Puerto Rico",
    "Flag Burning Amendment",
    "School Prayer",
    "Creationism In Schools",
    "Sex Education",
    "Contraception Mandate",
    "Religious Freedom Laws",
    "Transgender Rights",
    "Police Body Cameras",
    "Mandatory Minimum Sentences",
    "Private Prisons",
    "Felon Voting Rights",
    "Sanctuary Cities",
    "Police Militarization",
];

/// The full query corpus: 240 queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryCorpus {
    local: Vec<Query>,
    controversial: Vec<Query>,
    politicians: Vec<Query>,
}

impl QueryCorpus {
    /// Build the paper's corpus. Politician queries come from the roster's
    /// 120 names.
    pub fn paper_defaults(roster: &Roster) -> Self {
        let local = LOCAL_TERMS
            .iter()
            .map(|t| Query::new(*t, QueryCategory::Local))
            .collect();
        let controversial = CONTROVERSIAL_TERMS
            .iter()
            .map(|t| Query::new(*t, QueryCategory::Controversial))
            .collect();
        let politicians = roster
            .all()
            .iter()
            .map(|p| Query::new(p.name.clone(), QueryCategory::Politician))
            .collect();
        QueryCorpus {
            local,
            controversial,
            politicians,
        }
    }

    /// Queries of one category.
    pub fn of(&self, category: QueryCategory) -> &[Query] {
        match category {
            QueryCategory::Local => &self.local,
            QueryCategory::Controversial => &self.controversial,
            QueryCategory::Politician => &self.politicians,
        }
    }

    /// All 240 queries: politicians, controversial, local (figure order).
    pub fn all(&self) -> Vec<&Query> {
        QueryCategory::ALL
            .iter()
            .flat_map(|&c| self.of(c).iter())
            .collect()
    }

    /// Total query count.
    pub fn len(&self) -> usize {
        self.local.len() + self.controversial.len() + self.politicians.len()
    }

    /// True when the corpus is empty (never for paper defaults).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `term` is one of the nine brand-name local terms.
    pub fn is_brand_term(term: &str) -> bool {
        BRAND_TERMS.iter().any(|b| b.eq_ignore_ascii_case(term))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoserp_geo::Seed;

    #[test]
    fn term_list_sizes_match_paper() {
        assert_eq!(LOCAL_TERMS.len(), 33);
        assert_eq!(CONTROVERSIAL_TERMS.len(), 87);
        assert_eq!(BRAND_TERMS.len(), 9);
    }

    #[test]
    fn no_duplicate_terms() {
        let mut all: Vec<String> = LOCAL_TERMS
            .iter()
            .chain(CONTROVERSIAL_TERMS.iter())
            .map(|s| s.to_lowercase())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn brands_are_subset_of_local() {
        for b in BRAND_TERMS {
            assert!(LOCAL_TERMS.contains(&b), "{b} not in LOCAL_TERMS");
        }
    }

    #[test]
    fn table1_terms_present() {
        for t in [
            "Progressive Tax",
            "Gay Marriage",
            "Impeach Barack Obama",
            "Fluoridate Water",
        ] {
            assert!(CONTROVERSIAL_TERMS.contains(&t));
        }
    }

    #[test]
    fn corpus_totals_240() {
        let roster = Roster::generate(Seed::new(1));
        let corpus = QueryCorpus::paper_defaults(&roster);
        assert_eq!(corpus.of(QueryCategory::Local).len(), 33);
        assert_eq!(corpus.of(QueryCategory::Controversial).len(), 87);
        assert_eq!(corpus.of(QueryCategory::Politician).len(), 120);
        assert_eq!(corpus.len(), 240);
        assert_eq!(corpus.all().len(), 240);
        assert!(!corpus.is_empty());
    }

    #[test]
    fn brand_term_detection() {
        assert!(QueryCorpus::is_brand_term("Starbucks"));
        assert!(QueryCorpus::is_brand_term("starbucks"));
        assert!(!QueryCorpus::is_brand_term("School"));
    }
}
