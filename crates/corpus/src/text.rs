//! Tokenization and slug helpers shared by corpus generation and the engine.
//!
//! The engine's lexical matching and the corpus's page text use one
//! tokenizer so that relevance comparisons are consistent: lowercase
//! alphanumeric runs, with apostrophes and hyphens treated as joiners that
//! get dropped ("Wendy's" → `wendys`, "Chick-fil-a" → `chickfila`). This
//! mirrors how the paper's query terms (which include both punctuation
//! styles) must match page titles.

/// Split text into lowercase tokens. Apostrophes and hyphens join their
/// neighbours; every other non-alphanumeric character separates tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                current.push(lc);
            }
        } else if ch == '\'' || ch == '-' || ch == '\u{2019}' {
            // joiner: skip, keep accumulating
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// URL-safe slug: tokens joined by `-`.
pub fn slugify(text: &str) -> String {
    tokenize(text).join("-")
}

/// Jaccard similarity between two token multiset *supports* (sets).
/// Used by corpus tests and the engine's duplicate suppression.
pub fn token_set_overlap(a: &[String], b: &[String]) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<&String> = a.iter().collect();
    let sb: HashSet<&String> = b.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        assert_eq!(tokenize("Coffee Shop"), vec!["coffee", "shop"]);
        assert_eq!(tokenize("  multiple   spaces "), vec!["multiple", "spaces"]);
    }

    #[test]
    fn apostrophes_and_hyphens_join() {
        assert_eq!(tokenize("Wendy's"), vec!["wendys"]);
        assert_eq!(tokenize("Chick-fil-a"), vec!["chickfila"]);
        assert_eq!(tokenize("O'Brien-Smith"), vec!["obriensmith"]);
    }

    #[test]
    fn punctuation_separates() {
        assert_eq!(tokenize("a,b.c/d"), vec!["a", "b", "c", "d"]);
        assert_eq!(
            tokenize("Impeach Barack Obama!"),
            vec!["impeach", "barack", "obama"]
        );
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("?!., ").is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Café"), vec!["café"]);
    }

    #[test]
    fn slugify_joins_with_dashes() {
        assert_eq!(slugify("Cuyahoga County Board"), "cuyahoga-county-board");
        assert_eq!(slugify("Wendy's #42"), "wendys-42");
    }

    #[test]
    fn overlap_bounds() {
        let a = tokenize("elementary school near me");
        let b = tokenize("middle school near me");
        let o = token_set_overlap(&a, &b);
        assert!(o > 0.0 && o < 1.0);
        assert_eq!(token_set_overlap(&a, &a), 1.0);
        assert_eq!(token_set_overlap(&[], &[]), 1.0);
        assert_eq!(token_set_overlap(&a, &[]), 0.0);
    }
}
