//! Controversial-topic pages and their news pools.
//!
//! Each of the 87 controversial terms gets a globally scoped page set
//! (encyclopedia, advocacy organizations, government information) plus a pool
//! of news articles. A minority of articles are *state-scoped* regional
//! coverage — this is the mechanism behind the paper's finding that 6–18 % of
//! controversial-query differences are attributable to News results while
//! overall personalization stays near the noise floor.
//!
//! Three terms — "Health", "Republican Party", "Politics" — additionally get
//! a per-state institutional page ("Ohio Department of Health", "Ohio
//! Republican Party", …), reproducing §3.2's observation that exactly these
//! controversial queries personalize most.

use crate::page::{GeoScope, Page, PageId, PageKind};
use crate::queries::CONTROVERSIAL_TERMS;
use crate::text::{slugify, tokenize};
use geoserp_geo::{Seed, UsGeography};
use serde::{Deserialize, Serialize};

/// Number of simulation days news is spread over (the paper's 30-day window).
pub const NEWS_WINDOW_DAYS: u32 = 30;

/// The controversial terms that get per-state institutional pages.
pub const STATE_INSTITUTION_TERMS: [&str; 3] = ["Health", "Republican Party", "Politics"];

/// A controversial topic: its query term and index tokens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topic {
    /// The term.
    pub term: String,
    /// The tokens.
    pub tokens: Vec<String>,
}

/// Result of topic-page generation.
#[derive(Debug, Clone)]
pub struct TopicSet {
    /// The topics.
    pub topics: Vec<Topic>,
    /// The pages.
    pub pages: Vec<Page>,
}

/// Generate pages for all 87 controversial terms.
pub fn generate(geo: &UsGeography, seed: Seed, next_page_id: &mut u32) -> TopicSet {
    let mut topics = Vec::with_capacity(CONTROVERSIAL_TERMS.len());
    let mut pages = Vec::new();
    let alloc = |next_page_id: &mut u32| {
        let id = PageId(*next_page_id);
        *next_page_id += 1;
        id
    };

    for (ti, term) in CONTROVERSIAL_TERMS.iter().enumerate() {
        let tseed = seed.derive("topics").derive_idx("term", ti as u64);
        let mut rng = tseed.rng();
        let slug = slugify(term);
        let tokens = tokenize(term);
        topics.push(Topic {
            term: term.to_string(),
            tokens: tokens.clone(),
        });

        let push_page = |pages: &mut Vec<Page>,
                         next_page_id: &mut u32,
                         url: String,
                         domain: String,
                         title: String,
                         extra: &str,
                         authority: f64,
                         geo_scope: GeoScope,
                         kind: PageKind,
                         day: Option<u32>| {
            let id = alloc(next_page_id);
            let mut toks = tokens.clone();
            toks.extend(tokenize(&title));
            toks.extend(tokenize(extra));
            let mut page = Page::new(id, url, domain, title, toks, authority, geo_scope, kind);
            if let Some(d) = day {
                page = page.with_published_day(d);
            }
            pages.push(page);
        };

        // Encyclopedia article.
        push_page(
            &mut pages,
            next_page_id,
            format!("https://encyclopedia.example.org/wiki/{slug}"),
            "encyclopedia.example.org".into(),
            format!("{term} — Encyclopedia"),
            "overview history debate policy",
            0.92,
            GeoScope::Global,
            PageKind::Web,
            None,
        );

        // Advocacy organizations, pro and con.
        let n_advocacy = 2 + rng.below(2); // 2..=3
        for a in 0..n_advocacy {
            let side = if a % 2 == 0 { "for" } else { "against" };
            push_page(
                &mut pages,
                next_page_id,
                format!("https://{side}-{slug}-{a}.example.org/"),
                format!("{side}-{slug}-{a}.example.org"),
                format!(
                    "{} {}",
                    ["Citizens For", "Coalition Against", "Alliance On"][a % 3],
                    term
                ),
                "advocacy campaign position facts",
                rng.range_f64(0.45, 0.75),
                GeoScope::Global,
                PageKind::Web,
                None,
            );
        }

        // Government information page for policy-flavoured terms.
        if rng.chance(0.5) {
            push_page(
                &mut pages,
                next_page_id,
                format!("https://info.example.gov/policy/{slug}"),
                "info.example.gov".into(),
                format!("{term} — Policy Information"),
                "government official policy report",
                0.85,
                GeoScope::Global,
                PageKind::Web,
                None,
            );
        }

        // News pool: 3–6 national articles spread over the study window…
        let n_news = 3 + rng.below(4);
        for a in 0..n_news {
            let day = rng.below(NEWS_WINDOW_DAYS as usize) as u32;
            let outlet = [
                "daily-ledger",
                "national-wire",
                "the-observer",
                "metro-times",
            ][rng.below(4)];
            push_page(
                &mut pages,
                next_page_id,
                format!("https://{outlet}.example.com/{slug}/story-{a}"),
                format!("{outlet}.example.com"),
                format!(
                    "{term}: {}",
                    [
                        "Lawmakers Clash",
                        "What To Know",
                        "Debate Intensifies",
                        "Experts Weigh In",
                        "A National Divide"
                    ][a % 5]
                ),
                "news report coverage analysis",
                rng.range_f64(0.55, 0.85),
                GeoScope::Global,
                PageKind::News,
                Some(day),
            );
        }
        // …plus state-scoped regional coverage for roughly a third of the
        // states per topic (the raw material behind the paper's "6-18% of
        // controversial-query differences are due to News").
        for state in &geo.states {
            if rng.chance(0.35) {
                let abbrev = state.region.state_abbrev.clone().unwrap_or_default();
                let day = rng.below(NEWS_WINDOW_DAYS as usize) as u32;
                push_page(
                    &mut pages,
                    next_page_id,
                    format!(
                        "https://{}-herald.example.com/{slug}/local",
                        slugify(&state.region.name)
                    ),
                    format!("{}-herald.example.com", slugify(&state.region.name)),
                    format!("{} debate comes to {}", term, state.region.name),
                    "news local regional coverage",
                    rng.range_f64(0.40, 0.65),
                    GeoScope::State(abbrev),
                    PageKind::News,
                    Some(day),
                );
            }
        }

        // Per-state institutional pages for the three special terms.
        if STATE_INSTITUTION_TERMS.contains(term) {
            for state in &geo.states {
                let abbrev = state.region.state_abbrev.clone().unwrap_or_default();
                let title = match *term {
                    "Health" => format!("{} Department of Health", state.region.name),
                    "Republican Party" => format!("{} Republican Party", state.region.name),
                    _ => format!("{} Politics Today", state.region.name),
                };
                push_page(
                    &mut pages,
                    next_page_id,
                    format!(
                        "https://{}.{}.example.gov/",
                        slug,
                        slugify(&state.region.name)
                    ),
                    format!("{}.example.gov", slugify(&state.region.name)),
                    title,
                    "state official services information",
                    0.78,
                    GeoScope::State(abbrev),
                    PageKind::Web,
                    None,
                );
            }
        }
    }

    TopicSet { topics, pages }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> TopicSet {
        let geo = UsGeography::generate(Seed::new(2015));
        let mut next = 0;
        generate(&geo, Seed::new(2015), &mut next)
    }

    #[test]
    fn one_topic_per_controversial_term() {
        let s = set();
        assert_eq!(s.topics.len(), 87);
        for (topic, term) in s.topics.iter().zip(CONTROVERSIAL_TERMS) {
            assert_eq!(topic.term, term);
        }
    }

    #[test]
    fn every_topic_has_encyclopedia_and_news() {
        let s = set();
        for term in CONTROVERSIAL_TERMS {
            let slug = slugify(term);
            assert!(
                s.pages
                    .iter()
                    .any(|p| p.url.contains(&format!("/wiki/{slug}"))),
                "{term} missing encyclopedia"
            );
            let news = s
                .pages
                .iter()
                .filter(|p| p.kind == PageKind::News && p.tokens.starts_with(&tokenize(term)))
                .count();
            assert!(news >= 3, "{term} has {news} news articles");
        }
    }

    #[test]
    fn news_has_publication_days_in_window() {
        let s = set();
        for p in s.pages.iter().filter(|p| p.kind == PageKind::News) {
            let day = p.published_day.expect("news has a day");
            assert!(day < NEWS_WINDOW_DAYS);
        }
        for p in s.pages.iter().filter(|p| p.kind != PageKind::News) {
            assert!(p.published_day.is_none());
        }
    }

    #[test]
    fn special_terms_have_per_state_pages() {
        let s = set();
        for term in STATE_INSTITUTION_TERMS {
            let state_scoped = s
                .pages
                .iter()
                .filter(|p| {
                    matches!(p.geo, GeoScope::State(_))
                        && p.kind == PageKind::Web
                        && p.tokens.starts_with(&tokenize(term))
                })
                .count();
            assert_eq!(state_scoped, 51, "{term}: {state_scoped}");
        }
    }

    #[test]
    fn high_authority_pages_are_global() {
        // The *head* of a controversial SERP must be globally scoped pages —
        // that is why the paper sees almost no personalization for them.
        // (Regional coverage exists in volume, but only at tail authority.)
        let s = set();
        let head: Vec<&Page> = s.pages.iter().filter(|p| p.authority >= 0.8).collect();
        assert!(!head.is_empty());
        let global = head.iter().filter(|p| !p.geo.is_geographic()).count();
        assert!(
            global as f64 > 0.8 * head.len() as f64,
            "{global}/{} of head pages global",
            head.len()
        );
    }

    #[test]
    fn urls_unique_and_deterministic() {
        let s1 = set();
        let s2 = set();
        assert_eq!(s1.pages, s2.pages);
        let mut urls: Vec<&str> = s1.pages.iter().map(|p| p.url.as_str()).collect();
        let n = urls.len();
        urls.sort_unstable();
        urls.dedup();
        assert_eq!(urls.len(), n);
    }
}
