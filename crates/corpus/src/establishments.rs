//! Local establishments: chain-store outlets and generic facilities.
//!
//! Every local query term from the paper's Figure 3 must have candidate
//! results whose ranking depends on where the searcher stands. This module
//! synthesizes those candidates:
//!
//! * **brand outlets** (the 9 chains among the local terms) — each chain has
//!   one dominant national domain (navigational target) plus outlets near
//!   population centers;
//! * **generic facilities** (20 establishment types covering the remaining
//!   24 local terms) — schools, hospitals, banks, stations, … with one or
//!   more instances per locality and a denser cluster inside the Cuyahoga
//!   metro (where the county-granularity vantage points sit ~1 mile apart).
//!
//! Each establishment yields a [`Place`] record (consumed by the engine's
//! Maps vertical, ranked by distance × prominence) and an organic [`Page`]
//! (its website or directory listing, geo-scoped to its coordinate).

use crate::page::{GeoScope, Page, PageId, PageKind};
use crate::text::{slugify, tokenize};
use geoserp_geo::{Coord, DetRng, Seed, UsGeography};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a place within one corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PlaceId(pub u32);

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pl{}", self.0)
    }
}

/// A physical establishment: what the Maps vertical indexes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Place {
    /// The id.
    pub id: PlaceId,
    /// Display name, e.g. `"Starbucks – Lakeview"`, `"Lincoln High School"`.
    pub name: String,
    /// Category key, e.g. `"starbucks"`, `"school_high"`.
    pub category_key: String,
    /// Tokens the Maps vertical matches queries against.
    pub tokens: Vec<String>,
    /// The coord.
    pub coord: Coord,
    /// URL surfaced in the Maps card (the establishment's page).
    pub url: String,
    /// The organic page for this establishment.
    pub page_id: PageId,
    /// Query-independent prominence in `[0, 1]` (review volume stand-in).
    pub prominence: f64,
}

/// How instance names are formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameStyle {
    /// `"{Brand} – {Locality}"` (chains).
    Brand,
    /// `"{PoolName} {Suffix}"`, e.g. `"Lincoln Elementary School"`.
    NamedFacility,
    /// `"{Locality} {Suffix}"`, e.g. `"Cuyahoga Airport"`.
    LocalityFacility,
}

/// Static definition of an establishment category.
#[derive(Debug, Clone, Copy)]
pub struct CategoryDef {
    /// Stable key.
    pub key: &'static str,
    /// Display base (brand name or facility suffix).
    pub display: &'static str,
    /// True for the 9 chains.
    pub brand: bool,
    /// The name style.
    pub name_style: NameStyle,
    /// Extra tokens every instance carries (beyond its name tokens).
    pub extra_tokens: &'static [&'static str],
    /// Expected instances per state/county locality (Poisson-ish, capped 0–3).
    pub per_locality: f64,
    /// Instances placed inside the Cuyahoga metro cluster.
    pub metro_count: usize,
    /// TLD of standalone instance domains.
    pub tld: &'static str,
}

/// The nine chain brands among the paper's local terms.
pub const BRAND_CATEGORIES: [CategoryDef; 9] = [
    CategoryDef {
        key: "chipotle",
        display: "Chipotle",
        brand: true,
        name_style: NameStyle::Brand,
        extra_tokens: &["mexican", "restaurant", "fast", "food"],
        per_locality: 0.8,
        metro_count: 4,
        tld: "com",
    },
    CategoryDef {
        key: "starbucks",
        display: "Starbucks",
        brand: true,
        name_style: NameStyle::Brand,
        extra_tokens: &["coffee", "cafe"],
        per_locality: 1.0,
        metro_count: 5,
        tld: "com",
    },
    CategoryDef {
        key: "dairy-queen",
        display: "Dairy Queen",
        brand: true,
        name_style: NameStyle::Brand,
        extra_tokens: &["ice", "cream", "fast", "food"],
        per_locality: 0.7,
        metro_count: 3,
        tld: "com",
    },
    CategoryDef {
        key: "mcdonalds",
        display: "Mcdonalds",
        brand: true,
        name_style: NameStyle::Brand,
        extra_tokens: &["burger", "fast", "food", "restaurant"],
        per_locality: 1.0,
        metro_count: 5,
        tld: "com",
    },
    CategoryDef {
        key: "subway",
        display: "Subway",
        brand: true,
        name_style: NameStyle::Brand,
        extra_tokens: &["sandwich", "fast", "food", "restaurant"],
        per_locality: 1.0,
        metro_count: 5,
        tld: "com",
    },
    CategoryDef {
        key: "burger-king",
        display: "Burger King",
        brand: true,
        name_style: NameStyle::Brand,
        extra_tokens: &["burger", "fast", "food", "restaurant"],
        per_locality: 0.9,
        metro_count: 4,
        tld: "com",
    },
    CategoryDef {
        key: "kfc",
        display: "KFC",
        brand: true,
        name_style: NameStyle::Brand,
        extra_tokens: &["chicken", "fast", "food"],
        per_locality: 0.8,
        metro_count: 3,
        tld: "com",
    },
    CategoryDef {
        key: "wendys",
        display: "Wendy's",
        brand: true,
        name_style: NameStyle::Brand,
        extra_tokens: &["burger", "fast", "food"],
        per_locality: 0.9,
        metro_count: 4,
        tld: "com",
    },
    CategoryDef {
        key: "chick-fil-a",
        display: "Chick-fil-a",
        brand: true,
        name_style: NameStyle::Brand,
        extra_tokens: &["chicken", "fast", "food"],
        per_locality: 0.6,
        metro_count: 3,
        tld: "com",
    },
];

/// Twenty generic facility types covering the non-brand local terms
/// (including, via shared tokens, the umbrella terms "School", "Station",
/// "Rail", "Fast Food", "Burger", "Coffee").
pub const GENERIC_CATEGORIES: [CategoryDef; 20] = [
    CategoryDef {
        key: "post-office",
        display: "Post Office",
        brand: false,
        name_style: NameStyle::LocalityFacility,
        extra_tokens: &["post", "office", "mail"],
        per_locality: 1.0,
        metro_count: 7,
        tld: "gov",
    },
    CategoryDef {
        key: "polling-place",
        display: "Polling Place",
        brand: false,
        name_style: NameStyle::LocalityFacility,
        extra_tokens: &["polling", "place", "vote", "election"],
        per_locality: 1.0,
        metro_count: 9,
        tld: "gov",
    },
    CategoryDef {
        key: "train-station",
        display: "Train Station",
        brand: false,
        name_style: NameStyle::LocalityFacility,
        extra_tokens: &["train", "station", "rail", "transit"],
        per_locality: 0.5,
        metro_count: 5,
        tld: "org",
    },
    CategoryDef {
        key: "bus-station",
        display: "Bus Station",
        brand: false,
        name_style: NameStyle::LocalityFacility,
        extra_tokens: &["bus", "station", "transit"],
        per_locality: 0.8,
        metro_count: 8,
        tld: "org",
    },
    CategoryDef {
        key: "university",
        display: "University",
        brand: false,
        name_style: NameStyle::NamedFacility,
        extra_tokens: &["university", "campus", "education"],
        per_locality: 0.4,
        metro_count: 3,
        tld: "edu",
    },
    CategoryDef {
        key: "college",
        display: "Community College",
        brand: false,
        name_style: NameStyle::NamedFacility,
        extra_tokens: &["college", "campus", "education"],
        per_locality: 0.5,
        metro_count: 4,
        tld: "edu",
    },
    CategoryDef {
        key: "sushi",
        display: "Sushi Bar",
        brand: false,
        name_style: NameStyle::NamedFacility,
        extra_tokens: &["sushi", "japanese", "restaurant"],
        per_locality: 0.5,
        metro_count: 6,
        tld: "com",
    },
    CategoryDef {
        key: "football",
        display: "Football Stadium",
        brand: false,
        name_style: NameStyle::NamedFacility,
        extra_tokens: &["football", "stadium", "sports"],
        per_locality: 0.4,
        metro_count: 4,
        tld: "com",
    },
    CategoryDef {
        key: "bank",
        display: "Bank",
        brand: false,
        name_style: NameStyle::NamedFacility,
        extra_tokens: &["bank", "branch", "finance"],
        per_locality: 1.0,
        metro_count: 8,
        tld: "com",
    },
    CategoryDef {
        key: "burger-joint",
        display: "Burger Joint",
        brand: false,
        name_style: NameStyle::NamedFacility,
        extra_tokens: &["burger", "restaurant", "fast", "food"],
        per_locality: 0.7,
        metro_count: 6,
        tld: "com",
    },
    CategoryDef {
        key: "coffee-house",
        display: "Coffee House",
        brand: false,
        name_style: NameStyle::NamedFacility,
        extra_tokens: &["coffee", "cafe", "espresso"],
        per_locality: 0.8,
        metro_count: 7,
        tld: "com",
    },
    CategoryDef {
        key: "restaurant",
        display: "Restaurant",
        brand: false,
        name_style: NameStyle::NamedFacility,
        extra_tokens: &["restaurant", "dining"],
        per_locality: 1.0,
        metro_count: 9,
        tld: "com",
    },
    CategoryDef {
        key: "park",
        display: "Park",
        brand: false,
        name_style: NameStyle::NamedFacility,
        extra_tokens: &["park", "recreation", "trail"],
        per_locality: 1.0,
        metro_count: 8,
        tld: "org",
    },
    CategoryDef {
        key: "police-station",
        display: "Police Station",
        brand: false,
        name_style: NameStyle::LocalityFacility,
        extra_tokens: &["police", "station", "department"],
        per_locality: 1.0,
        metro_count: 6,
        tld: "gov",
    },
    CategoryDef {
        key: "fire-station",
        display: "Fire Station",
        brand: false,
        name_style: NameStyle::LocalityFacility,
        extra_tokens: &["fire", "station", "department"],
        per_locality: 1.0,
        metro_count: 7,
        tld: "gov",
    },
    CategoryDef {
        key: "school-elementary",
        display: "Elementary School",
        brand: false,
        name_style: NameStyle::NamedFacility,
        extra_tokens: &["elementary", "school", "education"],
        per_locality: 1.2,
        metro_count: 10,
        tld: "edu",
    },
    CategoryDef {
        key: "school-middle",
        display: "Middle School",
        brand: false,
        name_style: NameStyle::NamedFacility,
        extra_tokens: &["middle", "school", "education"],
        per_locality: 1.0,
        metro_count: 9,
        tld: "edu",
    },
    CategoryDef {
        key: "school-high",
        display: "High School",
        brand: false,
        name_style: NameStyle::NamedFacility,
        extra_tokens: &["high", "school", "education"],
        per_locality: 1.0,
        metro_count: 9,
        tld: "edu",
    },
    CategoryDef {
        key: "airport",
        display: "Airport",
        brand: false,
        name_style: NameStyle::LocalityFacility,
        extra_tokens: &["airport", "flights", "terminal"],
        per_locality: 0.4,
        metro_count: 2,
        tld: "com",
    },
    CategoryDef {
        key: "hospital",
        display: "Hospital",
        brand: false,
        name_style: NameStyle::LocalityFacility,
        extra_tokens: &["hospital", "medical", "emergency"],
        per_locality: 0.9,
        metro_count: 6,
        tld: "org",
    },
];

/// Name pool for `NamedFacility` instances.
const FACILITY_NAMES: [&str; 24] = [
    "Lincoln",
    "Washington",
    "Jefferson",
    "Roosevelt",
    "Franklin",
    "Madison",
    "Monroe",
    "Oakwood",
    "Maplewood",
    "Riverside",
    "Lakeview",
    "Hillcrest",
    "Fairview",
    "Brookside",
    "Sunnyside",
    "Westgate",
    "Eastwood",
    "Northfield",
    "Southgate",
    "Pleasant Valley",
    "Cedar Grove",
    "Willow Creek",
    "Stonebrook",
    "Meadowlark",
];

/// Radius (km) around a locality centroid where its establishments land.
const LOCALITY_RADIUS_KM: f64 = 12.0;
/// Radius (km) of the dense Cuyahoga metro cluster.
const METRO_RADIUS_KM: f64 = 6.0;

/// Result of establishment generation.
#[derive(Debug, Clone)]
pub struct EstablishmentSet {
    /// The places.
    pub places: Vec<Place>,
    /// The pages.
    pub pages: Vec<Page>,
}

/// Generate all establishments for a geography.
///
/// `next_page_id` is the corpus-wide page-id allocator; it is advanced for
/// every page created here.
pub fn generate(geo: &UsGeography, seed: Seed, next_page_id: &mut u32) -> EstablishmentSet {
    let mut places = Vec::new();
    let mut pages = Vec::new();
    let mut next_place = 0u32;

    let alloc_page = |next_page_id: &mut u32| {
        let id = PageId(*next_page_id);
        *next_page_id += 1;
        id
    };

    // Brand national domains: the navigational anchors.
    for cat in BRAND_CATEGORIES {
        let id = alloc_page(next_page_id);
        let domain = format!("{}.example.com", cat.key);
        let mut tokens = tokenize(cat.display);
        tokens.extend(cat.extra_tokens.iter().map(|t| t.to_string()));
        tokens.extend(tokenize("official site menu locations"));
        pages.push(Page::new(
            id,
            format!("https://www.{domain}/"),
            domain,
            format!("{} — Official Site", cat.display),
            tokens,
            0.95,
            GeoScope::Global,
            PageKind::Web,
        ));
    }

    // Third-party coverage per brand (encyclopedia, reviews, menus, jobs…):
    // the stable, globally scoped organic tail of a brand SERP. Without
    // these a brand query would only ever surface the brand's own domain.
    for cat in BRAND_CATEGORIES {
        let mut brand_rng = seed.derive("brand-coverage").derive(cat.key).rng();
        let third_party: [(&str, &str, &str); 8] = [
            ("encyclopedia.example.org", "wiki", "Encyclopedia"),
            ("finder.example.com", "find", "Store Finder"),
            ("menuprices.example.com", "menu", "Menu & Prices"),
            ("tastereviews.example.com", "reviews", "Reviews"),
            ("jobboard.example.com", "careers", "Careers"),
            ("couponclip.example.com", "deals", "Coupons & Deals"),
            ("foodblog.example.com", "story", "The Story Of"),
            ("bizwire.example.com", "company", "Company News"),
        ];
        for (site, path, label) in third_party {
            let id = alloc_page(next_page_id);
            let mut tokens = tokenize(cat.display);
            tokens.extend(cat.extra_tokens.iter().map(|t| t.to_string()));
            tokens.extend(tokenize(label));
            pages.push(Page::new(
                id,
                format!("https://{site}/{path}/{}", cat.key),
                site.to_string(),
                format!("{} — {label}", cat.display),
                tokens,
                brand_rng.range_f64(0.45, 0.80),
                GeoScope::Global,
                PageKind::Web,
            ));
        }
    }

    // Per-state directories for every generic category ("Ohio Hospital
    // Directory"): state-scoped pages that make two searchers in different
    // states diverge even where establishment coverage is thin.
    for cat in GENERIC_CATEGORIES {
        for state in &geo.states {
            let id = alloc_page(next_page_id);
            let abbrev = state.region.state_abbrev.clone().unwrap_or_default();
            let sslug = slugify(&state.region.name);
            let mut tokens = tokenize(cat.display);
            tokens.extend(cat.extra_tokens.iter().map(|t| t.to_string()));
            tokens.extend(tokenize(&state.region.name));
            tokens.push("directory".to_string());
            pages.push(Page::new(
                id,
                format!("https://{sslug}.example.gov/directory/{}", cat.key),
                format!("{sslug}.example.gov"),
                format!("{} {} Directory", state.region.name, cat.display),
                tokens,
                0.62,
                GeoScope::State(abbrev),
                PageKind::Web,
            ));
        }
    }

    // National info pages per generic category (encyclopedia / directory):
    // the stable global filler that appears in every locality's SERP.
    for cat in GENERIC_CATEGORIES {
        for (i, (site, auth)) in [
            ("encyclopedia.example.org", 0.90),
            ("finder.example.com", 0.72),
            ("national-directory.example.org", 0.66),
        ]
        .iter()
        .enumerate()
        {
            let id = alloc_page(next_page_id);
            let mut tokens = tokenize(cat.display);
            tokens.extend(cat.extra_tokens.iter().map(|t| t.to_string()));
            tokens.extend(tokenize("guide directory information list"));
            pages.push(Page::new(
                id,
                format!(
                    "https://{site}/{}/{}",
                    ["wiki", "find", "browse"][i],
                    cat.key
                ),
                (*site).to_string(),
                format!(
                    "{} — {}",
                    cat.display,
                    ["Encyclopedia", "Finder", "Directory"][i]
                ),
                tokens,
                *auth,
                GeoScope::Global,
                PageKind::Web,
            ));
        }
    }

    let mut emit_instance = |cat: &CategoryDef,
                             locality: &str,
                             state_abbrev: &str,
                             coord: Coord,
                             rng: &mut DetRng,
                             next_page_id: &mut u32,
                             places: &mut Vec<Place>,
                             pages: &mut Vec<Page>| {
        let serial = next_place;
        let name = match cat.name_style {
            NameStyle::Brand => format!("{} – {}", cat.display, locality),
            NameStyle::NamedFacility => {
                format!("{} {}", rng.pick(&FACILITY_NAMES), cat.display)
            }
            NameStyle::LocalityFacility => format!("{} {}", locality, cat.display),
        };
        let mut tokens = tokenize(&name);
        tokens.extend(cat.extra_tokens.iter().map(|t| t.to_string()));
        tokens.extend(tokenize(locality));

        let (url, domain) = if cat.brand {
            let domain = format!("{}.example.com", cat.key);
            (format!("https://www.{domain}/store/{serial}"), domain)
        } else {
            let domain = format!("{}-{}.example.{}", slugify(&name), serial, cat.tld);
            (format!("https://{domain}/"), domain)
        };
        let page_id = PageId(*next_page_id);
        *next_page_id += 1;
        let authority = if cat.brand {
            rng.range_f64(0.30, 0.45)
        } else {
            rng.range_f64(0.20, 0.50)
        };
        pages.push(Page::new(
            page_id,
            url.clone(),
            domain,
            name.clone(),
            tokens.clone(),
            authority,
            GeoScope::Local(coord),
            PageKind::Place,
        ));
        let prominence = if cat.brand {
            rng.range_f64(0.60, 0.90)
        } else {
            rng.range_f64(0.30, 0.70)
        };
        places.push(Place {
            id: PlaceId(serial),
            name,
            category_key: cat.key.to_string(),
            tokens,
            coord,
            url,
            page_id,
            prominence,
        });
        next_place += 1;
        let _ = state_abbrev;
    };

    let brands = BRAND_CATEGORIES;
    let generics = GENERIC_CATEGORIES;
    for cat in brands.iter().chain(generics.iter()) {
        let cat_seed = seed.derive("establishments").derive(cat.key);

        // Per-locality instances: states and Ohio counties.
        let localities: Vec<(&str, &str, Coord)> = geo
            .states
            .iter()
            .map(|l| {
                (
                    l.region.name.as_str(),
                    l.region.state_abbrev.as_deref().unwrap_or(""),
                    l.coord,
                )
            })
            .chain(geo.ohio_counties.iter().map(|l| {
                (
                    l.region.name.as_str(),
                    l.region.state_abbrev.as_deref().unwrap_or(""),
                    l.coord,
                )
            }))
            .collect();

        let state_count = geo.states.len();
        for (i, (name, st, center)) in localities.iter().enumerate() {
            let mut rng = cat_seed.derive_idx("locality", i as u64).rng();
            // Draw the instance count: floor(per_locality) guaranteed, plus a
            // Bernoulli fractional part. States are whole metros, not county
            // seats, so they carry ~3× the instances over a wider radius —
            // this density is what makes national-granularity vantage points
            // differ *more* than state-granularity ones (paper Fig. 5).
            let is_state = i < state_count;
            let expected = if is_state {
                cat.per_locality * 4.0
            } else {
                cat.per_locality
            };
            let base = expected.floor() as usize;
            let extra = usize::from(rng.chance(expected - base as f64));
            let cap = if is_state { 8 } else { 3 };
            let count = (base + extra).min(cap);
            let radius = if is_state { 25.0 } else { LOCALITY_RADIUS_KM };
            for _ in 0..count {
                let coord =
                    center.destination(rng.range_f64(0.0, 360.0), rng.range_f64(0.5, radius));
                emit_instance(
                    cat,
                    name,
                    st,
                    coord,
                    &mut rng,
                    next_page_id,
                    &mut places,
                    &mut pages,
                );
            }
        }

        // Dense Cuyahoga metro cluster (around the county-granularity
        // vantage points).
        let metro_center = geoserp_geo::us::CUYAHOGA_CENTROID;
        let mut rng = cat_seed.derive("metro").rng();
        for _ in 0..cat.metro_count {
            let coord = metro_center.destination(
                rng.range_f64(0.0, 360.0),
                rng.range_f64(0.2, METRO_RADIUS_KM),
            );
            emit_instance(
                cat,
                "Cleveland",
                "OH",
                coord,
                &mut rng,
                next_page_id,
                &mut places,
                &mut pages,
            );
        }
    }

    EstablishmentSet { places, pages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoserp_geo::us::CUYAHOGA_CENTROID;

    fn set() -> EstablishmentSet {
        let geo = UsGeography::generate(Seed::new(2015));
        let mut next = 0;
        generate(&geo, Seed::new(2015), &mut next)
    }

    #[test]
    fn generation_is_deterministic() {
        let geo = UsGeography::generate(Seed::new(8));
        let mut n1 = 0;
        let a = generate(&geo, Seed::new(8), &mut n1);
        let mut n2 = 0;
        let b = generate(&geo, Seed::new(8), &mut n2);
        assert_eq!(a.places, b.places);
        assert_eq!(a.pages, b.pages);
        assert_eq!(n1, n2);
    }

    #[test]
    fn page_ids_are_dense_and_unique() {
        let s = set();
        let mut ids: Vec<u32> = s.pages.iter().map(|p| p.id.0).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn urls_are_unique() {
        let s = set();
        let mut urls: Vec<&str> = s.pages.iter().map(|p| p.url.as_str()).collect();
        let n = urls.len();
        urls.sort_unstable();
        urls.dedup();
        assert_eq!(urls.len(), n, "duplicate establishment URLs");
    }

    #[test]
    fn every_place_points_at_a_place_page() {
        let s = set();
        let by_id: std::collections::HashMap<u32, &Page> =
            s.pages.iter().map(|p| (p.id.0, p)).collect();
        for pl in &s.places {
            let page = by_id.get(&pl.page_id.0).expect("page exists");
            assert_eq!(page.kind, PageKind::Place);
            assert_eq!(page.url, pl.url);
        }
    }

    #[test]
    fn brand_outlets_live_on_brand_domain() {
        let s = set();
        let starbucks: Vec<&Place> = s
            .places
            .iter()
            .filter(|p| p.category_key == "starbucks")
            .collect();
        assert!(!starbucks.is_empty());
        for p in starbucks {
            assert!(p.url.contains("starbucks.example.com"), "{}", p.url);
        }
    }

    #[test]
    fn metro_cluster_is_dense_near_cuyahoga() {
        let s = set();
        for cat in GENERIC_CATEGORIES {
            let nearby = s
                .places
                .iter()
                .filter(|p| p.category_key == cat.key)
                .filter(|p| p.coord.haversine_km(CUYAHOGA_CENTROID) < METRO_RADIUS_KM + 1.0)
                .count();
            assert!(
                nearby >= cat.metro_count,
                "{}: only {nearby} near metro (want ≥ {})",
                cat.key,
                cat.metro_count
            );
        }
    }

    #[test]
    fn umbrella_terms_have_token_coverage() {
        // "School", "Station", "Rail", "Fast Food", "Burger", "Coffee" have
        // no dedicated category but must match instances by token.
        let s = set();
        for term in ["school", "station", "rail", "fast", "burger", "coffee"] {
            let hits = s
                .places
                .iter()
                .filter(|p| p.tokens.iter().any(|t| t == term))
                .count();
            assert!(hits > 10, "term '{term}' matches only {hits} places");
        }
    }

    #[test]
    fn national_brand_pages_are_navigational() {
        let s = set();
        let nav: Vec<&Page> = s
            .pages
            .iter()
            .filter(|p| p.kind == PageKind::Web && p.authority > 0.9)
            .collect();
        // 9 brand homepages + 20 encyclopedia pages at 0.90 are ties; require
        // at least the 9 brand pages strictly above 0.9.
        assert!(nav.len() >= 9, "{}", nav.len());
        assert!(nav.iter().any(|p| p.title.contains("Starbucks")));
    }

    #[test]
    fn place_count_is_reasonable() {
        let s = set();
        // 29 categories over ~139 localities plus metro clusters: expect a
        // few thousand places but not an explosion.
        assert!(
            (2_000..40_000).contains(&s.places.len()),
            "places = {}",
            s.places.len()
        );
    }
}
