//! Corpus assembly: the [`WebCorpus`] ties together establishments, topic
//! pages, politician pages, and the query corpus, with a single corpus-wide
//! page-id space.

use crate::establishments::{self, Place};
use crate::page::{GeoScope, Page, PageId, PageKind};
use crate::politicians::{OfficeLevel, Roster};
use crate::queries::QueryCorpus;
use crate::text::{slugify, tokenize};
use crate::topics::{self, Topic, NEWS_WINDOW_DAYS};
use geoserp_geo::{Seed, UsGeography};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The complete synthetic web plus the study's query corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WebCorpus {
    seed_value: u64,
    /// Every page, indexable by the engine. `pages[i].id == PageId(i)`.
    pub pages: Vec<Page>,
    /// Every physical establishment (Maps-vertical candidates).
    pub places: Vec<Place>,
    /// The 120-politician roster.
    pub roster: Roster,
    /// The 240-query corpus.
    pub queries: QueryCorpus,
    /// The 87 controversial topics.
    pub topics: Vec<Topic>,
}

impl WebCorpus {
    /// Generate the full corpus for a geography. Deterministic in `seed`.
    pub fn generate(geo: &UsGeography, seed: Seed) -> Self {
        let mut next_page_id: u32 = 0;

        let est =
            establishments::generate(geo, seed.derive("establishments-root"), &mut next_page_id);
        let topic_set = topics::generate(geo, seed.derive("topics-root"), &mut next_page_id);
        let roster = Roster::generate(seed.derive("roster-root"));
        let pol_pages = politician_pages(
            &roster,
            geo,
            seed.derive("polpages-root"),
            &mut next_page_id,
        );

        let mut pages = est.pages;
        pages.extend(topic_set.pages);
        pages.extend(pol_pages);
        pages.sort_by_key(|p| p.id.0);
        debug_assert!(pages.iter().enumerate().all(|(i, p)| p.id.0 as usize == i));

        let queries = QueryCorpus::paper_defaults(&roster);

        WebCorpus {
            seed_value: seed.value(),
            pages,
            places: est.places,
            roster,
            queries,
            topics: topic_set.topics,
        }
    }

    /// Generate the corpus at `scale` times its base page count.
    ///
    /// `scale == 1` returns exactly [`WebCorpus::generate`]'s corpus —
    /// byte-identical, because the tail generator draws from its own
    /// derived seed (`"scale-tail"`) and the base generation path is not
    /// touched. Larger scales append `(scale − 1) × base` deterministic
    /// filler pages: plain web documents whose tokens are drawn from the
    /// query corpus's own vocabulary (local terms, controversial terms,
    /// roster names), so scaled posting lists grow where queries actually
    /// land and top-k early termination is exercised for real. Places,
    /// roster, queries, and topics are unchanged — scaling stresses the
    /// *index*, not the study design.
    pub fn generate_scaled(geo: &UsGeography, seed: Seed, scale: u32) -> Self {
        let mut corpus = Self::generate(geo, seed);
        if scale <= 1 {
            return corpus;
        }
        let base_len = corpus.pages.len();
        let tail_len = base_len * (scale as usize - 1);
        let mut rng = seed.derive("scale-tail").rng();

        // Vocabulary pool the tail draws from: every token queries can
        // hit, plus generic filler so tail pages are not pure query soup.
        let mut pool: Vec<String> = Vec::new();
        for term in crate::queries::LOCAL_TERMS
            .iter()
            .chain(crate::queries::CONTROVERSIAL_TERMS.iter())
        {
            pool.extend(tokenize(term));
        }
        for pol in corpus.roster.all() {
            pool.extend(tokenize(&pol.name));
        }
        for filler in [
            "guide",
            "review",
            "best",
            "near",
            "top",
            "local",
            "deals",
            "news",
            "blog",
            "forum",
            "directory",
            "compare",
            "prices",
            "open",
            "hours",
            "map",
            "history",
            "tips",
            "faq",
            "about",
        ] {
            pool.push(filler.to_string());
        }
        pool.sort();
        pool.dedup();

        let state_abbrevs: Vec<String> = geo
            .states
            .iter()
            .filter_map(|s| s.region.state_abbrev.clone())
            .collect();
        for i in 0..tail_len {
            let id = PageId(corpus.pages.len() as u32);
            let n_tokens = 3 + rng.below(6);
            let mut toks = Vec::with_capacity(n_tokens);
            for _ in 0..n_tokens {
                toks.push(pool[rng.below(pool.len())].clone());
            }
            let title = toks.join(" ");
            // ~1024 tail domains so the per-domain cap stays meaningful.
            let domain = format!("tail{}.example.com", i % 1024);
            let url = format!("https://{domain}/p/{i}");
            let geo_scope = if rng.chance(0.8) {
                GeoScope::Global
            } else {
                GeoScope::State(state_abbrevs[rng.below(state_abbrevs.len())].clone())
            };
            let authority = rng.range_f64(0.05, 0.95);
            corpus.pages.push(Page::new(
                id,
                url,
                domain,
                title,
                toks,
                authority,
                geo_scope,
                PageKind::Web,
            ));
        }
        debug_assert!(corpus
            .pages
            .iter()
            .enumerate()
            .all(|(i, p)| p.id.0 as usize == i));
        corpus
    }

    /// The seed this corpus was generated from.
    pub fn seed(&self) -> Seed {
        Seed::new(self.seed_value)
    }

    /// Page lookup by id. Panics on an id from another corpus.
    pub fn page(&self, id: PageId) -> &Page {
        &self.pages[id.0 as usize]
    }

    /// Number of pages of each kind, for diagnostics.
    pub fn kind_histogram(&self) -> HashMap<PageKind, usize> {
        let mut h = HashMap::new();
        for p in &self.pages {
            *h.entry(p.kind).or_insert(0) += 1;
        }
        h
    }
}

/// Generate pages covering every politician in the roster.
///
/// Coverage by office level mirrors reality closely enough to reproduce the
/// paper's "politicians are essentially unaffected by geography" finding:
/// the high-authority pages (encyclopedia, official site) are globally
/// scoped, while local news coverage is scoped to the politician's home
/// state/county. Common-named politicians additionally get *unrelated*
/// same-named entities (a football coach, a company founder, a local
/// plumber), the ambiguity source behind the paper's "Bill Johnson"/"Tim
/// Ryan" outliers.
fn politician_pages(
    roster: &Roster,
    geo: &UsGeography,
    seed: Seed,
    next_page_id: &mut u32,
) -> Vec<Page> {
    let mut pages = Vec::new();

    for (pi, pol) in roster.all().iter().enumerate() {
        let pseed = seed.derive_idx("politician", pi as u64);
        let mut rng = pseed.rng();
        let slug = slugify(&pol.name);

        let push = |pages: &mut Vec<Page>,
                    next_page_id: &mut u32,
                    url: String,
                    domain: String,
                    title: String,
                    extra: &str,
                    authority: f64,
                    geo_scope: GeoScope,
                    kind: PageKind,
                    day: Option<u32>| {
            let id = PageId(*next_page_id);
            *next_page_id += 1;
            let mut toks = tokenize(&title);
            toks.extend(tokenize(extra));
            let mut page = Page::new(id, url, domain, title, toks, authority, geo_scope, kind);
            if let Some(d) = day {
                page = page.with_published_day(d);
            }
            pages.push(page);
        };

        // Authority of the top pages scales with office level.
        let (enc_auth, official_auth, office_label) = match pol.level {
            OfficeLevel::National => (0.97, 0.95, "President / Vice President"),
            OfficeLevel::UsCongressOhio | OfficeLevel::UsCongressOther => {
                (0.90, 0.85, "Member of Congress")
            }
            OfficeLevel::StateLegislature => (0.70, 0.65, "Ohio General Assembly"),
            OfficeLevel::CountyBoard => (0.55, 0.50, "Cuyahoga County Board"),
        };

        // Encyclopedia entry.
        push(
            &mut pages,
            next_page_id,
            format!("https://encyclopedia.example.org/wiki/{slug}"),
            "encyclopedia.example.org".into(),
            format!("{} — Encyclopedia", pol.name),
            &format!("politician biography {office_label}"),
            enc_auth,
            GeoScope::Global,
            PageKind::Web,
            None,
        );

        // Official site.
        let official_domain = match pol.level {
            OfficeLevel::National => "whitehouse.example.gov".to_string(),
            OfficeLevel::UsCongressOhio | OfficeLevel::UsCongressOther => {
                "congress.example.gov".to_string()
            }
            OfficeLevel::StateLegislature => "legislature.ohio.example.gov".to_string(),
            OfficeLevel::CountyBoard => "board.cuyahoga.example.gov".to_string(),
        };
        push(
            &mut pages,
            next_page_id,
            format!("https://{official_domain}/members/{slug}"),
            official_domain,
            format!("{} — Official Site", pol.name),
            &format!("official {office_label} contact offices"),
            official_auth,
            GeoScope::Global,
            PageKind::Web,
            None,
        );

        // Campaign site.
        push(
            &mut pages,
            next_page_id,
            format!("https://{slug}-for-office.example.com/"),
            format!("{slug}-for-office.example.com"),
            format!("{} for {}", pol.name, office_label),
            "campaign donate volunteer issues",
            rng.range_f64(0.30, 0.50),
            GeoScope::Global,
            PageKind::Web,
            None,
        );

        // Social profile.
        push(
            &mut pages,
            next_page_id,
            format!("https://chirper.example.com/{slug}"),
            "chirper.example.com".into(),
            format!("{} (@{slug}) — Chirper", pol.name),
            "social posts profile",
            rng.range_f64(0.35, 0.55),
            GeoScope::Global,
            PageKind::Web,
            None,
        );

        // Civic-directory coverage: voting records, bios, donations, press
        // archives — the globally scoped third-party tail every politician
        // SERP carries.
        let civic: [(&str, &str, &str); 4] = [
            ("votetracker.example.org", "record", "Voting Record"),
            ("civicpedia.example.org", "bio", "Civicpedia"),
            ("donordata.example.org", "finance", "Campaign Finance"),
            ("pressarchive.example.com", "clips", "Press Archive"),
        ];
        for (site, path, label) in civic {
            push(
                &mut pages,
                next_page_id,
                format!("https://{site}/{path}/{slug}"),
                site.to_string(),
                format!("{} — {label}", pol.name),
                "politician directory record profile",
                rng.range_f64(0.45, 0.70),
                GeoScope::Global,
                PageKind::Web,
                None,
            );
        }

        // Home-region news coverage (state- or county-scoped).
        let n_local_news = 1 + rng.below(3);
        for a in 0..n_local_news {
            let day = rng.below(NEWS_WINDOW_DAYS as usize) as u32;
            let geo_scope = match (&pol.level, &pol.home_county) {
                (OfficeLevel::CountyBoard, Some(county)) => {
                    GeoScope::County(pol.state_abbrev.clone(), county.clone())
                }
                _ => GeoScope::State(pol.state_abbrev.clone()),
            };
            let state_name = geo
                .states
                .iter()
                .find(|s| s.region.state_abbrev.as_deref() == Some(pol.state_abbrev.as_str()))
                .map(|s| s.region.name.clone())
                .unwrap_or_else(|| pol.state_abbrev.clone());
            push(
                &mut pages,
                next_page_id,
                format!(
                    "https://{}-herald.example.com/politics/{slug}-{a}",
                    slugify(&state_name)
                ),
                format!("{}-herald.example.com", slugify(&state_name)),
                format!(
                    "{} {}",
                    pol.name,
                    ["holds town hall", "introduces bill", "responds to critics"][a % 3]
                ),
                "news politics local coverage",
                rng.range_f64(0.40, 0.65),
                geo_scope,
                PageKind::News,
                Some(day),
            );
        }

        // National news for national figures and Congress.
        if matches!(
            pol.level,
            OfficeLevel::National | OfficeLevel::UsCongressOhio | OfficeLevel::UsCongressOther
        ) {
            let n = 1 + rng.below(2);
            for a in 0..n {
                let day = rng.below(NEWS_WINDOW_DAYS as usize) as u32;
                push(
                    &mut pages,
                    next_page_id,
                    format!("https://national-wire.example.com/politics/{slug}-{a}"),
                    "national-wire.example.com".into(),
                    format!("{} in the news", pol.name),
                    "news national politics",
                    rng.range_f64(0.55, 0.80),
                    GeoScope::Global,
                    PageKind::News,
                    Some(day),
                );
            }
        }

        // Ambiguity: unrelated same-named entities for common names. Two
        // nationally famous namesakes (stable everywhere) plus one regional
        // namesake in each of several states — searching the name from
        // different states surfaces *different people*, which is exactly the
        // §3.2 "Bill Johnson"/"Tim Ryan" ambiguity effect.
        if pol.common_name {
            let globals: [(&str, f64); 2] = [
                ("Head Football Coach", rng.range_f64(0.60, 0.85)),
                ("Founder & CEO", rng.range_f64(0.55, 0.80)),
            ];
            for (i, (persona, auth)) in globals.into_iter().enumerate() {
                push(
                    &mut pages,
                    next_page_id,
                    format!("https://{slug}-{i}.example.com/"),
                    format!("{slug}-{i}.example.com"),
                    format!("{} — {persona}", pol.name),
                    "unrelated namesake profile",
                    auth,
                    GeoScope::Global,
                    PageKind::Web,
                    None,
                );
            }
            let professions = [
                "Plumbing & Heating",
                "Realty Group",
                "Attorney At Law",
                "Auto Sales",
                "Family Dentistry",
                "Orthopedic Clinic",
                "Insurance Agency",
                "Landscaping",
            ];
            let state_picks = rng.sample_indices(geo.states.len(), 20);
            for (i, si) in state_picks.into_iter().enumerate() {
                let state = &geo.states[si];
                let abbrev = state.region.state_abbrev.clone().unwrap_or_default();
                push(
                    &mut pages,
                    next_page_id,
                    format!(
                        "https://{slug}-{}.example.com/",
                        slugify(&state.region.name)
                    ),
                    format!("{slug}-{}.example.com", slugify(&state.region.name)),
                    format!(
                        "{} {} ({})",
                        pol.name,
                        professions[i % professions.len()],
                        state.region.name
                    ),
                    "unrelated namesake local business",
                    rng.range_f64(0.60, 0.85),
                    GeoScope::State(abbrev),
                    PageKind::Web,
                    None,
                );
            }
        }
    }

    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::QueryCategory;

    fn corpus() -> WebCorpus {
        let geo = UsGeography::generate(Seed::new(2015));
        WebCorpus::generate(&geo, Seed::new(2015))
    }

    #[test]
    fn generation_is_deterministic() {
        let geo = UsGeography::generate(Seed::new(4));
        let a = WebCorpus::generate(&geo, Seed::new(4));
        let b = WebCorpus::generate(&geo, Seed::new(4));
        assert_eq!(a.pages, b.pages);
        assert_eq!(a.places, b.places);
    }

    #[test]
    fn page_ids_are_dense() {
        let c = corpus();
        for (i, p) in c.pages.iter().enumerate() {
            assert_eq!(p.id.0 as usize, i);
        }
    }

    #[test]
    fn urls_are_unique_corpus_wide() {
        let c = corpus();
        let mut urls: Vec<&str> = c.pages.iter().map(|p| p.url.as_str()).collect();
        let n = urls.len();
        urls.sort_unstable();
        urls.dedup();
        assert_eq!(urls.len(), n, "{} duplicate URLs", n - urls.len());
    }

    #[test]
    fn corpus_has_all_kinds() {
        let c = corpus();
        let h = c.kind_histogram();
        assert!(h[&PageKind::Web] > 500);
        assert!(h[&PageKind::Place] > 2_000);
        assert!(h[&PageKind::News] > 300);
    }

    #[test]
    fn query_corpus_is_complete() {
        let c = corpus();
        assert_eq!(c.queries.len(), 240);
        assert_eq!(c.queries.of(QueryCategory::Politician).len(), 120);
    }

    #[test]
    fn every_politician_has_pages() {
        let c = corpus();
        for pol in c.roster.all() {
            let slug = slugify(&pol.name);
            let count = c
                .pages
                .iter()
                .filter(|p| p.url.contains(&format!("/wiki/{slug}")))
                .count();
            assert!(count >= 1, "{} missing encyclopedia page", pol.name);
        }
    }

    #[test]
    fn common_names_have_namesake_pages() {
        let c = corpus();
        let bj_pages: Vec<&Page> = c
            .pages
            .iter()
            .filter(|p| p.title.starts_with("Bill Johnson"))
            .collect();
        assert!(
            bj_pages.iter().any(|p| p.title.contains("Football Coach")),
            "no namesake: {:?}",
            bj_pages.iter().map(|p| &p.title).collect::<Vec<_>>()
        );
    }

    #[test]
    fn county_board_news_is_county_scoped() {
        let c = corpus();
        let board: Vec<&crate::politicians::Politician> =
            c.roster.at_level(OfficeLevel::CountyBoard).collect();
        let slugs: Vec<String> = board.iter().map(|p| slugify(&p.name)).collect();
        let mut found = false;
        for p in &c.pages {
            if p.kind == PageKind::News && slugs.iter().any(|s| p.url.contains(s.as_str())) {
                if let GeoScope::County(st, county) = &p.geo {
                    assert_eq!(st, "OH");
                    assert_eq!(county, "Cuyahoga");
                    found = true;
                }
            }
        }
        assert!(found, "no county-scoped board coverage found");
    }

    #[test]
    fn page_lookup_roundtrip() {
        let c = corpus();
        let p = &c.pages[100];
        assert_eq!(c.page(p.id), p);
    }

    #[test]
    fn corpus_scale_is_sane() {
        let c = corpus();
        assert!(
            (4_000..60_000).contains(&c.pages.len()),
            "pages = {}",
            c.pages.len()
        );
    }

    #[test]
    fn scale_one_is_byte_identical_to_generate() {
        let geo = UsGeography::generate(Seed::new(2015));
        let base = WebCorpus::generate(&geo, Seed::new(2015));
        let scaled = WebCorpus::generate_scaled(&geo, Seed::new(2015), 1);
        assert_eq!(base.pages, scaled.pages);
        assert_eq!(base.places, scaled.places);
        assert_eq!(base.topics, scaled.topics);
        // Scale 0 is clamped to the base world too.
        let zero = WebCorpus::generate_scaled(&geo, Seed::new(2015), 0);
        assert_eq!(base.pages.len(), zero.pages.len());
    }

    #[test]
    fn scaled_generation_is_deterministic_and_dense() {
        let geo = UsGeography::generate(Seed::new(7));
        let a = WebCorpus::generate_scaled(&geo, Seed::new(7), 3);
        let b = WebCorpus::generate_scaled(&geo, Seed::new(7), 3);
        assert_eq!(a.pages, b.pages);
        let base = WebCorpus::generate(&geo, Seed::new(7));
        assert_eq!(a.pages.len(), base.pages.len() * 3);
        for (i, p) in a.pages.iter().enumerate() {
            assert_eq!(p.id.0 as usize, i);
        }
        // The base prefix is untouched by scaling.
        assert_eq!(&a.pages[..base.pages.len()], &base.pages[..]);
        assert_eq!(a.places, base.places);
    }

    #[test]
    fn scaled_urls_stay_unique_corpus_wide() {
        let geo = UsGeography::generate(Seed::new(7));
        let c = WebCorpus::generate_scaled(&geo, Seed::new(7), 2);
        let mut urls: Vec<&str> = c.pages.iter().map(|p| p.url.as_str()).collect();
        let n = urls.len();
        urls.sort_unstable();
        urls.dedup();
        assert_eq!(urls.len(), n, "{} duplicate URLs", n - urls.len());
    }

    #[test]
    fn tail_pages_intersect_the_query_vocabulary() {
        let geo = UsGeography::generate(Seed::new(2015));
        let c = WebCorpus::generate_scaled(&geo, Seed::new(2015), 2);
        let base_len = WebCorpus::generate(&geo, Seed::new(2015)).pages.len();
        let tail = &c.pages[base_len..];
        assert!(!tail.is_empty());
        let coffee_hits = tail
            .iter()
            .filter(|p| p.tokens.iter().any(|t| t == "coffee"))
            .count();
        assert!(coffee_hits > 0, "tail never mentions a local term");
        assert!(tail.iter().all(|p| p.kind == PageKind::Web));
    }
}
