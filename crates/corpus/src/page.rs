//! The unit of the synthetic web: a [`Page`] with URL, tokens, authority, a
//! geographic scope, and a kind (web / place / news).
//!
//! The engine's organic index ranks `Web` and `Place` pages; the News
//! vertical draws from `News` pages; the Maps vertical draws from
//! [`crate::Place`] records (which point back at a `Place` page's URL).

use geoserp_geo::Coord;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable page identifier within one corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u32);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// What part of the SERP a page can appear in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageKind {
    /// Ordinary web page: organic results.
    Web,
    /// A local establishment's page: organic results and Maps-card links.
    Place,
    /// A news article: organic results and News-card links.
    News,
}

/// Geographic relevance scope of a page.
///
/// The geo-aware ranker boosts pages whose scope contains / is near the
/// searching user; `Global` pages score identically everywhere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GeoScope {
    /// Relevant everywhere (encyclopedias, national sites, most news).
    Global,
    /// Relevant within one US state (state government, state news).
    State(String),
    /// Relevant within one county of a state: `(state_abbrev, county_name)`.
    County(String, String),
    /// Relevant near a physical point (an establishment's site).
    Local(Coord),
}

impl GeoScope {
    /// True if this scope has any geographic restriction at all.
    pub fn is_geographic(&self) -> bool {
        !matches!(self, GeoScope::Global)
    }
}

/// One page of the synthetic web.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Page {
    /// The id.
    pub id: PageId,
    /// Full URL; unique within a corpus. The SERP metrics compare URLs.
    pub url: String,
    /// Registered domain, e.g. `starbucks.com` (used for navigational boost
    /// and per-domain result diversity).
    pub domain: String,
    /// Display title (what a SERP card shows).
    pub title: String,
    /// Indexable tokens: title + body keywords, already tokenized.
    pub tokens: Vec<String>,
    /// Query-independent authority in `[0, 1]` (PageRank stand-in).
    pub authority: f64,
    /// Geographic scope.
    pub geo: GeoScope,
    /// SERP role.
    pub kind: PageKind,
    /// Publication day for `News` pages (simulation day index), `None`
    /// otherwise. The News vertical prefers fresh articles.
    pub published_day: Option<u32>,
}

impl Page {
    /// Construct a page; callers must ensure URL uniqueness at corpus level.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: PageId,
        url: impl Into<String>,
        domain: impl Into<String>,
        title: impl Into<String>,
        tokens: Vec<String>,
        authority: f64,
        geo: GeoScope,
        kind: PageKind,
    ) -> Self {
        let authority = authority.clamp(0.0, 1.0);
        Page {
            id,
            url: url.into(),
            domain: domain.into(),
            title: title.into(),
            tokens,
            authority,
            geo,
            kind,
            published_day: None,
        }
    }

    /// Mark as a news article published on the given simulation day.
    pub fn with_published_day(mut self, day: u32) -> Self {
        self.published_day = Some(day);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::tokenize;

    fn page() -> Page {
        Page::new(
            PageId(1),
            "https://example.org/x",
            "example.org",
            "Example",
            tokenize("Example page about schools"),
            0.5,
            GeoScope::Global,
            PageKind::Web,
        )
    }

    #[test]
    fn authority_is_clamped() {
        let p = Page::new(
            PageId(0),
            "u",
            "d",
            "t",
            vec![],
            7.0,
            GeoScope::Global,
            PageKind::Web,
        );
        assert_eq!(p.authority, 1.0);
        let p = Page::new(
            PageId(0),
            "u",
            "d",
            "t",
            vec![],
            -1.0,
            GeoScope::Global,
            PageKind::Web,
        );
        assert_eq!(p.authority, 0.0);
    }

    #[test]
    fn geo_scope_classification() {
        assert!(!GeoScope::Global.is_geographic());
        assert!(GeoScope::State("OH".into()).is_geographic());
        assert!(GeoScope::County("OH".into(), "Cuyahoga".into()).is_geographic());
        assert!(GeoScope::Local(Coord::new(41.0, -81.0)).is_geographic());
    }

    #[test]
    fn published_day_builder() {
        let p = page().with_published_day(3);
        assert_eq!(p.published_day, Some(3));
        assert_eq!(page().published_day, None);
    }

    #[test]
    fn page_id_display() {
        assert_eq!(PageId(7).to_string(), "p7");
    }
}
