//! The wire format: a compact, line-oriented, HTML-like markup for mobile
//! SERPs, and its strict parser.
//!
//! Format (one element per line):
//!
//! ```text
//! <serp q="starbucks" gps="41.499300,-81.694400" dc="dc1">
//! <card type="organic">
//! <r url="https://…" title="Starbucks — Official Site"/>
//! </card>
//! <card type="maps">
//! <r url="https://…" title="Starbucks – Lakeview"/>
//! <r url="https://…" title="Starbucks – Downtown"/>
//! </card>
//! <footer location="Cleveland, OH"/>
//! </serp>
//! ```
//!
//! Attribute values are escaped (`&quot; &amp; &lt; &gt;`). The parser is
//! strict: structural damage (the fault injector's single-bit corruption,
//! truncation, attribute loss) yields a [`ParseError`] rather than a silently
//! wrong page, so the crawler knows to retry — mirroring how a real scraper
//! fails on mangled HTML.

use crate::model::{Card, CardType, SerpPage};
use std::fmt;

/// Why a SERP body failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The body didn't start with a `<serp …>` header.
    MissingHeader,
    /// A required attribute is absent or malformed.
    BadAttribute {
        /// 1-based line of the offending element.
        line: usize,
        /// The attribute that was expected.
        attr: &'static str,
    },
    /// A line matched no known element.
    UnknownElement {
        /// 1-based offending line.
        line: usize,
    },
    /// `<r …/>` outside any open card, or `</card>` without `<card>`.
    StructureViolation {
        /// 1-based offending line.
        line: usize,
    },
    /// The body ended before `</serp>`.
    Truncated,
    /// An unknown card type.
    BadCardType {
        /// 1-based offending line.
        line: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing <serp> header"),
            ParseError::BadAttribute { line, attr } => {
                write!(f, "line {line}: missing/malformed attribute {attr}")
            }
            ParseError::UnknownElement { line } => write!(f, "line {line}: unknown element"),
            ParseError::StructureViolation { line } => {
                write!(f, "line {line}: element not allowed here")
            }
            ParseError::Truncated => write!(f, "body truncated before </serp>"),
            ParseError::BadCardType { line } => write!(f, "line {line}: unknown card type"),
        }
    }
}

impl std::error::Error for ParseError {}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let (entity, advance) = if rest.starts_with("&amp;") {
            ('&', 5)
        } else if rest.starts_with("&quot;") {
            ('"', 6)
        } else if rest.starts_with("&lt;") {
            ('<', 4)
        } else if rest.starts_with("&gt;") {
            ('>', 4)
        } else {
            out.push('&');
            rest = &rest[1..];
            continue;
        };
        out.push(entity);
        rest = &rest[advance..];
    }
    out.push_str(rest);
    out
}

/// Extract `name="…"` from a tag line. Values must not contain raw quotes
/// (they are escaped at render time).
fn attr(line: &str, name: &str) -> Option<String> {
    let needle = format!("{name}=\"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')? + start;
    Some(unescape(&line[start..end]))
}

impl SerpPage {
    /// Render to the wire format.
    pub fn render(&self) -> String {
        // Pre-size: ~96 bytes per entry is typical.
        let entries: usize = self.cards.iter().map(|c| c.entries.len()).sum();
        let mut out = String::with_capacity(128 + entries * 96);
        out.push_str("<serp q=\"");
        out.push_str(&escape(&self.query));
        out.push('"');
        if let Some(gps) = &self.gps {
            out.push_str(" gps=\"");
            out.push_str(&escape(gps));
            out.push('"');
        }
        out.push_str(" dc=\"");
        out.push_str(&escape(&self.datacenter));
        out.push_str("\">\n");
        for card in &self.cards {
            out.push_str("<card type=\"");
            out.push_str(card.ctype.wire_name());
            out.push_str("\">\n");
            for (url, title) in &card.entries {
                out.push_str("<r url=\"");
                out.push_str(&escape(url));
                out.push_str("\" title=\"");
                out.push_str(&escape(title));
                out.push_str("\"/>\n");
            }
            out.push_str("</card>\n");
        }
        out.push_str("<footer location=\"");
        out.push_str(&escape(&self.reported_location));
        out.push_str("\"/>\n</serp>\n");
        out
    }
}

/// Parse a wire-format body back into a [`SerpPage`].
pub fn parse(body: &str) -> Result<SerpPage, ParseError> {
    let mut lines = body.lines().enumerate();

    let (_, header) = lines.next().ok_or(ParseError::MissingHeader)?;
    if !header.starts_with("<serp ") || !header.ends_with('>') {
        return Err(ParseError::MissingHeader);
    }
    let query = attr(header, "q").ok_or(ParseError::BadAttribute { line: 1, attr: "q" })?;
    let gps = attr(header, "gps");
    let datacenter = attr(header, "dc").ok_or(ParseError::BadAttribute {
        line: 1,
        attr: "dc",
    })?;

    let mut page = SerpPage::new(query, gps.as_deref(), datacenter, String::new());
    let mut open_card: Option<Card> = None;
    let mut saw_footer = false;
    let mut closed = false;

    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.starts_with("<card ") {
            if open_card.is_some() {
                return Err(ParseError::StructureViolation { line: lineno });
            }
            let t = attr(line, "type").ok_or(ParseError::BadAttribute {
                line: lineno,
                attr: "type",
            })?;
            let ctype = CardType::from_wire(&t).ok_or(ParseError::BadCardType { line: lineno })?;
            open_card = Some(Card::new(ctype));
        } else if line.starts_with("<r ") {
            let card = open_card
                .as_mut()
                .ok_or(ParseError::StructureViolation { line: lineno })?;
            let url = attr(line, "url").ok_or(ParseError::BadAttribute {
                line: lineno,
                attr: "url",
            })?;
            let title = attr(line, "title").ok_or(ParseError::BadAttribute {
                line: lineno,
                attr: "title",
            })?;
            card.push(url, title);
        } else if line == "</card>" {
            let card = open_card
                .take()
                .ok_or(ParseError::StructureViolation { line: lineno })?;
            page.push_card(card);
        } else if line.starts_with("<footer ") {
            if open_card.is_some() {
                return Err(ParseError::StructureViolation { line: lineno });
            }
            page.reported_location = attr(line, "location").ok_or(ParseError::BadAttribute {
                line: lineno,
                attr: "location",
            })?;
            saw_footer = true;
        } else if line == "</serp>" {
            if open_card.is_some() || !saw_footer {
                return Err(ParseError::StructureViolation { line: lineno });
            }
            closed = true;
            break;
        } else if line.is_empty() {
            continue;
        } else {
            return Err(ParseError::UnknownElement { line: lineno });
        }
    }

    if !closed {
        return Err(ParseError::Truncated);
    }
    Ok(page)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CardType;

    fn sample() -> SerpPage {
        let mut p = SerpPage::new("kfc", Some("40.1,-82.2"), "dc2", "Columbus, OH");
        p.push_card(Card::single(CardType::Organic, "https://a/", "A & B <co>"));
        let mut m = Card::new(CardType::Maps);
        m.push("https://m1/", "KFC \"north\"");
        m.push("https://m2/", "KFC south");
        p.push_card(m);
        p
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        assert_eq!(parse(&p.render()).unwrap(), p);
    }

    #[test]
    fn roundtrip_without_gps() {
        let p = SerpPage::new("x", None, "dc0", "USA");
        let parsed = parse(&p.render()).unwrap();
        assert_eq!(parsed.gps, None);
        assert_eq!(parsed, p);
    }

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape(r#"a&"<>"#), "a&amp;&quot;&lt;&gt;");
        assert_eq!(unescape("a&amp;&quot;&lt;&gt;"), r#"a&"<>"#);
        assert_eq!(unescape("lone & ampersand"), "lone & ampersand");
        assert_eq!(unescape("&bogus;"), "&bogus;");
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(parse(""), Err(ParseError::MissingHeader));
        assert_eq!(parse("garbage\n"), Err(ParseError::MissingHeader));
    }

    #[test]
    fn truncation_detected() {
        let full = sample().render();
        let cut = &full[..full.len() - 10];
        assert!(matches!(
            parse(cut),
            Err(ParseError::Truncated) | Err(ParseError::StructureViolation { .. })
        ));
    }

    #[test]
    fn result_outside_card_rejected() {
        let body = "<serp q=\"x\" dc=\"d\">\n<r url=\"u\" title=\"t\"/>\n";
        assert!(matches!(
            parse(body),
            Err(ParseError::StructureViolation { line: 2 })
        ));
    }

    #[test]
    fn unknown_card_type_rejected() {
        let body = "<serp q=\"x\" dc=\"d\">\n<card type=\"ads\">\n</card>\n<footer location=\"l\"/>\n</serp>\n";
        assert!(matches!(
            parse(body),
            Err(ParseError::BadCardType { line: 2 })
        ));
    }

    #[test]
    fn nested_card_rejected() {
        let body =
            "<serp q=\"x\" dc=\"d\">\n<card type=\"maps\">\n<card type=\"news\">\n</card>\n</card>\n<footer location=\"l\"/>\n</serp>\n";
        assert!(matches!(
            parse(body),
            Err(ParseError::StructureViolation { line: 3 })
        ));
    }

    #[test]
    fn missing_footer_rejected() {
        let body = "<serp q=\"x\" dc=\"d\">\n</serp>\n";
        assert!(matches!(
            parse(body),
            Err(ParseError::StructureViolation { .. })
        ));
    }

    #[test]
    fn single_bit_corruption_usually_fails_loudly() {
        // Flip one bit in a structural byte; the parser must not return a
        // *different* page silently for structural damage. (Content bytes may
        // legitimately change content — that is what retries+controls absorb.)
        let p = sample();
        let markup = p.render();
        let mut bytes = markup.clone().into_bytes();
        // Corrupt the '<' of "<card".
        let pos = markup.find("<card").unwrap();
        bytes[pos] ^= 0x01;
        let mangled = String::from_utf8_lossy(&bytes).into_owned();
        assert!(parse(&mangled).is_err());
    }

    #[test]
    fn footer_carries_reported_location() {
        let parsed = parse(&sample().render()).unwrap();
        assert_eq!(parsed.reported_location, "Columbus, OH");
    }
}
