//! The wire format: a compact, line-oriented, HTML-like markup for mobile
//! SERPs, and its parser.
//!
//! Format (one element per line):
//!
//! ```text
//! <serp q="starbucks" gps="41.499300,-81.694400" dc="dc1">
//! <card type="answer_box">
//! <r url="https://…" title="Starbucks — Official Site"/>
//! </card>
//! <card type="organic">
//! <r url="https://…" title="Starbucks — Official Site"/>
//! </card>
//! <card type="maps">
//! <r url="https://…" title="Starbucks – Lakeview"/>
//! <r url="https://…" title="Starbucks – Downtown"/>
//! </card>
//! <card type="ads" slot="2">
//! <r url="https://…" title="Coffee Makers — Sponsored"/>
//! </card>
//! <footer location="Cleveland, OH"/>
//! </serp>
//! ```
//!
//! Attribute values are escaped (`&quot; &amp; &lt; &gt;`). Per-card
//! parsing and rendering dispatch through the component registry
//! ([`crate::registry`]): each card type's `parse_fn` validates its draft
//! (slot attributes, non-empty packs) and its `render_fn` owns its wire
//! bytes, with card position classes enforced as non-decreasing down the
//! page.
//!
//! The default parser is **strict**: structural damage (the fault
//! injector's single-bit corruption, truncation, attribute loss) and
//! unregistered card types yield a [`ParseError`] rather than a silently
//! wrong page, so the crawler knows to retry — mirroring how a real scraper
//! fails on mangled HTML. The **lenient** parser ([`parse_lenient`])
//! instead types unregistered cards as [`CardType::Unknown`], for consumers
//! pointed at pages richer than their registry.

use crate::model::{Card, SerpPage};
use crate::registry::{CardDraft, ComponentRegistry, ComponentSpec};
use std::fmt;

/// Why a SERP body failed to parse.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The body didn't start with a `<serp …>` header.
    MissingHeader,
    /// A required attribute is absent or malformed.
    BadAttribute {
        /// 1-based line of the offending element.
        line: usize,
        /// The attribute that was expected.
        attr: &'static str,
    },
    /// A line matched no known element.
    UnknownElement {
        /// 1-based offending line.
        line: usize,
    },
    /// `<r …/>` outside any open card, `</card>` without `<card>`, or a
    /// card out of position-class order.
    StructureViolation {
        /// 1-based offending line.
        line: usize,
    },
    /// The body ended before `</serp>`.
    Truncated,
    /// An unknown card type (strict mode only).
    BadCardType {
        /// 1-based offending line.
        line: usize,
    },
    /// A component that must carry entries (local pack, answer box,
    /// knowledge panel, ads) was empty.
    EmptyComponent {
        /// 1-based line of the card's opening element.
        line: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing <serp> header"),
            ParseError::BadAttribute { line, attr } => {
                write!(f, "line {line}: missing/malformed attribute {attr}")
            }
            ParseError::UnknownElement { line } => write!(f, "line {line}: unknown element"),
            ParseError::StructureViolation { line } => {
                write!(f, "line {line}: element not allowed here")
            }
            ParseError::Truncated => write!(f, "body truncated before </serp>"),
            ParseError::BadCardType { line } => write!(f, "line {line}: unknown card type"),
            ParseError::EmptyComponent { line } => {
                write!(f, "line {line}: component requires at least one entry")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// How the parser treats a card type with no registered spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseMode {
    /// Unregistered card types are a hard [`ParseError::BadCardType`] —
    /// the fault-injection contract.
    Strict,
    /// Unregistered card types parse through the [`CardType::Unknown`]
    /// spec: typed, entries preserved, no links extracted.
    Lenient,
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let (entity, advance) = if rest.starts_with("&amp;") {
            ('&', 5)
        } else if rest.starts_with("&quot;") {
            ('"', 6)
        } else if rest.starts_with("&lt;") {
            ('<', 4)
        } else if rest.starts_with("&gt;") {
            ('>', 4)
        } else {
            out.push('&');
            rest = &rest[1..];
            continue;
        };
        out.push(entity);
        rest = &rest[advance..];
    }
    out.push_str(rest);
    out
}

/// Extract `name="…"` from a tag line. Values must not contain raw quotes
/// (they are escaped at render time). The needle is anchored on the
/// preceding space so an attribute whose name merely *ends* in `name`
/// (e.g. `src_url=` vs `url=`) cannot shadow it; every rendered attribute
/// follows a space (after `<serp`, `<card`, `<r`, `<footer`, or a prior
/// attribute's closing quote).
fn attr(line: &str, name: &str) -> Option<String> {
    let needle = format!(" {name}=\"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')? + start;
    Some(unescape(&line[start..end]))
}

impl SerpPage {
    /// Render to the wire format, dispatching each card to its registry
    /// spec's `render_fn`.
    pub fn render(&self) -> String {
        let registry = ComponentRegistry::builtin();
        // Pre-size: ~96 bytes per entry is typical.
        let entries: usize = self.cards.iter().map(|c| c.entries.len()).sum();
        let mut out = String::with_capacity(128 + entries * 96);
        out.push_str("<serp q=\"");
        out.push_str(&escape(&self.query));
        out.push('"');
        if let Some(gps) = &self.gps {
            out.push_str(" gps=\"");
            out.push_str(&escape(gps));
            out.push('"');
        }
        out.push_str(" dc=\"");
        out.push_str(&escape(&self.datacenter));
        out.push_str("\">\n");
        for card in &self.cards {
            let spec = registry
                .spec(card.ctype)
                .expect("builtin registry covers every card type");
            (spec.render_fn)(spec, card, &mut out);
        }
        out.push_str("<footer location=\"");
        out.push_str(&escape(&self.reported_location));
        out.push_str("\"/>\n</serp>\n");
        out
    }
}

/// Parse a wire-format body back into a [`SerpPage`], strictly, against the
/// built-in registry.
pub fn parse(body: &str) -> Result<SerpPage, ParseError> {
    parse_with(body, ComponentRegistry::builtin(), ParseMode::Strict)
}

/// Parse leniently against the built-in registry: unregistered card types
/// become typed [`CardType::Unknown`](crate::CardType::Unknown) cards.
pub fn parse_lenient(body: &str) -> Result<SerpPage, ParseError> {
    parse_with(body, ComponentRegistry::builtin(), ParseMode::Lenient)
}

/// Parse against an explicit registry and mode.
///
/// In [`ParseMode::Lenient`], the registry must have a spec for
/// [`CardType::Unknown`](crate::CardType::Unknown) (the built-in one does);
/// without it, unregistered card types fall back to the strict error.
pub fn parse_with(
    body: &str,
    registry: &ComponentRegistry,
    mode: ParseMode,
) -> Result<SerpPage, ParseError> {
    let mut lines = body.lines().enumerate();

    let (_, header) = lines.next().ok_or(ParseError::MissingHeader)?;
    if !header.starts_with("<serp ") || !header.ends_with('>') {
        return Err(ParseError::MissingHeader);
    }
    let query = attr(header, "q").ok_or(ParseError::BadAttribute { line: 1, attr: "q" })?;
    let gps = attr(header, "gps");
    let datacenter = attr(header, "dc").ok_or(ParseError::BadAttribute {
        line: 1,
        attr: "dc",
    })?;

    let mut page = SerpPage::new(query, gps.as_deref(), datacenter, String::new());
    let mut open: Option<(&ComponentSpec, CardDraft)> = None;
    let mut position_floor: u8 = 0;
    let mut saw_footer = false;
    let mut closed = false;

    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.starts_with("<card ") {
            if open.is_some() {
                return Err(ParseError::StructureViolation { line: lineno });
            }
            let t = attr(line, "type").ok_or(ParseError::BadAttribute {
                line: lineno,
                attr: "type",
            })?;
            let spec = match registry.by_wire(&t) {
                Some(spec) => spec,
                None => match mode {
                    ParseMode::Lenient => registry
                        .spec(crate::CardType::Unknown)
                        .ok_or(ParseError::BadCardType { line: lineno })?,
                    ParseMode::Strict => {
                        return Err(ParseError::BadCardType { line: lineno });
                    }
                },
            };
            open = Some((
                spec,
                CardDraft {
                    wire_type: t,
                    slot: attr(line, "slot"),
                    entries: Vec::new(),
                    line: lineno,
                },
            ));
        } else if line.starts_with("<r ") {
            let (_, draft) = open
                .as_mut()
                .ok_or(ParseError::StructureViolation { line: lineno })?;
            let url = attr(line, "url").ok_or(ParseError::BadAttribute {
                line: lineno,
                attr: "url",
            })?;
            let title = attr(line, "title").ok_or(ParseError::BadAttribute {
                line: lineno,
                attr: "title",
            })?;
            draft.entries.push((url, title));
        } else if line == "</card>" {
            let (spec, draft) = open
                .take()
                .ok_or(ParseError::StructureViolation { line: lineno })?;
            // Position classes must be non-decreasing down the page: a
            // header card after a main card (or anything after a footer
            // card) is structural damage.
            let rank = spec.position.rank();
            if rank < position_floor {
                return Err(ParseError::StructureViolation { line: lineno });
            }
            position_floor = rank;
            let card: Card = (spec.parse_fn)(spec, draft)?;
            page.push_card(card);
        } else if line.starts_with("<footer ") {
            if open.is_some() {
                return Err(ParseError::StructureViolation { line: lineno });
            }
            page.reported_location = attr(line, "location").ok_or(ParseError::BadAttribute {
                line: lineno,
                attr: "location",
            })?;
            saw_footer = true;
        } else if line == "</serp>" {
            if open.is_some() || !saw_footer {
                return Err(ParseError::StructureViolation { line: lineno });
            }
            closed = true;
            break;
        } else if line.is_empty() {
            continue;
        } else {
            return Err(ParseError::UnknownElement { line: lineno });
        }
    }

    if !closed {
        return Err(ParseError::Truncated);
    }
    Ok(page)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CardType;

    fn sample() -> SerpPage {
        let mut p = SerpPage::new("kfc", Some("40.1,-82.2"), "dc2", "Columbus, OH");
        p.push_card(Card::single(CardType::Organic, "https://a/", "A & B <co>"));
        let mut m = Card::new(CardType::Maps);
        m.push("https://m1/", "KFC \"north\"");
        m.push("https://m2/", "KFC south");
        p.push_card(m);
        p
    }

    fn rich_sample() -> SerpPage {
        let mut p = SerpPage::new("kfc", Some("40.1,-82.2"), "dc2", "Columbus, OH");
        p.push_card(Card::single(CardType::AnswerBox, "https://kfc/", "KFC"));
        p.push_card(Card::single(CardType::Organic, "https://a/", "A"));
        let mut pack = Card::new(CardType::LocalPack);
        pack.push("https://l1/", "KFC east");
        pack.push("https://l2/", "KFC west");
        p.push_card(pack);
        let mut ad = Card::ad(2);
        ad.push("https://ad1/", "Fried chicken — Sponsored");
        p.push_card(ad);
        p.push_card(Card::single(
            CardType::KnowledgePanel,
            "https://kg/kfc",
            "KFC (restaurant chain)",
        ));
        p
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        assert_eq!(parse(&p.render()).unwrap(), p);
    }

    #[test]
    fn rich_roundtrip_preserves_slots_and_types() {
        let p = rich_sample();
        let parsed = parse(&p.render()).unwrap();
        assert_eq!(parsed, p);
        let ad = parsed
            .cards
            .iter()
            .find(|c| c.ctype == CardType::Ads)
            .unwrap();
        assert_eq!(ad.slot, Some(2));
    }

    #[test]
    fn roundtrip_without_gps() {
        let p = SerpPage::new("x", None, "dc0", "USA");
        let parsed = parse(&p.render()).unwrap();
        assert_eq!(parsed.gps, None);
        assert_eq!(parsed, p);
    }

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape(r#"a&"<>"#), "a&amp;&quot;&lt;&gt;");
        assert_eq!(unescape("a&amp;&quot;&lt;&gt;"), r#"a&"<>"#);
        assert_eq!(unescape("lone & ampersand"), "lone & ampersand");
        assert_eq!(unescape("&bogus;"), "&bogus;");
    }

    #[test]
    fn attr_is_anchored_on_a_preceding_space() {
        // A decoy attribute whose name ends in "url" must not shadow the
        // real one — the old substring match returned "evil" here.
        let line = r#"<r src_url="evil" url="good" title="t"/>"#;
        assert_eq!(attr(line, "url").as_deref(), Some("good"));
        assert_eq!(attr(line, "src_url").as_deref(), Some("evil"));
        assert_eq!(attr(line, "rl"), None);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(parse(""), Err(ParseError::MissingHeader));
        assert_eq!(parse("garbage\n"), Err(ParseError::MissingHeader));
    }

    #[test]
    fn truncation_detected() {
        let full = sample().render();
        let cut = &full[..full.len() - 10];
        assert!(matches!(
            parse(cut),
            Err(ParseError::Truncated) | Err(ParseError::StructureViolation { .. })
        ));
    }

    #[test]
    fn result_outside_card_rejected() {
        let body = "<serp q=\"x\" dc=\"d\">\n<r url=\"u\" title=\"t\"/>\n";
        assert!(matches!(
            parse(body),
            Err(ParseError::StructureViolation { line: 2 })
        ));
    }

    #[test]
    fn unknown_card_type_rejected_in_strict_mode() {
        let body = "<serp q=\"x\" dc=\"d\">\n<card type=\"carousel\">\n</card>\n<footer location=\"l\"/>\n</serp>\n";
        assert!(matches!(
            parse(body),
            Err(ParseError::BadCardType { line: 2 })
        ));
    }

    #[test]
    fn unknown_card_type_is_typed_in_lenient_mode() {
        let body = "<serp q=\"x\" dc=\"d\">\n<card type=\"carousel\">\n<r url=\"u\" title=\"t\"/>\n</card>\n<footer location=\"l\"/>\n</serp>\n";
        let page = parse_lenient(body).unwrap();
        assert_eq!(page.cards.len(), 1);
        assert_eq!(page.cards[0].ctype, CardType::Unknown);
        assert_eq!(page.cards[0].entries.len(), 1);
        // Unknown components are skipped by extraction, not guessed at.
        assert_eq!(page.result_count(), 0);
    }

    #[test]
    fn lenient_mode_without_an_unknown_spec_still_fails_typed() {
        let body = "<serp q=\"x\" dc=\"d\">\n<card type=\"carousel\">\n</card>\n<footer location=\"l\"/>\n</serp>\n";
        let empty = ComponentRegistry::empty();
        assert!(matches!(
            parse_with(body, &empty, ParseMode::Lenient),
            Err(ParseError::BadCardType { line: 2 })
        ));
    }

    #[test]
    fn ads_without_slot_rejected() {
        let body = "<serp q=\"x\" dc=\"d\">\n<card type=\"ads\">\n<r url=\"u\" title=\"t\"/>\n</card>\n<footer location=\"l\"/>\n</serp>\n";
        assert!(matches!(
            parse(body),
            Err(ParseError::BadAttribute {
                line: 2,
                attr: "slot"
            })
        ));
    }

    #[test]
    fn cards_out_of_position_order_rejected() {
        // An answer box (header class) after an organic (main class).
        let body = "<serp q=\"x\" dc=\"d\">\n<card type=\"organic\">\n<r url=\"u\" title=\"t\"/>\n</card>\n<card type=\"answer_box\">\n<r url=\"a\" title=\"b\"/>\n</card>\n<footer location=\"l\"/>\n</serp>\n";
        assert!(matches!(
            parse(body),
            Err(ParseError::StructureViolation { line: 7 })
        ));
    }

    #[test]
    fn nested_card_rejected() {
        let body =
            "<serp q=\"x\" dc=\"d\">\n<card type=\"maps\">\n<card type=\"news\">\n</card>\n</card>\n<footer location=\"l\"/>\n</serp>\n";
        assert!(matches!(
            parse(body),
            Err(ParseError::StructureViolation { line: 3 })
        ));
    }

    #[test]
    fn missing_footer_rejected() {
        let body = "<serp q=\"x\" dc=\"d\">\n</serp>\n";
        assert!(matches!(
            parse(body),
            Err(ParseError::StructureViolation { .. })
        ));
    }

    #[test]
    fn single_bit_corruption_usually_fails_loudly() {
        // Flip one bit in a structural byte; the parser must not return a
        // *different* page silently for structural damage. (Content bytes may
        // legitimately change content — that is what retries+controls absorb.)
        let p = sample();
        let markup = p.render();
        let mut bytes = markup.clone().into_bytes();
        // Corrupt the '<' of "<card".
        let pos = markup.find("<card").unwrap();
        bytes[pos] ^= 0x01;
        let mangled = String::from_utf8_lossy(&bytes).into_owned();
        assert!(parse(&mangled).is_err());
    }

    #[test]
    fn footer_carries_reported_location() {
        let parsed = parse(&sample().render()).unwrap();
        assert_eq!(parsed.reported_location, "Columbus, OH");
    }
}
