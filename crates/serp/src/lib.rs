#![warn(missing_docs)]
//! # geoserp-serp — the mobile SERP: card model, markup, parser
//!
//! The paper scrapes the *mobile* Google SERP, which renders results as
//! "cards": most cards carry a single result, while Maps and News cards are
//! meta-results carrying several links (§2.2, Figure 1). Pages are parsed by
//! the rule *"extract the first link from each card, except for Maps and News
//! cards where we extract all links"*, yielding 12–22 links per page.
//!
//! This crate owns all the pieces:
//!
//! * the typed card model ([`SerpPage`], [`Card`], [`CardType`]) covering
//!   the full rich-component taxonomy (local packs, answer boxes, knowledge
//!   panels, ads) alongside the paper's organic/Maps/News trio;
//! * the component-parser registry ([`registry`]): one [`ComponentSpec`]
//!   per card type — wire name, position class, extraction rule, and a
//!   `parse_fn`/`render_fn` pair — so new components are registered, not
//!   hardcoded into `match` arms;
//! * a compact HTML-like wire format ([`SerpPage::render`]) emitted by the
//!   simulated engine — including the footer where "Google Search reports
//!   the user's precise location", which the paper used for validation;
//! * a strict parser ([`parse`]) implementing the paper's extraction rule
//!   and producing the flat, ordered URL list ([`SerpResult`]) that the
//!   Jaccard/edit-distance metrics compare, plus a lenient variant
//!   ([`parse_lenient`]) that types unregistered cards as
//!   [`CardType::Unknown`] instead of failing.
//!
//! The strict parser is strict on structure (a corrupted response fails
//! loudly so the crawler can retry) but tolerant of content (any UTF-8
//! title/URL).

pub mod markup;
pub mod model;
pub mod registry;

pub use markup::{parse, parse_lenient, parse_with, ParseError, ParseMode};
pub use model::{Card, CardType, ResultType, SerpPage, SerpResult};
pub use registry::{
    CardDraft, ComponentRegistry, ComponentSpec, ExtractionRule, PositionClass, MAX_AD_SLOT,
};

#[cfg(test)]
mod roundtrip_tests {
    use super::*;

    fn sample() -> SerpPage {
        let mut page = SerpPage::new(
            "starbucks",
            Some("41.499300,-81.694400"),
            "dc1",
            "Cleveland, OH",
        );
        page.push_card(Card::single(
            CardType::Organic,
            "https://www.starbucks.example.com/",
            "Starbucks — Official Site",
        ));
        let mut maps = Card::new(CardType::Maps);
        maps.push("https://maps.example.com/p/1", "Starbucks – Lakeview");
        maps.push("https://maps.example.com/p/2", "Starbucks – Downtown");
        page.push_card(maps);
        let mut news = Card::new(CardType::News);
        news.push(
            "https://news.example.com/a",
            "Starbucks \"expands\" & <grows>",
        );
        page.push_card(news);
        page
    }

    #[test]
    fn render_parse_roundtrip_preserves_everything() {
        let page = sample();
        let markup = page.render();
        let back = parse(&markup).expect("parses");
        assert_eq!(page, back);
    }

    #[test]
    fn extraction_rule_first_link_except_maps_news() {
        let mut page = sample();
        // Give the organic card a second (sitelink) entry that must be
        // ignored by the paper's extraction rule.
        page.cards[0].push("https://www.starbucks.example.com/menu", "Menu");
        let results = page.extract_results();
        let urls: Vec<&str> = results.iter().map(|r| r.url.as_str()).collect();
        assert_eq!(
            urls,
            vec![
                "https://www.starbucks.example.com/",
                "https://maps.example.com/p/1",
                "https://maps.example.com/p/2",
                "https://news.example.com/a",
            ]
        );
    }
}
