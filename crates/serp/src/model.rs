//! Typed model of a mobile SERP.

use crate::registry::{ComponentRegistry, ExtractionRule};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of an extracted search result — the dimension along which the
/// paper attributes noise and personalization (Figures 4 and 7), extended
/// past the paper's Maps/News pair to the full component taxonomy.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResultType {
    /// A "typical" organic result.
    Organic,
    /// A link inside a Maps meta-card.
    Maps,
    /// A link inside an "In the News" meta-card.
    News,
    /// A link inside a local pack (distance-ranked establishments).
    LocalPack,
    /// The link carried by an answer box pinned above the organics.
    AnswerBox,
    /// The entity link carried by a footer knowledge panel.
    KnowledgePanel,
    /// A link inside an ads card.
    Ads,
    /// A link inside a component this parser has no spec for.
    Unknown,
}

impl ResultType {
    /// The full taxonomy, organic first.
    pub const ALL: [ResultType; 8] = [
        ResultType::Organic,
        ResultType::Maps,
        ResultType::News,
        ResultType::LocalPack,
        ResultType::AnswerBox,
        ResultType::KnowledgePanel,
        ResultType::Ads,
        ResultType::Unknown,
    ];

    /// The meta-component types: every link-bearing type except plain
    /// organic results. This is the axis the per-component attribution
    /// decomposes over (Maps and News first — the paper's original pair).
    pub const META: [ResultType; 6] = [
        ResultType::Maps,
        ResultType::News,
        ResultType::LocalPack,
        ResultType::AnswerBox,
        ResultType::KnowledgePanel,
        ResultType::Ads,
    ];
}

impl fmt::Display for ResultType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResultType::Organic => "organic",
            ResultType::Maps => "maps",
            ResultType::News => "news",
            ResultType::LocalPack => "local_pack",
            ResultType::AnswerBox => "answer_box",
            ResultType::KnowledgePanel => "knowledge_panel",
            ResultType::Ads => "ads",
            ResultType::Unknown => "unknown",
        })
    }
}

/// The type of a card on the SERP. All per-type behavior (wire name,
/// extraction rule, position class, result type) lives in the card's
/// [`ComponentSpec`](crate::registry::ComponentSpec) in the built-in
/// registry; the methods here are lookups into it.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CardType {
    /// Organic.
    Organic,
    /// Maps.
    Maps,
    /// News.
    News,
    /// Local pack: distance-ranked nearby establishments.
    LocalPack,
    /// Answer box pinned above the organic results.
    AnswerBox,
    /// Knowledge panel pinned below the organic results.
    KnowledgePanel,
    /// Ads interleaved at a fixed organic slot.
    Ads,
    /// A card type the lenient parser had no spec for.
    Unknown,
}

impl CardType {
    /// Every card type, in registry order.
    pub const ALL: [CardType; 8] = [
        CardType::Organic,
        CardType::Maps,
        CardType::News,
        CardType::LocalPack,
        CardType::AnswerBox,
        CardType::KnowledgePanel,
        CardType::Ads,
        CardType::Unknown,
    ];

    /// This card type's spec in the built-in registry.
    pub(crate) fn builtin_spec(self) -> &'static crate::registry::ComponentSpec {
        ComponentRegistry::builtin()
            .spec(self)
            .expect("builtin registry covers every card type")
    }

    /// The result type of links extracted from this card.
    pub fn result_type(self) -> ResultType {
        self.builtin_spec().rtype
    }

    /// True for meta-cards whose *every* link is extracted (Maps, News,
    /// local packs, ads).
    pub fn extract_all_links(self) -> bool {
        self.builtin_spec().extraction == ExtractionRule::AllLinks
    }

    /// The `type="…"` attribute value this card renders with.
    pub fn wire_name(self) -> &'static str {
        self.builtin_spec().wire_name
    }

    /// The card type registered for a wire name, if any.
    pub fn from_wire(s: &str) -> Option<CardType> {
        ComponentRegistry::builtin()
            .by_wire(s)
            .map(|spec| spec.ctype)
    }
}

/// One card: a result or a meta-result with several links.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Card {
    /// The ctype.
    pub ctype: CardType,
    /// `(url, title)` entries in display order. Never empty on a rendered
    /// page.
    pub entries: Vec<(String, String)>,
    /// The organic slot an ads card is interleaved at. `None` for every
    /// other card type (and never rendered for them).
    pub slot: Option<u32>,
}

impl Card {
    /// An empty card of the given type.
    pub fn new(ctype: CardType) -> Self {
        Card {
            ctype,
            entries: Vec::new(),
            slot: None,
        }
    }

    /// A single-result card.
    pub fn single(ctype: CardType, url: impl Into<String>, title: impl Into<String>) -> Self {
        let mut c = Card::new(ctype);
        c.push(url, title);
        c
    }

    /// An empty ads card carrying its interleave slot.
    pub fn ad(slot: u32) -> Self {
        let mut c = Card::new(CardType::Ads);
        c.slot = Some(slot);
        c
    }

    /// Append an entry.
    pub fn push(&mut self, url: impl Into<String>, title: impl Into<String>) {
        self.entries.push((url.into(), title.into()));
    }

    /// Number of links this card contributes under the extraction rule in
    /// its registry spec.
    pub fn extracted_len(&self) -> usize {
        match self.ctype.builtin_spec().extraction {
            ExtractionRule::AllLinks => self.entries.len(),
            ExtractionRule::FirstLink => 1.min(self.entries.len()),
            ExtractionRule::NoLinks => 0,
        }
    }
}

/// One extracted search result, in page order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SerpResult {
    /// 0-based position in the extracted list (the ordering edit distance
    /// operates on).
    pub rank: usize,
    /// The url.
    pub url: String,
    /// The title.
    pub title: String,
    /// The rtype.
    pub rtype: ResultType,
}

/// A full page of mobile search results.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SerpPage {
    /// The query as the engine received it.
    pub query: String,
    /// The GPS fix the engine personalized for, if one was provided
    /// (`"lat,lon"` with 6 decimals).
    pub gps: Option<String>,
    /// Identifier of the datacenter/replica that served the page.
    pub datacenter: String,
    /// The human-readable location the engine reports at the bottom of the
    /// page ("Google Search reports the user's precise location", §2.2).
    pub reported_location: String,
    /// The cards.
    pub cards: Vec<Card>,
}

impl SerpPage {
    /// An empty page.
    pub fn new(
        query: impl Into<String>,
        gps: Option<&str>,
        datacenter: impl Into<String>,
        reported_location: impl Into<String>,
    ) -> Self {
        SerpPage {
            query: query.into(),
            gps: gps.map(str::to_owned),
            datacenter: datacenter.into(),
            reported_location: reported_location.into(),
            cards: Vec::new(),
        }
    }

    /// Append a card.
    pub fn push_card(&mut self, card: Card) {
        self.cards.push(card);
    }

    /// Apply the extraction rule of each card's registry spec: first link
    /// of first-link cards, all links of all-links cards, nothing from
    /// no-links cards; ranks assigned in page order.
    pub fn extract_results(&self) -> Vec<SerpResult> {
        let mut out = Vec::new();
        for card in &self.cards {
            let spec = card.ctype.builtin_spec();
            let take = match spec.extraction {
                ExtractionRule::AllLinks => card.entries.len(),
                ExtractionRule::FirstLink => 1.min(card.entries.len()),
                ExtractionRule::NoLinks => 0,
            };
            for (url, title) in card.entries.iter().take(take) {
                out.push(SerpResult {
                    rank: out.len(),
                    url: url.clone(),
                    title: title.clone(),
                    rtype: spec.rtype,
                });
            }
        }
        out
    }

    /// Extracted URLs only, in order (what the comparison metrics consume).
    pub fn urls(&self) -> Vec<String> {
        self.extract_results().into_iter().map(|r| r.url).collect()
    }

    /// Total extracted-link count (the paper observes 12–22 per page).
    pub fn result_count(&self) -> usize {
        self.cards.iter().map(Card::extracted_len).sum()
    }

    /// Whether the page contains a card of the given type.
    pub fn has_card(&self, ctype: CardType) -> bool {
        self.cards.iter().any(|c| c.ctype == ctype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> SerpPage {
        let mut p = SerpPage::new("school", Some("41.0,-81.0"), "dc0", "Cleveland, OH");
        p.push_card(Card::single(CardType::Organic, "u1", "t1"));
        let mut maps = Card::new(CardType::Maps);
        maps.push("m1", "p1");
        maps.push("m2", "p2");
        maps.push("m3", "p3");
        p.push_card(maps);
        p.push_card(Card::single(CardType::Organic, "u2", "t2"));
        let mut news = Card::new(CardType::News);
        news.push("n1", "a1");
        news.push("n2", "a2");
        p.push_card(news);
        p
    }

    #[test]
    fn extraction_order_and_ranks() {
        let res = page().extract_results();
        let urls: Vec<&str> = res.iter().map(|r| r.url.as_str()).collect();
        assert_eq!(urls, vec!["u1", "m1", "m2", "m3", "u2", "n1", "n2"]);
        for (i, r) in res.iter().enumerate() {
            assert_eq!(r.rank, i);
        }
    }

    #[test]
    fn result_types_follow_cards() {
        let res = page().extract_results();
        assert_eq!(res[0].rtype, ResultType::Organic);
        assert_eq!(res[1].rtype, ResultType::Maps);
        assert_eq!(res[5].rtype, ResultType::News);
    }

    #[test]
    fn result_count_matches_extraction() {
        let p = page();
        assert_eq!(p.result_count(), p.extract_results().len());
        assert_eq!(p.result_count(), 7);
    }

    #[test]
    fn organic_card_contributes_one_even_with_sitelinks() {
        let mut c = Card::single(CardType::Organic, "u", "t");
        c.push("u-sub", "sub");
        assert_eq!(c.extracted_len(), 1);
        let mut m = Card::new(CardType::Maps);
        assert_eq!(m.extracted_len(), 0);
        m.push("a", "b");
        m.push("c", "d");
        assert_eq!(m.extracted_len(), 2);
    }

    #[test]
    fn rich_components_follow_their_extraction_rules() {
        let mut p = SerpPage::new("kfc", None, "dc0", "USA");
        p.push_card(Card::single(CardType::AnswerBox, "a1", "answer"));
        let mut pack = Card::new(CardType::LocalPack);
        pack.push("l1", "near");
        pack.push("l2", "nearer");
        p.push_card(pack);
        let mut ad = Card::ad(2);
        ad.push("ad1", "sponsored");
        p.push_card(ad);
        let mut unk = Card::new(CardType::Unknown);
        unk.push("x1", "mystery");
        p.push_card(unk);
        p.push_card(Card::single(CardType::KnowledgePanel, "k1", "entity"));

        let res = p.extract_results();
        let urls: Vec<&str> = res.iter().map(|r| r.url.as_str()).collect();
        // The unknown card contributes nothing; everything else extracts.
        assert_eq!(urls, vec!["a1", "l1", "l2", "ad1", "k1"]);
        assert_eq!(res[0].rtype, ResultType::AnswerBox);
        assert_eq!(res[1].rtype, ResultType::LocalPack);
        assert_eq!(res[3].rtype, ResultType::Ads);
        assert_eq!(res[4].rtype, ResultType::KnowledgePanel);
        assert_eq!(p.result_count(), 5);
    }

    #[test]
    fn has_card_lookup() {
        let p = page();
        assert!(p.has_card(CardType::Maps));
        assert!(p.has_card(CardType::News));
        let empty = SerpPage::new("x", None, "dc0", "USA");
        assert!(!empty.has_card(CardType::Maps));
        assert_eq!(empty.result_count(), 0);
    }

    #[test]
    fn card_type_wire_roundtrip() {
        for t in CardType::ALL {
            assert_eq!(CardType::from_wire(t.wire_name()), Some(t));
        }
        assert_eq!(CardType::from_wire("bogus"), None);
    }

    #[test]
    fn meta_types_exclude_organic_and_unknown() {
        assert!(!ResultType::META.contains(&ResultType::Organic));
        assert!(!ResultType::META.contains(&ResultType::Unknown));
        for t in ResultType::META {
            assert!(ResultType::ALL.contains(&t));
        }
    }

    #[test]
    fn urls_helper() {
        assert_eq!(page().urls()[0], "u1");
    }
}
