//! Typed model of a mobile SERP.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of an extracted search result — the dimension along which the
/// paper attributes noise and personalization (Figures 4 and 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResultType {
    /// A "typical" organic result.
    Organic,
    /// A link inside a Maps meta-card.
    Maps,
    /// A link inside an "In the News" meta-card.
    News,
}

impl ResultType {
    /// All types, organic first.
    pub const ALL: [ResultType; 3] = [ResultType::Organic, ResultType::Maps, ResultType::News];
}

impl fmt::Display for ResultType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResultType::Organic => "organic",
            ResultType::Maps => "maps",
            ResultType::News => "news",
        })
    }
}

/// The type of a card on the SERP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CardType {
    /// Organic.
    Organic,
    /// Maps.
    Maps,
    /// News.
    News,
}

impl CardType {
    /// The result type of links extracted from this card.
    pub fn result_type(self) -> ResultType {
        match self {
            CardType::Organic => ResultType::Organic,
            CardType::Maps => ResultType::Maps,
            CardType::News => ResultType::News,
        }
    }

    /// True for meta-cards whose *every* link is extracted (Maps, News).
    pub fn extract_all_links(self) -> bool {
        matches!(self, CardType::Maps | CardType::News)
    }

    pub(crate) fn wire_name(self) -> &'static str {
        match self {
            CardType::Organic => "organic",
            CardType::Maps => "maps",
            CardType::News => "news",
        }
    }

    pub(crate) fn from_wire(s: &str) -> Option<CardType> {
        match s {
            "organic" => Some(CardType::Organic),
            "maps" => Some(CardType::Maps),
            "news" => Some(CardType::News),
            _ => None,
        }
    }
}

/// One card: a result or a meta-result with several links.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Card {
    /// The ctype.
    pub ctype: CardType,
    /// `(url, title)` entries in display order. Never empty on a rendered
    /// page.
    pub entries: Vec<(String, String)>,
}

impl Card {
    /// An empty card of the given type.
    pub fn new(ctype: CardType) -> Self {
        Card {
            ctype,
            entries: Vec::new(),
        }
    }

    /// A single-result card.
    pub fn single(ctype: CardType, url: impl Into<String>, title: impl Into<String>) -> Self {
        let mut c = Card::new(ctype);
        c.push(url, title);
        c
    }

    /// Append an entry.
    pub fn push(&mut self, url: impl Into<String>, title: impl Into<String>) {
        self.entries.push((url.into(), title.into()));
    }

    /// Number of links this card contributes under the paper's extraction
    /// rule.
    pub fn extracted_len(&self) -> usize {
        if self.ctype.extract_all_links() {
            self.entries.len()
        } else {
            usize::from(!self.entries.is_empty())
        }
    }
}

/// One extracted search result, in page order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SerpResult {
    /// 0-based position in the extracted list (the ordering edit distance
    /// operates on).
    pub rank: usize,
    /// The url.
    pub url: String,
    /// The title.
    pub title: String,
    /// The rtype.
    pub rtype: ResultType,
}

/// A full page of mobile search results.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SerpPage {
    /// The query as the engine received it.
    pub query: String,
    /// The GPS fix the engine personalized for, if one was provided
    /// (`"lat,lon"` with 6 decimals).
    pub gps: Option<String>,
    /// Identifier of the datacenter/replica that served the page.
    pub datacenter: String,
    /// The human-readable location the engine reports at the bottom of the
    /// page ("Google Search reports the user's precise location", §2.2).
    pub reported_location: String,
    /// The cards.
    pub cards: Vec<Card>,
}

impl SerpPage {
    /// An empty page.
    pub fn new(
        query: impl Into<String>,
        gps: Option<&str>,
        datacenter: impl Into<String>,
        reported_location: impl Into<String>,
    ) -> Self {
        SerpPage {
            query: query.into(),
            gps: gps.map(str::to_owned),
            datacenter: datacenter.into(),
            reported_location: reported_location.into(),
            cards: Vec::new(),
        }
    }

    /// Append a card.
    pub fn push_card(&mut self, card: Card) {
        self.cards.push(card);
    }

    /// Apply the paper's extraction rule: first link of each card, all links
    /// of Maps and News cards; ranks assigned in page order.
    pub fn extract_results(&self) -> Vec<SerpResult> {
        let mut out = Vec::new();
        for card in &self.cards {
            let take = if card.ctype.extract_all_links() {
                card.entries.len()
            } else {
                1.min(card.entries.len())
            };
            for (url, title) in card.entries.iter().take(take) {
                out.push(SerpResult {
                    rank: out.len(),
                    url: url.clone(),
                    title: title.clone(),
                    rtype: card.ctype.result_type(),
                });
            }
        }
        out
    }

    /// Extracted URLs only, in order (what the comparison metrics consume).
    pub fn urls(&self) -> Vec<String> {
        self.extract_results().into_iter().map(|r| r.url).collect()
    }

    /// Total extracted-link count (the paper observes 12–22 per page).
    pub fn result_count(&self) -> usize {
        self.cards.iter().map(Card::extracted_len).sum()
    }

    /// Whether the page contains a card of the given type.
    pub fn has_card(&self, ctype: CardType) -> bool {
        self.cards.iter().any(|c| c.ctype == ctype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> SerpPage {
        let mut p = SerpPage::new("school", Some("41.0,-81.0"), "dc0", "Cleveland, OH");
        p.push_card(Card::single(CardType::Organic, "u1", "t1"));
        let mut maps = Card::new(CardType::Maps);
        maps.push("m1", "p1");
        maps.push("m2", "p2");
        maps.push("m3", "p3");
        p.push_card(maps);
        p.push_card(Card::single(CardType::Organic, "u2", "t2"));
        let mut news = Card::new(CardType::News);
        news.push("n1", "a1");
        news.push("n2", "a2");
        p.push_card(news);
        p
    }

    #[test]
    fn extraction_order_and_ranks() {
        let res = page().extract_results();
        let urls: Vec<&str> = res.iter().map(|r| r.url.as_str()).collect();
        assert_eq!(urls, vec!["u1", "m1", "m2", "m3", "u2", "n1", "n2"]);
        for (i, r) in res.iter().enumerate() {
            assert_eq!(r.rank, i);
        }
    }

    #[test]
    fn result_types_follow_cards() {
        let res = page().extract_results();
        assert_eq!(res[0].rtype, ResultType::Organic);
        assert_eq!(res[1].rtype, ResultType::Maps);
        assert_eq!(res[5].rtype, ResultType::News);
    }

    #[test]
    fn result_count_matches_extraction() {
        let p = page();
        assert_eq!(p.result_count(), p.extract_results().len());
        assert_eq!(p.result_count(), 7);
    }

    #[test]
    fn organic_card_contributes_one_even_with_sitelinks() {
        let mut c = Card::single(CardType::Organic, "u", "t");
        c.push("u-sub", "sub");
        assert_eq!(c.extracted_len(), 1);
        let mut m = Card::new(CardType::Maps);
        assert_eq!(m.extracted_len(), 0);
        m.push("a", "b");
        m.push("c", "d");
        assert_eq!(m.extracted_len(), 2);
    }

    #[test]
    fn has_card_lookup() {
        let p = page();
        assert!(p.has_card(CardType::Maps));
        assert!(p.has_card(CardType::News));
        let empty = SerpPage::new("x", None, "dc0", "USA");
        assert!(!empty.has_card(CardType::Maps));
        assert_eq!(empty.result_count(), 0);
    }

    #[test]
    fn card_type_wire_roundtrip() {
        for t in [CardType::Organic, CardType::Maps, CardType::News] {
            assert_eq!(CardType::from_wire(t.wire_name()), Some(t));
        }
        assert_eq!(CardType::from_wire("bogus"), None);
    }

    #[test]
    fn urls_helper() {
        assert_eq!(page().urls()[0], "u1");
    }
}
