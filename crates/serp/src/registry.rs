//! The component-parser registry: one [`ComponentSpec`] per card type.
//!
//! A SERP is a sequence of typed, position-specified components (the
//! WebSearcher decomposition). Each component declares, in one place:
//!
//! * its **wire name** (`<card type="…">`),
//! * its **position class** — header, main, or footer — which the parser
//!   enforces as a non-decreasing order down the page,
//! * its **extraction rule** — first link, all links, or no links — which
//!   drives [`SerpPage::extract_results`](crate::SerpPage::extract_results),
//! * the [`ResultType`] its extracted links carry into the analysis, and
//! * a `parse_fn`/`render_fn` pair: the render side owns the card's exact
//!   wire bytes, the parse side validates a collected [`CardDraft`] (slot
//!   attributes, non-empty packs) into a typed [`Card`].
//!
//! The strict parser rejects unregistered card types (`BadCardType`), which
//! preserves the fault-injection contract: structural damage fails loudly.
//! The lenient parser instead funnels unregistered types through the
//! [`CardType::Unknown`] spec, so a scraper pointed at a richer page than it
//! knows about degrades gracefully instead of dying.

use crate::markup::ParseError;
use crate::model::{Card, CardType, ResultType};
use std::sync::OnceLock;

/// Where on the page a component may appear. The parser enforces that card
/// position classes are non-decreasing down the page (header cards first,
/// footer cards last).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PositionClass {
    /// Pinned above the organic results (answer boxes).
    Header,
    /// The main result column.
    Main,
    /// Pinned below the organic results (knowledge panels).
    Footer,
}

impl PositionClass {
    /// Ordering rank down the page.
    pub fn rank(self) -> u8 {
        match self {
            PositionClass::Header => 0,
            PositionClass::Main => 1,
            PositionClass::Footer => 2,
        }
    }
}

/// How many of a card's links the paper's extraction rule takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtractionRule {
    /// Only the first link (organic results, answer boxes).
    FirstLink,
    /// Every link (Maps, News, local packs, ads).
    AllLinks,
    /// No links at all (unknown components are skipped, not guessed at).
    NoLinks,
}

/// The raw material the parser collects for one card before the component's
/// `parse_fn` turns it into a typed [`Card`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CardDraft {
    /// The raw `type="…"` attribute value.
    pub wire_type: String,
    /// The raw `slot="…"` attribute value, if present.
    pub slot: Option<String>,
    /// `(url, title)` entries in wire order.
    pub entries: Vec<(String, String)>,
    /// 1-based line of the opening `<card …>` element.
    pub line: usize,
}

/// Validates a collected [`CardDraft`] into a typed [`Card`].
pub type ParseFn = fn(&ComponentSpec, CardDraft) -> Result<Card, ParseError>;

/// Appends a card's exact wire bytes (including the trailing newline of its
/// `</card>` line) to the output buffer.
pub type RenderFn = fn(&ComponentSpec, &Card, &mut String);

/// Everything the format knows about one component type.
pub struct ComponentSpec {
    /// The card type this spec parses and renders.
    pub ctype: CardType,
    /// The `type="…"` attribute value on the wire.
    pub wire_name: &'static str,
    /// Where on the page this component may appear.
    pub position: PositionClass,
    /// How its links are extracted.
    pub extraction: ExtractionRule,
    /// The result type its extracted links carry.
    pub rtype: ResultType,
    /// The parse half of the pair.
    pub parse_fn: ParseFn,
    /// The render half of the pair.
    pub render_fn: RenderFn,
}

impl std::fmt::Debug for ComponentSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentSpec")
            .field("ctype", &self.ctype)
            .field("wire_name", &self.wire_name)
            .field("position", &self.position)
            .field("extraction", &self.extraction)
            .field("rtype", &self.rtype)
            .finish_non_exhaustive()
    }
}

/// The highest `slot="…"` value an ads card may carry: slots index organic
/// positions, and the engine never renders more than ~24 results per page.
pub const MAX_AD_SLOT: u32 = 24;

/// A set of registered component specs, looked up by wire name (parsing) or
/// card type (rendering, extraction).
pub struct ComponentRegistry {
    specs: Vec<ComponentSpec>,
}

impl ComponentRegistry {
    /// An empty registry. Useful for tests that exercise dispatch; real
    /// callers want [`ComponentRegistry::builtin`].
    pub fn empty() -> Self {
        ComponentRegistry { specs: Vec::new() }
    }

    /// Register a spec.
    ///
    /// # Panics
    ///
    /// If the wire name or card type is already registered — duplicate
    /// registration is a programming error, not a runtime condition.
    pub fn register(&mut self, spec: ComponentSpec) {
        assert!(
            self.by_wire(spec.wire_name).is_none(),
            "wire name {:?} registered twice",
            spec.wire_name
        );
        assert!(
            self.spec(spec.ctype).is_none(),
            "card type {:?} registered twice",
            spec.ctype
        );
        self.specs.push(spec);
    }

    /// Look up the spec that parses `<card type="name">`.
    pub fn by_wire(&self, name: &str) -> Option<&ComponentSpec> {
        self.specs.iter().find(|s| s.wire_name == name)
    }

    /// Look up the spec for a card type.
    pub fn spec(&self, ctype: CardType) -> Option<&ComponentSpec> {
        self.specs.iter().find(|s| s.ctype == ctype)
    }

    /// Every registered spec, in registration order.
    pub fn specs(&self) -> &[ComponentSpec] {
        &self.specs
    }

    /// The built-in registry covering the full component taxonomy. Covers
    /// every [`CardType`] variant, including [`CardType::Unknown`] (the
    /// lenient parser's fallback spec).
    pub fn builtin() -> &'static ComponentRegistry {
        static BUILTIN: OnceLock<ComponentRegistry> = OnceLock::new();
        BUILTIN.get_or_init(|| {
            let mut r = ComponentRegistry::empty();
            r.register(ComponentSpec {
                ctype: CardType::Organic,
                wire_name: "organic",
                position: PositionClass::Main,
                extraction: ExtractionRule::FirstLink,
                rtype: ResultType::Organic,
                parse_fn: parse_plain,
                render_fn: render_plain,
            });
            r.register(ComponentSpec {
                ctype: CardType::Maps,
                wire_name: "maps",
                position: PositionClass::Main,
                extraction: ExtractionRule::AllLinks,
                rtype: ResultType::Maps,
                parse_fn: parse_plain,
                render_fn: render_plain,
            });
            r.register(ComponentSpec {
                ctype: CardType::News,
                wire_name: "news",
                position: PositionClass::Main,
                extraction: ExtractionRule::AllLinks,
                rtype: ResultType::News,
                parse_fn: parse_plain,
                render_fn: render_plain,
            });
            r.register(ComponentSpec {
                ctype: CardType::LocalPack,
                wire_name: "local_pack",
                position: PositionClass::Main,
                extraction: ExtractionRule::AllLinks,
                rtype: ResultType::LocalPack,
                parse_fn: parse_nonempty,
                render_fn: render_plain,
            });
            r.register(ComponentSpec {
                ctype: CardType::AnswerBox,
                wire_name: "answer_box",
                position: PositionClass::Header,
                extraction: ExtractionRule::FirstLink,
                rtype: ResultType::AnswerBox,
                parse_fn: parse_nonempty,
                render_fn: render_plain,
            });
            r.register(ComponentSpec {
                ctype: CardType::KnowledgePanel,
                wire_name: "knowledge_panel",
                position: PositionClass::Footer,
                extraction: ExtractionRule::FirstLink,
                rtype: ResultType::KnowledgePanel,
                parse_fn: parse_nonempty,
                render_fn: render_plain,
            });
            r.register(ComponentSpec {
                ctype: CardType::Ads,
                wire_name: "ads",
                position: PositionClass::Main,
                extraction: ExtractionRule::AllLinks,
                rtype: ResultType::Ads,
                parse_fn: parse_ads,
                render_fn: render_slotted,
            });
            r.register(ComponentSpec {
                ctype: CardType::Unknown,
                wire_name: "unknown",
                position: PositionClass::Main,
                extraction: ExtractionRule::NoLinks,
                rtype: ResultType::Unknown,
                parse_fn: parse_unknown,
                render_fn: render_plain,
            });
            r
        })
    }
}

/// The permissive default: any entries (including none — the original
/// three-type parser accepted empty cards, and the fault batteries rely on
/// that behavior being stable), no slot attribute semantics.
fn parse_plain(spec: &ComponentSpec, draft: CardDraft) -> Result<Card, ParseError> {
    let mut card = Card::new(spec.ctype);
    card.entries = draft.entries;
    Ok(card)
}

/// Like [`parse_plain`], but an empty card is structural damage: a local
/// pack, answer box, or knowledge panel with nothing in it was truncated.
fn parse_nonempty(spec: &ComponentSpec, draft: CardDraft) -> Result<Card, ParseError> {
    if draft.entries.is_empty() {
        return Err(ParseError::EmptyComponent { line: draft.line });
    }
    parse_plain(spec, draft)
}

/// Ads carry a mandatory, range-checked `slot="…"` attribute naming the
/// organic position they are interleaved at.
fn parse_ads(spec: &ComponentSpec, draft: CardDraft) -> Result<Card, ParseError> {
    let bad = ParseError::BadAttribute {
        line: draft.line,
        attr: "slot",
    };
    let slot: u32 = draft
        .slot
        .as_deref()
        .and_then(|s| s.parse().ok())
        .ok_or(bad.clone())?;
    if slot > MAX_AD_SLOT {
        return Err(bad);
    }
    if draft.entries.is_empty() {
        return Err(ParseError::EmptyComponent { line: draft.line });
    }
    let mut card = Card::new(spec.ctype);
    card.entries = draft.entries;
    card.slot = Some(slot);
    Ok(card)
}

/// The lenient parser's fallback: keep the entries (so the card is visible
/// to `has_card`/debugging) but extract nothing — an unknown component is
/// skipped, not guessed at.
fn parse_unknown(spec: &ComponentSpec, draft: CardDraft) -> Result<Card, ParseError> {
    parse_plain(spec, draft)
}

/// The card wire bytes every original component renders: open tag, one
/// `<r …/>` line per entry, close tag. Must stay byte-identical — the
/// committed golden page digests pin this.
fn render_plain(spec: &ComponentSpec, card: &Card, out: &mut String) {
    out.push_str("<card type=\"");
    out.push_str(spec.wire_name);
    out.push_str("\">\n");
    render_entries(card, out);
    out.push_str("</card>\n");
}

/// Ads render their slot attribute after the type.
fn render_slotted(spec: &ComponentSpec, card: &Card, out: &mut String) {
    out.push_str("<card type=\"");
    out.push_str(spec.wire_name);
    out.push('"');
    if let Some(slot) = card.slot {
        out.push_str(" slot=\"");
        out.push_str(&slot.to_string());
        out.push('"');
    }
    out.push_str(">\n");
    render_entries(card, out);
    out.push_str("</card>\n");
}

fn render_entries(card: &Card, out: &mut String) {
    for (url, title) in &card.entries {
        out.push_str("<r url=\"");
        out.push_str(&crate::markup::escape(url));
        out.push_str("\" title=\"");
        out.push_str(&crate::markup::escape(title));
        out.push_str("\"/>\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_every_card_type() {
        let reg = ComponentRegistry::builtin();
        for t in CardType::ALL {
            let spec = reg
                .spec(t)
                .expect("builtin registry covers every card type");
            assert_eq!(spec.ctype, t);
            assert_eq!(
                reg.by_wire(spec.wire_name).unwrap().ctype,
                t,
                "wire lookup must invert type lookup"
            );
        }
        assert_eq!(reg.specs().len(), CardType::ALL.len());
    }

    #[test]
    fn extraction_rules_match_result_types() {
        let reg = ComponentRegistry::builtin();
        // Every spec with NoLinks extraction must not claim a link-bearing
        // result type in the analysis.
        for spec in reg.specs() {
            if spec.extraction == ExtractionRule::NoLinks {
                assert_eq!(spec.rtype, ResultType::Unknown);
            }
        }
        assert_eq!(
            reg.spec(CardType::Organic).unwrap().extraction,
            ExtractionRule::FirstLink
        );
        assert_eq!(
            reg.spec(CardType::Maps).unwrap().extraction,
            ExtractionRule::AllLinks
        );
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_wire_name_panics() {
        let mut r = ComponentRegistry::empty();
        let spec = || ComponentSpec {
            ctype: CardType::Organic,
            wire_name: "organic",
            position: PositionClass::Main,
            extraction: ExtractionRule::FirstLink,
            rtype: ResultType::Organic,
            parse_fn: parse_plain,
            render_fn: render_plain,
        };
        r.register(spec());
        r.register(spec());
    }

    #[test]
    fn ads_parse_validates_slot() {
        let reg = ComponentRegistry::builtin();
        let spec = reg.spec(CardType::Ads).unwrap();
        let draft = |slot: Option<&str>, entries: usize| CardDraft {
            wire_type: "ads".into(),
            slot: slot.map(str::to_owned),
            entries: (0..entries)
                .map(|i| (format!("u{i}"), format!("t{i}")))
                .collect(),
            line: 7,
        };
        let ok = (spec.parse_fn)(spec, draft(Some("3"), 2)).unwrap();
        assert_eq!(ok.slot, Some(3));
        assert!(matches!(
            (spec.parse_fn)(spec, draft(None, 2)),
            Err(ParseError::BadAttribute {
                line: 7,
                attr: "slot"
            })
        ));
        assert!(matches!(
            (spec.parse_fn)(spec, draft(Some("99"), 2)),
            Err(ParseError::BadAttribute {
                line: 7,
                attr: "slot"
            })
        ));
        assert!(matches!(
            (spec.parse_fn)(spec, draft(Some("x"), 2)),
            Err(ParseError::BadAttribute {
                line: 7,
                attr: "slot"
            })
        ));
        assert!(matches!(
            (spec.parse_fn)(spec, draft(Some("3"), 0)),
            Err(ParseError::EmptyComponent { line: 7 })
        ));
    }

    #[test]
    fn position_ranks_are_ordered() {
        assert!(PositionClass::Header.rank() < PositionClass::Main.rank());
        assert!(PositionClass::Main.rank() < PositionClass::Footer.rank());
    }
}
