//! Engine configuration: every ranking weight, vertical policy, and noise
//! knob, so the ablation benches can flip single mechanisms.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why an [`EngineConfig`] was rejected by [`EngineConfig::validate`].
///
/// Marked `#[non_exhaustive]`: future invariants may add variants without a
/// breaking release, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A scale parameter (`local_sigma_km`, `maps_sigma_km`) must be
    /// strictly positive.
    NonPositiveScale {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A count parameter (`organic_count`, `per_domain_cap`, `ab_buckets`,
    /// `replicas_per_datacenter`, `datacenters`, card capacities) must be at
    /// least one.
    ZeroCount {
        /// The offending field.
        field: &'static str,
    },
    /// A fraction parameter (`replica_skew`, `maps_suppress`) must lie in
    /// `[0, 1)`.
    FractionOutOfRange {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositiveScale { field, value } => {
                write!(f, "{field} must be positive (got {value})")
            }
            ConfigError::ZeroCount { field } => write!(f, "{field} must be >= 1"),
            ConfigError::FractionOutOfRange { field, value } => {
                write!(f, "{field} must be in [0,1) (got {value})")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Shape of the distance-decay kernel applied to locally scoped pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecayKernel {
    /// `exp(-d/sigma)` — smooth, the default.
    Exponential,
    /// `1 / (1 + (d/sigma)^2)` — heavier tail.
    InversePower,
    /// `1` inside `sigma`, `0` outside — hard cutoff.
    Step,
}

impl DecayKernel {
    /// Evaluate the kernel at distance `d_km` with scale `sigma_km`;
    /// 1.0 at zero distance, decreasing in distance, in `[0, 1]`.
    pub fn eval(self, d_km: f64, sigma_km: f64) -> f64 {
        debug_assert!(sigma_km > 0.0);
        match self {
            DecayKernel::Exponential => (-d_km / sigma_km).exp(),
            DecayKernel::InversePower => 1.0 / (1.0 + (d_km / sigma_km).powi(2)),
            DecayKernel::Step => {
                if d_km <= sigma_km {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// How the engine chooses which location to personalize for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocationPrecedence {
    /// GPS header wins; IP geolocation is the fallback (what the paper
    /// established Google does).
    GpsFirst,
    /// IP geolocation wins even when GPS is present (the counterfactual the
    /// §2.2 validation experiment would have detected).
    IpFirst,
}

/// Maps-card trigger policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapsPolicy {
    /// Local intent required, and navigational brand dominance suppresses
    /// the card (the paper's observed behaviour).
    LocalIntentNonNavigational,
    /// Any query with matching places gets a card (ablation).
    Always,
    /// Never show a Maps card (ablation).
    Never,
}

/// Which inverted-index implementation the engine retrieves from.
///
/// Both backends are byte-identical on every retrieval surface (proven by
/// `tests/index_equivalence.rs` and the differential tests in
/// [`crate::index`]); they differ only in storage and per-query cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexBackend {
    /// Exhaustive `HashMap<token, Vec<PageId>>` reference index.
    Exact,
    /// Delta/varint posting blocks with skip pointers and MaxScore-style
    /// top-k early termination.
    #[default]
    Compressed,
}

impl std::str::FromStr for IndexBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(IndexBackend::Exact),
            "compressed" => Ok(IndexBackend::Compressed),
            other => Err(format!(
                "unknown index backend '{other}' (expected 'exact' or 'compressed')"
            )),
        }
    }
}

impl std::fmt::Display for IndexBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IndexBackend::Exact => "exact",
            IndexBackend::Compressed => "compressed",
        })
    }
}

/// Which SERP component set the engine composes pages from.
///
/// `Paper` renders exactly the components the paper measured (organic,
/// Maps, News) and is byte-identical to the pages this repo served before
/// the knob existed — every committed golden page digest pins that. `Rich`
/// additionally renders the full component taxonomy: local packs, answer
/// boxes, knowledge panels, and ads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComponentSet {
    /// Organic + Maps + News, exactly as the paper observed.
    #[default]
    Paper,
    /// The full taxonomy: adds local packs, answer boxes, knowledge
    /// panels, and ads.
    Rich,
}

impl std::str::FromStr for ComponentSet {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "paper" => Ok(ComponentSet::Paper),
            "rich" => Ok(ComponentSet::Rich),
            other => Err(format!(
                "unknown component set '{other}' (expected 'paper' or 'rich')"
            )),
        }
    }
}

impl std::fmt::Display for ComponentSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ComponentSet::Paper => "paper",
            ComponentSet::Rich => "rich",
        })
    }
}

/// Full engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    // ---- ranking ----
    /// Kernel for local-page distance decay.
    pub decay_kernel: DecayKernel,
    /// Decay scale (km) for locally scoped pages in organic ranking.
    pub local_sigma_km: f64,
    /// Geographic weight for locally scoped pages under local intent.
    pub local_weight_local_intent: f64,
    /// Geographic weight for locally scoped pages without local intent.
    pub local_weight_other: f64,
    /// Boost for state-scoped pages when the searcher is in that state.
    pub state_weight: f64,
    /// Boost for county-scoped pages when the searcher is in that county.
    pub county_weight: f64,
    /// Relative lexical score of OR-matched (partial) candidates.
    pub partial_match_score: f64,
    /// Organic results per page before meta-cards.
    pub organic_count: usize,
    /// Max organic results sharing one domain.
    pub per_domain_cap: usize,

    // ---- verticals ----
    /// The maps policy.
    pub maps_policy: MapsPolicy,
    /// Decay scale (km) for the Maps vertical (tighter than organic).
    pub maps_sigma_km: f64,
    /// Base score a top place must clear for a Maps card to appear.
    pub maps_threshold: f64,
    /// Max links in a Maps card.
    pub maps_max_links: usize,
    /// Min matching news articles for an "In the News" card.
    pub news_min_articles: usize,
    /// Max links in a News card.
    pub news_max_links: usize,
    /// Freshness half-life of news articles, in days.
    pub news_halflife_days: f64,

    // ---- location ----
    /// The location precedence.
    pub location_precedence: LocationPrecedence,

    // ---- noise ----
    /// Master switch for every nondeterminism source (ablation:
    /// a perfectly deterministic engine).
    pub noise_enabled: bool,
    /// Number of concurrent A/B ranking experiments (buckets).
    pub ab_buckets: u32,
    /// Max multiplicative perturbation an A/B bucket applies to the
    /// geographic weight (e.g. 0.12 → factors in [0.88, 1.12]).
    pub ab_amplitude: f64,
    /// Index replicas per datacenter.
    pub replicas_per_datacenter: u32,
    /// Fraction of pages missing from any given replica (staleness).
    pub replica_skew: f64,
    /// Multiplicative score jitter for near-tie reordering (per request ×
    /// page).
    pub tiebreak_jitter: f64,
    /// Amplitude of the per-request Maps-threshold flicker.
    pub maps_flicker: f64,
    /// Probability that a request lands in an A/B bucket whose UI hides the
    /// Maps card entirely ("one page having Maps results and the other
    /// having none" — the dominant Maps-noise mode in §3.1).
    pub maps_suppress: f64,

    // ---- history personalization ----
    /// Window (minutes) during which prior searches from the same session
    /// influence ranking (§2.2: 10 minutes; the crawler waits 11).
    pub history_window_minutes: u64,
    /// Boost applied to pages matching recent search terms.
    pub history_boost: f64,

    // ---- operational ----
    /// Result-cache TTL in milliseconds: when `Some`, the engine caches a
    /// rendered SERP per (query, coarse location, day) and serves identical
    /// copies until expiry — a realistic deployment optimization that would
    /// have *masked* the paper's noise finding (ablation; the paper's
    /// measurements imply Google did not cache per-query results this way).
    pub serp_cache_ttl_ms: Option<u64>,
    /// Datacenter count behind the service name.
    pub datacenters: u32,
    /// Per-IP rate limit: max requests per window.
    pub rate_limit_max: usize,
    /// Rate-limit window in milliseconds.
    pub rate_limit_window_ms: u64,
    /// Which inverted-index backend serves retrieval. Not serialized:
    /// backends are byte-identical, so the choice is an operational knob
    /// (like a socket backend), not part of a world's identity — and
    /// checkpoints written before the knob existed stay readable.
    #[serde(skip)]
    pub index_backend: IndexBackend,
    /// Which SERP component set pages are composed from. Not serialized,
    /// for the same reason as `index_backend`: the default (`Paper`) is
    /// byte-identical to the pre-knob engine, the knob is operational, and
    /// checkpoints written before it existed stay readable. A `Rich` world
    /// is selected per run (`--components rich`), never baked into a
    /// serialized config.
    #[serde(skip)]
    pub component_set: ComponentSet,
}

impl EngineConfig {
    /// The configuration used for all paper-reproduction experiments.
    pub fn paper_defaults() -> Self {
        EngineConfig {
            decay_kernel: DecayKernel::Exponential,
            local_sigma_km: 28.0,
            local_weight_local_intent: 4.0,
            local_weight_other: 0.25,
            state_weight: 1.1,
            county_weight: 1.6,
            partial_match_score: 0.35,
            organic_count: 12,
            per_domain_cap: 2,
            maps_policy: MapsPolicy::LocalIntentNonNavigational,
            maps_sigma_km: 8.0,
            maps_threshold: 0.28,
            maps_max_links: 7,
            news_min_articles: 2,
            news_max_links: 3,
            news_halflife_days: 7.0,
            location_precedence: LocationPrecedence::GpsFirst,
            noise_enabled: true,
            ab_buckets: 16,
            ab_amplitude: 0.15,
            replicas_per_datacenter: 4,
            replica_skew: 0.005,
            tiebreak_jitter: 0.004,
            maps_flicker: 0.45,
            maps_suppress: 0.15,
            history_window_minutes: 10,
            history_boost: 1.15,
            serp_cache_ttl_ms: None,
            datacenters: 3,
            rate_limit_max: 30,
            rate_limit_window_ms: 60_000,
            index_backend: IndexBackend::default(),
            component_set: ComponentSet::default(),
        }
    }

    /// Paper defaults retrieving through the chosen index backend.
    pub fn with_index_backend(backend: IndexBackend) -> Self {
        EngineConfig {
            index_backend: backend,
            ..Self::paper_defaults()
        }
    }

    /// Paper defaults composing pages from the chosen component set.
    pub fn with_component_set(components: ComponentSet) -> Self {
        EngineConfig {
            component_set: components,
            ..Self::paper_defaults()
        }
    }

    /// This configuration with a different component set (chainable).
    pub fn components(mut self, components: ComponentSet) -> Self {
        self.component_set = components;
        self
    }

    /// An alternative engine profile — the paper's future work ("our
    /// methodology can easily be extended to other … search engines").
    /// Compared to [`EngineConfig::paper_defaults`] this engine weighs
    /// proximity less, uses a heavier-tailed decay, always shows Maps for
    /// matching places, keeps larger News cards, and runs fewer/larger A/B
    /// experiments — a plausibly different personalization philosophy whose
    /// measured shape the methodology must distinguish from the default.
    pub fn alternative_engine() -> Self {
        EngineConfig {
            decay_kernel: DecayKernel::InversePower,
            local_sigma_km: 60.0,
            local_weight_local_intent: 2.0,
            state_weight: 1.4,
            maps_policy: MapsPolicy::Always,
            maps_max_links: 5,
            news_max_links: 5,
            news_halflife_days: 3.0,
            ab_buckets: 4,
            ab_amplitude: 0.25,
            ..Self::paper_defaults()
        }
    }

    /// Paper defaults plus a result cache (ablation: caching masks noise).
    pub fn with_result_cache(ttl_ms: u64) -> Self {
        EngineConfig {
            serp_cache_ttl_ms: Some(ttl_ms),
            ..Self::paper_defaults()
        }
    }

    /// Paper defaults with every noise source disabled (ablation).
    pub fn noiseless() -> Self {
        EngineConfig {
            noise_enabled: false,
            ..Self::paper_defaults()
        }
    }

    /// Validate invariants. Every constructor on this type produces a valid
    /// configuration; hand-built or field-overridden configurations go
    /// through here (the [`crate::SearchEngine`] builder refuses invalid
    /// ones at `build()`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let positive = |field, value: f64| {
            if value > 0.0 {
                Ok(())
            } else {
                Err(ConfigError::NonPositiveScale { field, value })
            }
        };
        let fraction = |field, value: f64| {
            if (0.0..1.0).contains(&value) {
                Ok(())
            } else {
                Err(ConfigError::FractionOutOfRange { field, value })
            }
        };
        let at_least_one = |field, value: u64| {
            if value >= 1 {
                Ok(())
            } else {
                Err(ConfigError::ZeroCount { field })
            }
        };
        positive("local_sigma_km", self.local_sigma_km)?;
        positive("maps_sigma_km", self.maps_sigma_km)?;
        at_least_one("organic_count", self.organic_count as u64)?;
        at_least_one("per_domain_cap", self.per_domain_cap as u64)?;
        at_least_one("ab_buckets", u64::from(self.ab_buckets))?;
        at_least_one(
            "replicas_per_datacenter",
            u64::from(self.replicas_per_datacenter),
        )?;
        fraction("replica_skew", self.replica_skew)?;
        at_least_one("datacenters", u64::from(self.datacenters))?;
        fraction("maps_suppress", self.maps_suppress)?;
        at_least_one("maps_max_links", self.maps_max_links as u64)?;
        at_least_one("news_max_links", self.news_max_links as u64)?;
        Ok(())
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        assert_eq!(EngineConfig::paper_defaults().validate(), Ok(()));
        assert_eq!(EngineConfig::noiseless().validate(), Ok(()));
        assert_eq!(EngineConfig::alternative_engine().validate(), Ok(()));
        assert_eq!(EngineConfig::with_result_cache(60_000).validate(), Ok(()));
        assert_eq!(
            EngineConfig::with_index_backend(IndexBackend::Exact).validate(),
            Ok(())
        );
    }

    #[test]
    fn index_backend_parses_and_displays() {
        assert_eq!("exact".parse::<IndexBackend>(), Ok(IndexBackend::Exact));
        assert_eq!(
            "compressed".parse::<IndexBackend>(),
            Ok(IndexBackend::Compressed)
        );
        assert!("fast".parse::<IndexBackend>().is_err());
        assert_eq!(IndexBackend::Exact.to_string(), "exact");
        assert_eq!(IndexBackend::Compressed.to_string(), "compressed");
        assert_eq!(IndexBackend::default(), IndexBackend::Compressed);
    }

    #[test]
    fn index_backend_is_not_part_of_serialized_identity() {
        // The backend is an operational knob: two configs differing only
        // in backend serialize identically, and deserialization restores
        // the default.
        let exact = EngineConfig::with_index_backend(IndexBackend::Exact);
        let compressed = EngineConfig::paper_defaults();
        let a = serde_json::to_string(&exact).unwrap();
        let b = serde_json::to_string(&compressed).unwrap();
        assert_eq!(a, b);
        let back: EngineConfig = serde_json::from_str(&a).unwrap();
        assert_eq!(back.index_backend, IndexBackend::Compressed);
    }

    #[test]
    fn component_set_parses_and_displays() {
        assert_eq!("paper".parse::<ComponentSet>(), Ok(ComponentSet::Paper));
        assert_eq!("rich".parse::<ComponentSet>(), Ok(ComponentSet::Rich));
        assert!("full".parse::<ComponentSet>().is_err());
        assert_eq!(ComponentSet::Paper.to_string(), "paper");
        assert_eq!(ComponentSet::Rich.to_string(), "rich");
        assert_eq!(ComponentSet::default(), ComponentSet::Paper);
    }

    #[test]
    fn component_set_is_not_part_of_serialized_identity() {
        // Same contract as the index backend: the component set is chosen
        // per run, two configs differing only in it serialize identically,
        // and deserialization restores the (Paper) default.
        let rich = EngineConfig::with_component_set(ComponentSet::Rich);
        let paper = EngineConfig::paper_defaults();
        let a = serde_json::to_string(&rich).unwrap();
        let b = serde_json::to_string(&paper).unwrap();
        assert_eq!(a, b);
        let back: EngineConfig = serde_json::from_str(&a).unwrap();
        assert_eq!(back.component_set, ComponentSet::Paper);
        assert_eq!(
            EngineConfig::with_component_set(ComponentSet::Rich).validate(),
            Ok(())
        );
        assert_eq!(
            EngineConfig::paper_defaults()
                .components(ComponentSet::Rich)
                .component_set,
            ComponentSet::Rich
        );
    }

    #[test]
    fn alternative_engine_differs_meaningfully() {
        let a = EngineConfig::paper_defaults();
        let b = EngineConfig::alternative_engine();
        assert_ne!(a.decay_kernel, b.decay_kernel);
        assert_ne!(a.maps_policy, b.maps_policy);
        assert!(b.local_weight_local_intent < a.local_weight_local_intent);
    }

    #[test]
    fn noiseless_flips_only_noise() {
        let a = EngineConfig::paper_defaults();
        let b = EngineConfig::noiseless();
        assert!(a.noise_enabled);
        assert!(!b.noise_enabled);
        assert_eq!(a.local_sigma_km, b.local_sigma_km);
        assert_eq!(a.maps_policy, b.maps_policy);
    }

    #[test]
    fn validate_catches_zero_organic() {
        let cfg = EngineConfig {
            organic_count: 0,
            ..EngineConfig::paper_defaults()
        };
        let err = cfg.validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::ZeroCount {
                field: "organic_count"
            }
        );
        assert!(err.to_string().contains("organic_count"), "{err}");
    }

    #[test]
    fn validate_catches_full_skew() {
        let cfg = EngineConfig {
            replica_skew: 1.0,
            ..EngineConfig::paper_defaults()
        };
        let err = cfg.validate().unwrap_err();
        assert_eq!(
            err,
            ConfigError::FractionOutOfRange {
                field: "replica_skew",
                value: 1.0
            }
        );
        assert!(err.to_string().contains("replica_skew"), "{err}");
    }

    #[test]
    fn validate_catches_every_guarded_field() {
        let base = EngineConfig::paper_defaults;
        let cases: Vec<(EngineConfig, &str)> = vec![
            (
                EngineConfig {
                    local_sigma_km: 0.0,
                    ..base()
                },
                "local_sigma_km",
            ),
            (
                EngineConfig {
                    maps_sigma_km: -1.0,
                    ..base()
                },
                "maps_sigma_km",
            ),
            (
                EngineConfig {
                    per_domain_cap: 0,
                    ..base()
                },
                "per_domain_cap",
            ),
            (
                EngineConfig {
                    ab_buckets: 0,
                    ..base()
                },
                "ab_buckets",
            ),
            (
                EngineConfig {
                    replicas_per_datacenter: 0,
                    ..base()
                },
                "replicas_per_datacenter",
            ),
            (
                EngineConfig {
                    datacenters: 0,
                    ..base()
                },
                "datacenters",
            ),
            (
                EngineConfig {
                    maps_suppress: 1.5,
                    ..base()
                },
                "maps_suppress",
            ),
            (
                EngineConfig {
                    maps_max_links: 0,
                    ..base()
                },
                "maps_max_links",
            ),
            (
                EngineConfig {
                    news_max_links: 0,
                    ..base()
                },
                "news_max_links",
            ),
        ];
        for (cfg, field) in cases {
            let err = cfg.validate().unwrap_err();
            assert!(err.to_string().contains(field), "{field}: {err}");
        }
    }

    #[test]
    fn config_error_implements_error() {
        let err: Box<dyn std::error::Error> = Box::new(ConfigError::ZeroCount {
            field: "datacenters",
        });
        assert!(err.to_string().contains("datacenters"));
    }
}
