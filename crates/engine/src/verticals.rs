//! The Maps and News verticals.
//!
//! Mobile Google embeds meta-result cards in the SERP (§2.2, Figure 1). The
//! paper finds that Maps results explain 18–27 % of local-query differences
//! and News results 6–18 % of controversial-query differences — so both
//! verticals must exist, be location-sensitive in the right ways, and be
//! subject to the card-presence flicker that dominates Maps noise.

use crate::config::EngineConfig;
use crate::postings::intersect_sorted;
use geoserp_corpus::{tokenize, PageKind, Place, WebCorpus};
use geoserp_geo::{Coord, GridIndex};
use geoserp_serp::{Card, CardType};
use std::collections::HashMap;

/// Inverted index over establishment records for the Maps vertical, paired
/// with a spatial grid so candidate generation is *token match ∩ radius*
#[derive(Debug)]
pub struct PlaceIndex {
    postings: HashMap<String, Vec<usize>>,
    grid: GridIndex<usize>,
    count: usize,
}

impl PlaceIndex {
    /// Build from a corpus's place list.
    pub fn build(corpus: &WebCorpus) -> Self {
        let mut postings: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, place) in corpus.places.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for t in &place.tokens {
                if seen.insert(t.as_str()) {
                    postings.entry(t.clone()).or_default().push(i);
                }
            }
        }
        let grid = GridIndex::build(
            0.5,
            corpus.places.iter().enumerate().map(|(i, p)| (p.coord, i)),
        );
        PlaceIndex {
            postings,
            grid,
            count: corpus.places.len(),
        }
    }

    /// Indexed place count.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the corpus had no places.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Indices of places matching *all* query tokens, ascending.
    ///
    /// Postings are ascending by construction (places are enumerated in
    /// order), so the intersection runs through the shared galloping
    /// kernel — `O(|shortest| · Σ log)` instead of the old clone-the-
    /// shortest-then-hash-each-list pass, which was linear in the *sum*
    /// of posting lengths and dominated Maps candidate generation on
    /// scaled corpora.
    pub fn retrieve(&self, query: &str) -> Vec<usize> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&[usize]> = Vec::with_capacity(tokens.len());
        for t in &tokens {
            match self.postings.get(t) {
                Some(l) => lists.push(l),
                None => return Vec::new(),
            }
        }
        intersect_sorted(&lists)
    }

    /// Places matching all query tokens *and* lying within `radius_km` of
    /// `center`, as `(place index, exact distance)` pairs in index order.
    ///
    /// Score-equivalent to [`PlaceIndex::retrieve`] for the Maps vertical:
    /// beyond ~20 decay lengths a place cannot clear any card threshold, so
    /// the radius cut never changes a SERP, it only skips dead candidates.
    pub fn retrieve_near(&self, query: &str, center: Coord, radius_km: f64) -> Vec<(usize, f64)> {
        let matches = self.retrieve(query);
        if matches.is_empty() {
            return Vec::new();
        }
        let token_set: std::collections::HashSet<usize> = matches.into_iter().collect();
        let mut out: Vec<(usize, f64)> = self
            .grid
            .within_radius(center, radius_km)
            .into_iter()
            .filter(|(i, _, _)| token_set.contains(i))
            .map(|(i, _, d)| (*i, d))
            .collect();
        out.sort_by_key(|(i, _)| *i);
        out
    }
}

/// A selected Maps card plus the URLs it consumed (excluded from organics).
#[derive(Debug, Clone)]
pub struct MapsSelection {
    /// The card.
    pub card: Card,
    /// The urls.
    pub urls: Vec<String>,
}

/// Score one place at a known distance from the user.
fn place_score(place: &Place, d_km: f64, cfg: &EngineConfig) -> f64 {
    place.prominence * cfg.decay_kernel.eval(d_km, cfg.maps_sigma_km)
}

/// Select the Maps card for a local-intent query, if any.
///
/// Candidate places are ranked by prominence × distance decay; the card
/// appears only if the best place clears `maps_threshold ×
/// threshold_multiplier` (the per-request flicker), and carries every
/// candidate above that bar, capped at `maps_max_links` — so nearby dense
/// categories produce 3–7 links and sparse ones 1–2.
pub fn select_maps(
    corpus: &WebCorpus,
    index: &PlaceIndex,
    cfg: &EngineConfig,
    query: &str,
    user: Coord,
    threshold_multiplier: f64,
) -> Option<MapsSelection> {
    // 25 decay lengths: e^-25 ≈ 1e-11 — far below any threshold the card
    // could use, so the radius cut is score-equivalent to a full scan.
    let radius_km = cfg.maps_sigma_km * 25.0;
    let matches = index.retrieve_near(query, user, radius_km);
    if matches.is_empty() {
        return None;
    }
    let mut scored: Vec<(usize, f64)> = matches
        .into_iter()
        .map(|(i, d)| (i, place_score(&corpus.places[i], d, cfg)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let threshold = cfg.maps_threshold * threshold_multiplier;
    if scored.first().is_none_or(|(_, s)| *s < threshold) {
        return None;
    }
    let mut card = Card::new(CardType::Maps);
    let mut urls = Vec::new();
    for (i, s) in scored.into_iter().take(cfg.maps_max_links) {
        if s < threshold * 0.35 {
            break; // long tail is cut well below the trigger bar
        }
        let place = &corpus.places[i];
        card.push(place.url.clone(), place.name.clone());
        urls.push(place.url.clone());
    }
    Some(MapsSelection { card, urls })
}

/// A selected News card plus its consumed URLs.
#[derive(Debug, Clone)]
pub struct NewsSelection {
    /// The card.
    pub card: Card,
    /// The urls.
    pub urls: Vec<String>,
}

/// Select the "In the News" card from already-retrieved candidates.
///
/// `candidates` are `(page index into corpus.pages, lexical score)` for the
/// query; news articles among them are ranked by lexical × authority ×
/// freshness decay (half-life `news_halflife_days` × the A/B freshness
/// multiplier) × a regional boost when the article's state scope matches the
/// searcher. Articles dated after `day` do not exist yet.
pub fn select_news(
    corpus: &WebCorpus,
    candidates: &[(geoserp_corpus::PageId, f64)],
    cfg: &EngineConfig,
    day: u32,
    user_state: Option<&str>,
    freshness_multiplier: f64,
) -> Option<NewsSelection> {
    let mut scored: Vec<(f64, &geoserp_corpus::Page)> = Vec::new();
    for &(id, lexical) in candidates {
        let page = corpus.page(id);
        if page.kind != PageKind::News {
            continue;
        }
        let Some(published) = page.published_day else {
            continue;
        };
        if published > day {
            continue;
        }
        let age = (day - published) as f64;
        let halflife = (cfg.news_halflife_days * freshness_multiplier).max(0.1);
        let freshness = 0.5f64.powf(age / halflife);
        let regional = match (&page.geo, user_state) {
            (geoserp_corpus::GeoScope::State(s), Some(us)) if s == us => 1.4,
            (geoserp_corpus::GeoScope::State(_), _) => 0.5,
            _ => 1.0,
        };
        scored.push((lexical * page.authority * freshness * regional, page));
    }
    if scored.len() < cfg.news_min_articles {
        return None;
    }
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.id.cmp(&b.1.id)));
    let mut card = Card::new(CardType::News);
    let mut urls = Vec::new();
    for (_, page) in scored.into_iter().take(cfg.news_max_links) {
        card.push(page.url.clone(), page.title.clone());
        urls.push(page.url.clone());
    }
    Some(NewsSelection { card, urls })
}

// ---- Rich components (ComponentSet::Rich only) ----
//
// Tuning knobs for the rich set are constants, not `EngineConfig` fields:
// the component set is an operational page-composition mode (like the index
// backend), and keeping its knobs out of the serialized config keeps every
// committed checkpoint, plan, and report byte-stable.

/// Max establishments in a local pack.
pub const LOCAL_PACK_SIZE: usize = 3;
/// Radius (km) a local-pack establishment must fall within. Much tighter
/// than the Maps card's effective radius (~200 km): the pack answers
/// "what is *nearest*", not "what is most prominent nearby" — and wide
/// enough that establishments remain after the Maps card takes the most
/// prominent ones.
pub const LOCAL_PACK_RADIUS_KM: f64 = 30.0;
/// Max ads interleaved into one page.
pub const ADS_MAX: usize = 2;
/// The fixed organic slots ads are interleaved at (in auction order).
pub const AD_SLOTS: [u32; 2] = [2, 6];
/// Per-request probability the ad auction delivers nothing (budget
/// pacing — the ads analogue of Maps suppression).
pub const ADS_FLICKER: f64 = 0.2;
/// Bid a winning ad must clear.
pub const AD_BID_THRESHOLD: f64 = 0.35;
/// Bid multiplier for queries without local (commercial) intent.
pub const AD_NONLOCAL_MULTIPLIER: f64 = 0.55;

/// A selected rich-component card plus its consumed URLs.
#[derive(Debug, Clone)]
pub struct ComponentSelection {
    /// The card.
    pub card: Card,
    /// The urls.
    pub urls: Vec<String>,
}

/// Select the local pack: the establishments matching the query, ranked by
/// pure distance from the user (nearest first) — deliberately distinct
/// from the Maps card, which ranks by prominence × distance decay.
/// Establishments already shown in the Maps card (`exclude`) are skipped,
/// so the two components never duplicate a link.
pub fn select_local_pack(
    corpus: &WebCorpus,
    index: &PlaceIndex,
    query: &str,
    user: Coord,
    exclude: &[&str],
) -> Option<ComponentSelection> {
    let mut matches = index.retrieve_near(query, user, LOCAL_PACK_RADIUS_KM);
    matches.retain(|(i, _)| !exclude.contains(&corpus.places[*i].url.as_str()));
    if matches.is_empty() {
        return None;
    }
    matches.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let mut card = Card::new(CardType::LocalPack);
    let mut urls = Vec::new();
    for (i, _) in matches.into_iter().take(LOCAL_PACK_SIZE) {
        let place = &corpus.places[i];
        card.push(place.url.clone(), place.name.clone());
        urls.push(place.url.clone());
    }
    Some(ComponentSelection { card, urls })
}

/// Select the answer box for a navigational query: the navigational
/// target, pinned above the organics (rank 0 in the extracted list).
pub fn select_answer_box(corpus: &WebCorpus, nav: geoserp_corpus::PageId) -> ComponentSelection {
    let page = corpus.page(nav);
    ComponentSelection {
        card: Card::single(CardType::AnswerBox, &page.url, &page.title),
        urls: vec![page.url.clone()],
    }
}

/// Select the knowledge panel for an entity query: when the query names a
/// politician from the roster, the best candidate page (highest authority,
/// then lowest id) becomes the panel's entity link, rendered in the page
/// footer. Entity panels are query-driven, not location-driven — the
/// stable end of the per-component attribution spectrum.
pub fn select_knowledge_panel(
    corpus: &WebCorpus,
    query: &str,
    candidates: &[(geoserp_corpus::PageId, f64)],
) -> Option<ComponentSelection> {
    let politician = corpus.roster.by_name(query)?;
    let best = candidates
        .iter()
        .map(|&(id, _)| corpus.page(id))
        .max_by(|a, b| a.authority.total_cmp(&b.authority).then(b.id.cmp(&a.id)))?;
    let mut card = Card::new(CardType::KnowledgePanel);
    card.push(best.url.clone(), politician.name.clone());
    Some(ComponentSelection {
        urls: vec![best.url.clone()],
        card,
    })
}

/// Run the ad auction: establishments matching the query bid
/// `prominence × page authority × category multiplier` (full price under
/// local/commercial intent, discounted otherwise — the query-category half
/// of the auction). Winners clearing [`AD_BID_THRESHOLD`] take the fixed
/// [`AD_SLOTS`] in bid order, one single-link ads card per slot. The
/// auction itself is location-blind; geography only leaks in through
/// `exclude` (links already consumed by Maps or the local pack never run).
pub fn select_ads(
    corpus: &WebCorpus,
    index: &PlaceIndex,
    query: &str,
    local_intent: bool,
    exclude: &[&str],
) -> Vec<ComponentSelection> {
    let category_multiplier = if local_intent {
        1.0
    } else {
        AD_NONLOCAL_MULTIPLIER
    };
    let mut bids: Vec<(f64, &Place)> = index
        .retrieve(query)
        .into_iter()
        .map(|i| &corpus.places[i])
        .filter(|p| !exclude.contains(&p.url.as_str()))
        .map(|p| {
            let authority = corpus.page(p.page_id).authority;
            (
                p.prominence * (0.25 + 0.75 * authority) * category_multiplier,
                p,
            )
        })
        .collect();
    bids.retain(|(bid, _)| *bid >= AD_BID_THRESHOLD);
    bids.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.id.cmp(&b.1.id)));
    bids.iter()
        .take(ADS_MAX)
        .zip(AD_SLOTS)
        .map(|((_, place), slot)| {
            let mut card = Card::ad(slot);
            card.push(place.url.clone(), place.name.clone());
            ComponentSelection {
                card,
                urls: vec![place.url.clone()],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoserp_geo::{Seed, UsGeography};

    fn world() -> (UsGeography, WebCorpus, PlaceIndex) {
        let geo = UsGeography::generate(Seed::new(2015));
        let corpus = WebCorpus::generate(&geo, Seed::new(2015));
        let index = PlaceIndex::build(&corpus);
        (geo, corpus, index)
    }

    #[test]
    fn place_index_covers_all_places() {
        let (_, corpus, index) = world();
        assert_eq!(index.len(), corpus.places.len());
        assert!(!index.is_empty());
        assert!(index.retrieve("zzznothing").is_empty());
        assert!(index.retrieve("").is_empty());
    }

    /// The previous implementation — clone the shortest posting list,
    /// then retain through a `HashSet` of every other list.
    fn retrieve_reference(index: &PlaceIndex, query: &str) -> Vec<usize> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&Vec<usize>> = Vec::with_capacity(tokens.len());
        for t in &tokens {
            match index.postings.get(t) {
                Some(l) => lists.push(l),
                None => return Vec::new(),
            }
        }
        lists.sort_by_key(|l| l.len());
        let mut acc: Vec<usize> = lists[0].clone();
        for l in &lists[1..] {
            let set: std::collections::HashSet<usize> = l.iter().copied().collect();
            acc.retain(|i| set.contains(i));
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    #[test]
    fn galloping_intersection_matches_old_clone_and_retain() {
        let (_, corpus, index) = world();
        // Every establishment name plus multi-token and degenerate probes:
        // identical output, including order.
        let mut queries: Vec<String> = corpus
            .places
            .iter()
            .take(200)
            .map(|p| p.name.clone())
            .collect();
        for q in [
            "Coffee",
            "Elementary School",
            "Hospital",
            "school school",
            "Coffee zzznothing",
            "",
        ] {
            queries.push(q.to_string());
        }
        for q in &queries {
            assert_eq!(
                index.retrieve(q),
                retrieve_reference(&index, q),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn maps_card_appears_in_the_metro_for_generic_terms() {
        let (_, corpus, index) = world();
        let cfg = EngineConfig::paper_defaults();
        let metro = geoserp_geo::us::CUYAHOGA_CENTROID;
        for q in ["Hospital", "Coffee", "Bank", "Elementary School"] {
            let sel = select_maps(&corpus, &index, &cfg, q, metro, 1.0)
                .unwrap_or_else(|| panic!("{q} should trigger Maps in the metro"));
            assert!(
                (1..=cfg.maps_max_links).contains(&sel.card.entries.len()),
                "{q}: {} links",
                sel.card.entries.len()
            );
            assert_eq!(sel.urls.len(), sel.card.entries.len());
        }
    }

    #[test]
    fn maps_entries_are_nearby() {
        let (_, corpus, index) = world();
        let cfg = EngineConfig::paper_defaults();
        let metro = geoserp_geo::us::CUYAHOGA_CENTROID;
        let sel = select_maps(&corpus, &index, &cfg, "Hospital", metro, 1.0).unwrap();
        for url in &sel.urls {
            let place = corpus.places.iter().find(|p| &p.url == url).unwrap();
            assert!(
                place.coord.haversine_km(metro) < 60.0,
                "{} is {} km away",
                place.name,
                place.coord.haversine_km(metro)
            );
        }
    }

    #[test]
    fn maps_ordering_changes_with_vantage() {
        let (geo, corpus, index) = world();
        let cfg = EngineConfig::paper_defaults();
        let a = geo.cuyahoga_districts[0].coord;
        let far = geo.state("AZ").unwrap().coord;
        let sel_a = select_maps(&corpus, &index, &cfg, "Restaurant", a, 1.0).unwrap();
        let sel_far = select_maps(&corpus, &index, &cfg, "Restaurant", far, 1.0);
        match sel_far {
            None => {} // sparse area — acceptable
            Some(sel_far) => assert_ne!(sel_a.urls, sel_far.urls, "different places far away"),
        }
    }

    #[test]
    fn flicker_multiplier_can_suppress_the_card() {
        let (_, corpus, index) = world();
        let cfg = EngineConfig::paper_defaults();
        let metro = geoserp_geo::us::CUYAHOGA_CENTROID;
        let with = select_maps(&corpus, &index, &cfg, "Sushi", metro, 1.0);
        let without = select_maps(&corpus, &index, &cfg, "Sushi", metro, 1e6);
        assert!(with.is_some());
        assert!(without.is_none(), "an absurd threshold suppresses the card");
    }

    #[test]
    fn news_card_for_controversial_query() {
        let (_, corpus, _) = world();
        let cfg = EngineConfig::paper_defaults();
        // Collect that topic's news pages as candidates.
        let cands: Vec<(geoserp_corpus::PageId, f64)> = corpus
            .pages
            .iter()
            .filter(|p| p.tokens.starts_with(&tokenize("Gay Marriage")))
            .map(|p| (p.id, 1.0))
            .collect();
        let sel = select_news(&corpus, &cands, &cfg, 29, Some("OH"), 1.0).unwrap();
        assert!((cfg.news_min_articles..=cfg.news_max_links).contains(&sel.card.entries.len()));
    }

    #[test]
    fn unpublished_articles_do_not_exist_yet() {
        let (_, corpus, _) = world();
        let cfg = EngineConfig::paper_defaults();
        let cands: Vec<(geoserp_corpus::PageId, f64)> = corpus
            .pages
            .iter()
            .filter(|p| p.kind == PageKind::News)
            .map(|p| (p.id, 1.0))
            .collect();
        // On day 0, only day-0 articles qualify.
        if let Some(sel) = select_news(&corpus, &cands, &cfg, 0, None, 1.0) {
            for url in &sel.urls {
                let page = corpus.pages.iter().find(|p| &p.url == url).unwrap();
                assert_eq!(page.published_day, Some(0));
            }
        }
    }

    #[test]
    fn news_needs_minimum_pool() {
        let (_, corpus, _) = world();
        let cfg = EngineConfig::paper_defaults();
        assert!(select_news(&corpus, &[], &cfg, 10, None, 1.0).is_none());
    }

    #[test]
    fn regional_articles_rank_higher_at_home() {
        let (_, corpus, _) = world();
        let cfg = EngineConfig {
            news_max_links: 3,
            ..EngineConfig::paper_defaults()
        };
        // Find a topic with at least one OH state-scoped article.
        let oh_article = corpus.pages.iter().find(|p| {
            p.kind == PageKind::News
                && matches!(&p.geo, geoserp_corpus::GeoScope::State(s) if s == "OH")
        });
        if let Some(article) = oh_article {
            let topic_tokens: Vec<String> = article.tokens.clone();
            let cands: Vec<(geoserp_corpus::PageId, f64)> = corpus
                .pages
                .iter()
                .filter(|p| p.kind == PageKind::News && p.tokens.first() == topic_tokens.first())
                .map(|p| (p.id, 1.0))
                .collect();
            let home = select_news(&corpus, &cands, &cfg, 29, Some("OH"), 1.0);
            let away = select_news(&corpus, &cands, &cfg, 29, Some("AZ"), 1.0);
            if let (Some(home), Some(away)) = (home, away) {
                // The OH article is weighted up at home and down away; the
                // two cards need not both contain it, but they must not be
                // forced identical by construction.
                let _ = (home, away);
            }
        }
    }
}
