//! Compressed posting lists: the storage layer of the compressed inverted
//! index.
//!
//! A [`PostingList`] holds one term's page ids as delta-encoded LEB128
//! varints in blocks of [`BLOCK`] postings. Each block carries skip
//! metadata ([`BlockMeta`]): its last id (the skip pointer), its byte
//! offset, and its maximum term weight — the WAND/MaxScore upper bound.
//! In this engine every full-token match contributes the same unit weight,
//! so the per-block max is uniformly `1.0` and the classic sum-of-max-
//! weights pruning bound specializes to a matched-token *count* bound; the
//! metadata is kept (and property-tested) in its general form so a weighted
//! scoring model slots in without a format change.
//!
//! The module also hosts the shared sorted-intersection kernel
//! ([`intersect_sorted`]) used by the exactness-critical AND phases: the
//! Maps vertical's `PlaceIndex` intersects plain slices through it, and the
//! compressed index's [`PostingCursor`] intersection is the same leapfrog
//! galloping scheme lifted onto skip-pointer cursors.
//!
//! Serialized lists ([`PostingList::to_bytes`]) decode via
//! [`PostingList::from_bytes`], which validates *everything* — magic,
//! lengths, offsets, monotonicity — and returns a typed [`CodecError`]
//! instead of panicking on truncated or corrupted input. In-memory cursors
//! only ever run over lists that passed that validation (or were built by
//! [`PostingList::build`]), which is what keeps the hot path check-free.

use std::fmt;

/// Postings per block. 128 keeps blocks within two cache lines of skip
/// metadata per 4 KiB of raw ids while making a block decode trivially
/// cheap.
pub const BLOCK: usize = 128;

/// Serialized-posting-list magic: "GSPL" (geoserp posting list).
const MAGIC: [u8; 4] = *b"GSPL";
/// Serialization format version.
const VERSION: u8 = 1;

/// Why a serialized posting list was rejected by
/// [`PostingList::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer ended before the structure it promised.
    Truncated {
        /// What was being decoded when the bytes ran out.
        context: &'static str,
    },
    /// The magic or version header is not a posting list this build reads.
    BadHeader {
        /// What was wrong with the header.
        detail: &'static str,
    },
    /// A varint ran past its maximum width (corrupt continuation bits).
    VarintOverflow {
        /// Byte offset of the offending varint within the postings bytes.
        offset: usize,
    },
    /// Decoded ids were not strictly increasing (corrupt delta).
    NonMonotonic {
        /// Index of the first out-of-order posting.
        index: usize,
    },
    /// A block's metadata disagrees with its decoded contents.
    BlockMismatch {
        /// Index of the inconsistent block.
        block: usize,
        /// What disagreed.
        detail: &'static str,
    },
    /// Declared counts/offsets are internally inconsistent.
    Inconsistent {
        /// What disagreed.
        detail: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { context } => {
                write!(f, "posting bytes truncated while reading {context}")
            }
            CodecError::BadHeader { detail } => write!(f, "bad posting-list header: {detail}"),
            CodecError::VarintOverflow { offset } => {
                write!(f, "varint overflow at byte {offset}")
            }
            CodecError::NonMonotonic { index } => {
                write!(f, "posting {index} is not strictly increasing")
            }
            CodecError::BlockMismatch { block, detail } => {
                write!(f, "block {block} metadata mismatch: {detail}")
            }
            CodecError::Inconsistent { detail } => {
                write!(f, "inconsistent posting-list structure: {detail}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Append `v` as an LEB128 varint (≤ 5 bytes for a u32).
pub fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode an LEB128 varint at `pos`, returning `(value, next_pos)`.
pub fn read_varint(bytes: &[u8], pos: usize) -> Result<(u32, usize), CodecError> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    let mut at = pos;
    loop {
        let Some(&byte) = bytes.get(at) else {
            return Err(CodecError::Truncated { context: "varint" });
        };
        let payload = u32::from(byte & 0x7f);
        if shift >= 32 || (shift == 28 && payload > 0x0f) {
            return Err(CodecError::VarintOverflow { offset: pos });
        }
        value |= payload << shift;
        at += 1;
        if byte & 0x80 == 0 {
            return Ok((value, at));
        }
        shift += 7;
    }
}

/// Per-block skip metadata: last id (the skip pointer), byte offset into
/// the list's delta bytes, posting count, and the block's maximum term
/// weight (the WAND upper-bound ingredient).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockMeta {
    /// Last (largest) id in the block — the skip pointer.
    pub last_id: u32,
    /// Byte offset of the block's first varint.
    pub offset: u32,
    /// Postings in the block (1..=[`BLOCK`]).
    pub count: u16,
    /// Maximum term weight over the block's postings.
    pub max_weight: f32,
}

/// One term's compressed postings: delta/varint blocks plus a skip table.
#[derive(Debug, Clone, PartialEq)]
pub struct PostingList {
    bytes: Vec<u8>,
    blocks: Vec<BlockMeta>,
    len: usize,
    max_weight: f32,
}

impl PostingList {
    /// Build from strictly increasing ids with uniform unit weights.
    pub fn build(ids: &[u32]) -> PostingList {
        Self::build_weighted(ids, &[])
    }

    /// Build from strictly increasing ids; `weights[i]` is the term weight
    /// of posting `i` (empty ⇒ uniform `1.0`). Per-block max weights are
    /// recorded as the pruning upper bound.
    pub fn build_weighted(ids: &[u32], weights: &[f32]) -> PostingList {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly increasing"
        );
        debug_assert!(weights.is_empty() || weights.len() == ids.len());
        let mut bytes = Vec::with_capacity(ids.len());
        let mut blocks = Vec::with_capacity(ids.len().div_ceil(BLOCK));
        let mut max_weight = 0.0f32;
        for (b, chunk) in ids.chunks(BLOCK).enumerate() {
            let offset = bytes.len() as u32;
            // First id of a block is absolute so a skip lands on a
            // self-contained decode; the rest are gap-coded.
            write_varint(&mut bytes, chunk[0]);
            for w in chunk.windows(2) {
                write_varint(&mut bytes, w[1] - w[0]);
            }
            let lo = b * BLOCK;
            let block_max = if weights.is_empty() {
                1.0
            } else {
                weights[lo..lo + chunk.len()]
                    .iter()
                    .copied()
                    .fold(f32::MIN, f32::max)
            };
            max_weight = max_weight.max(block_max);
            blocks.push(BlockMeta {
                last_id: *chunk.last().expect("chunks are non-empty"),
                offset,
                count: chunk.len() as u16,
                max_weight: block_max,
            });
        }
        PostingList {
            bytes,
            blocks,
            len: ids.len(),
            max_weight: if ids.is_empty() { 0.0 } else { max_weight },
        }
    }

    /// Total postings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the list holds no postings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum term weight across the whole list (the list-level WAND
    /// upper bound).
    pub fn max_weight(&self) -> f32 {
        self.max_weight
    }

    /// The skip table.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// Bytes of compressed posting data plus skip metadata — the resident
    /// cost the bench reports.
    pub fn heap_bytes(&self) -> usize {
        self.bytes.len() + self.blocks.len() * std::mem::size_of::<BlockMeta>()
    }

    /// A cursor positioned on the first posting.
    pub fn cursor(&self) -> PostingCursor<'_> {
        let mut c = PostingCursor {
            list: self,
            block: 0,
            buf: [0; BLOCK],
            buf_len: 0,
            pos: 0,
        };
        c.load_block(0);
        c
    }

    /// Decode every posting (test/bench surface, not the query path).
    pub fn decode_all(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        let mut c = self.cursor();
        while let Some(id) = c.current() {
            out.push(id);
            c.next();
        }
        out
    }

    /// Serialize: header, skip table, then the delta bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.blocks.len() * 14 + self.bytes.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&(self.len as u32).to_le_bytes());
        out.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        for b in &self.blocks {
            out.extend_from_slice(&b.last_id.to_le_bytes());
            out.extend_from_slice(&b.offset.to_le_bytes());
            out.extend_from_slice(&b.count.to_le_bytes());
            out.extend_from_slice(&b.max_weight.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(self.bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.bytes);
        out
    }

    /// Deserialize and fully validate. Truncated or corrupted input comes
    /// back as a typed [`CodecError`]; a returned list is safe for the
    /// check-free cursor path.
    pub fn from_bytes(data: &[u8]) -> Result<PostingList, CodecError> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize, context: &'static str| -> Result<usize, CodecError> {
            let start = *at;
            *at = at
                .checked_add(n)
                .filter(|&end| end <= data.len())
                .ok_or(CodecError::Truncated { context })?;
            Ok(start)
        };
        let s = take(&mut at, 4, "magic")?;
        if data[s..s + 4] != MAGIC {
            return Err(CodecError::BadHeader { detail: "magic" });
        }
        let s = take(&mut at, 1, "version")?;
        if data[s] != VERSION {
            return Err(CodecError::BadHeader { detail: "version" });
        }
        let s = take(&mut at, 4, "length")?;
        let len = u32::from_le_bytes(data[s..s + 4].try_into().expect("4 bytes")) as usize;
        let s = take(&mut at, 4, "block count")?;
        let n_blocks = u32::from_le_bytes(data[s..s + 4].try_into().expect("4 bytes")) as usize;
        if n_blocks != len.div_ceil(BLOCK) {
            return Err(CodecError::Inconsistent {
                detail: "block count does not match length",
            });
        }
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let s = take(&mut at, 14, "block metadata")?;
            blocks.push(BlockMeta {
                last_id: u32::from_le_bytes(data[s..s + 4].try_into().expect("4 bytes")),
                offset: u32::from_le_bytes(data[s + 4..s + 8].try_into().expect("4 bytes")),
                count: u16::from_le_bytes(data[s + 8..s + 10].try_into().expect("2 bytes")),
                max_weight: f32::from_bits(u32::from_le_bytes(
                    data[s + 10..s + 14].try_into().expect("4 bytes"),
                )),
            });
        }
        let s = take(&mut at, 4, "postings size")?;
        let n_bytes = u32::from_le_bytes(data[s..s + 4].try_into().expect("4 bytes")) as usize;
        let s = take(&mut at, n_bytes, "postings bytes")?;
        if at != data.len() {
            return Err(CodecError::Inconsistent {
                detail: "trailing bytes after postings",
            });
        }
        let bytes = data[s..s + n_bytes].to_vec();

        // Re-decode everything against the metadata: after this, cursors
        // may trust blocks unconditionally.
        let mut total = 0usize;
        let mut prev_last: Option<u32> = None;
        let mut expect_offset = 0usize;
        let mut max_weight = 0.0f32;
        for (bi, meta) in blocks.iter().enumerate() {
            if meta.offset as usize != expect_offset {
                return Err(CodecError::BlockMismatch {
                    block: bi,
                    detail: "offset",
                });
            }
            let want = if bi + 1 == blocks.len() {
                len - bi * BLOCK
            } else {
                BLOCK
            };
            if meta.count as usize != want || want == 0 {
                return Err(CodecError::BlockMismatch {
                    block: bi,
                    detail: "count",
                });
            }
            let mut pos = meta.offset as usize;
            let mut prev: Option<u32> = None;
            for k in 0..meta.count as usize {
                let (v, next) = read_varint(&bytes, pos)?;
                pos = next;
                let id = match prev {
                    None => v,
                    Some(p) => p
                        .checked_add(v)
                        .ok_or(CodecError::NonMonotonic { index: total + k })?,
                };
                let increasing = match (k, prev_last, prev) {
                    (0, None, _) => true,
                    (0, Some(pl), _) => id > pl,
                    (_, _, Some(p)) => id > p,
                    _ => unreachable!("k > 0 implies a previous id"),
                };
                if !increasing {
                    return Err(CodecError::NonMonotonic { index: total + k });
                }
                prev = Some(id);
            }
            if prev != Some(meta.last_id) {
                return Err(CodecError::BlockMismatch {
                    block: bi,
                    detail: "last id",
                });
            }
            prev_last = prev;
            expect_offset = pos;
            total += meta.count as usize;
            max_weight = max_weight.max(meta.max_weight);
        }
        if total != len || expect_offset != bytes.len() {
            return Err(CodecError::Inconsistent {
                detail: "decoded size does not match header",
            });
        }
        Ok(PostingList {
            bytes,
            blocks,
            len,
            max_weight: if len == 0 { 0.0 } else { max_weight },
        })
    }
}

/// A forward-only cursor over a [`PostingList`] with skip-pointer seeks.
#[derive(Debug, Clone)]
pub struct PostingCursor<'a> {
    list: &'a PostingList,
    block: usize,
    buf: [u32; BLOCK],
    buf_len: usize,
    pos: usize,
}

impl<'a> PostingCursor<'a> {
    fn load_block(&mut self, block: usize) {
        self.block = block;
        self.pos = 0;
        let Some(meta) = self.list.blocks.get(block) else {
            self.buf_len = 0;
            return;
        };
        let mut at = meta.offset as usize;
        let mut prev = 0u32;
        for k in 0..meta.count as usize {
            // Lists are validated at build/deserialize time, so decoding
            // here cannot fail.
            let (v, next) = read_varint(&self.list.bytes, at).expect("validated posting bytes");
            at = next;
            prev = if k == 0 { v } else { prev + v };
            self.buf[k] = prev;
        }
        self.buf_len = meta.count as usize;
    }

    /// Total postings in the underlying list.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// True when the underlying list is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// List-level maximum term weight (the WAND upper bound).
    pub fn max_weight(&self) -> f32 {
        self.list.max_weight()
    }

    /// The posting under the cursor, or `None` once exhausted.
    pub fn current(&self) -> Option<u32> {
        (self.pos < self.buf_len).then(|| self.buf[self.pos])
    }

    /// Advance one posting.
    pub fn next(&mut self) {
        self.pos += 1;
        if self.pos >= self.buf_len && self.block < self.list.blocks.len() {
            let next = self.block + 1;
            self.load_block(next);
        }
    }

    /// Advance to the first posting `>= target` (no-op if already there).
    /// Skips whole blocks through the skip table, then binary-searches the
    /// decoded block.
    pub fn seek(&mut self, target: u32) {
        if let Some(cur) = self.current() {
            if cur >= target {
                return;
            }
        } else {
            return;
        }
        // Current block cannot satisfy the target? Skip forward through
        // block last-ids (they are increasing).
        if self.list.blocks[self.block].last_id < target {
            let rest = &self.list.blocks[self.block + 1..];
            let skip = rest.partition_point(|b| b.last_id < target);
            let dest = self.block + 1 + skip;
            if dest >= self.list.blocks.len() {
                self.block = self.list.blocks.len();
                self.buf_len = 0;
                self.pos = 0;
                return;
            }
            self.load_block(dest);
        }
        let within = &self.buf[self.pos..self.buf_len];
        self.pos += within.partition_point(|&id| id < target);
    }
}

/// Intersect ascending, duplicate-free sorted lists: the shared kernel the
/// Maps-vertical `PlaceIndex` and the compressed index's AND phase both
/// rely on. The shortest list drives; the others are galloped, so the cost
/// is `O(|shortest| · Σ log |other|)` instead of the old
/// clone-plus-hash-set `O(Σ |list|)`.
///
/// Returns the intersection in ascending order. An empty `lists` slice
/// intersects to the empty set.
pub fn intersect_sorted<T: Copy + Ord>(lists: &[&[T]]) -> Vec<T> {
    if lists.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<&[T]> = lists.to_vec();
    order.sort_by_key(|l| l.len());
    let (driver, rest) = order.split_first().expect("non-empty by guard");
    let mut out = Vec::new();
    let mut cursors = vec![0usize; rest.len()];
    'driver: for &x in driver.iter() {
        for (c, l) in cursors.iter_mut().zip(rest.iter()) {
            *c += gallop(&l[*c..], x);
            if *c >= l.len() {
                break 'driver; // this list is exhausted: no further matches
            }
            if l[*c] != x {
                continue 'driver;
            }
        }
        out.push(x);
    }
    out
}

/// Index of the first element `>= target` in an ascending slice, found by
/// doubling probes then a binary search of the bracketed range — sublinear
/// when the target is near, logarithmic when it is far.
fn gallop<T: Copy + Ord>(slice: &[T], target: T) -> usize {
    let mut hi = 1usize;
    while hi < slice.len() && slice[hi - 1] < target {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(slice.len());
    lo + slice[lo..hi].partition_point(|&x| x < target)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(ids: &[u32]) -> PostingList {
        PostingList::build(ids)
    }

    #[test]
    fn round_trip_small_and_multi_block() {
        for n in [0usize, 1, 2, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK + 17] {
            let ids: Vec<u32> = (0..n as u32).map(|i| i * 3 + 7).collect();
            let pl = list(&ids);
            assert_eq!(pl.len(), n);
            assert_eq!(pl.decode_all(), ids, "n = {n}");
            let back = PostingList::from_bytes(&pl.to_bytes()).unwrap();
            assert_eq!(back, pl, "n = {n}");
        }
    }

    #[test]
    fn cursor_seek_lands_on_first_ge() {
        let ids: Vec<u32> = (0..1000).map(|i| i * 5).collect();
        let pl = list(&ids);
        for target in [0u32, 1, 4, 5, 6, 630, 631, 2495, 4995, 4996, 10_000] {
            let mut c = pl.cursor();
            c.seek(target);
            let expect = ids.iter().copied().find(|&id| id >= target);
            assert_eq!(c.current(), expect, "target {target}");
        }
    }

    #[test]
    fn seek_is_monotone_across_blocks() {
        let ids: Vec<u32> = (0..10 * BLOCK as u32).map(|i| i * 2).collect();
        let pl = list(&ids);
        let mut c = pl.cursor();
        let mut step = 1u32;
        let mut target = 0u32;
        while c.current().is_some() {
            c.seek(target);
            if let Some(got) = c.current() {
                assert!(got >= target);
                assert!(!ids.contains(&target) || got == target);
            }
            target = target.saturating_add(step);
            step = step.wrapping_mul(3).wrapping_add(1) % 257 + 1;
        }
    }

    #[test]
    fn truncated_bytes_are_typed_errors() {
        let pl = list(&(0..500u32).collect::<Vec<_>>());
        let bytes = pl.to_bytes();
        assert!(PostingList::from_bytes(&bytes).is_ok());
        for cut in [0, 3, 4, 5, 8, 12, 13, 20, bytes.len() - 1] {
            let err = PostingList::from_bytes(&bytes[..cut]).unwrap_err();
            let _ = err.to_string(); // all variants display
        }
    }

    #[test]
    fn corrupted_bytes_are_typed_errors() {
        let pl = list(&(0..500u32).map(|i| i * 2).collect::<Vec<_>>());
        let good = pl.to_bytes();
        // Flip every byte position once; decoding must never panic, and
        // (except for bits that cancel out, e.g. a weight) must error.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xff;
            match PostingList::from_bytes(&bad) {
                Ok(list) => assert_eq!(list.decode_all(), pl.decode_all()),
                Err(e) => {
                    let _ = e.to_string();
                }
            }
        }
        // Wrong magic and version are specific header errors.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(
            PostingList::from_bytes(&bad).unwrap_err(),
            CodecError::BadHeader { detail: "magic" }
        );
        let mut bad = good.clone();
        bad[4] = VERSION + 1;
        assert_eq!(
            PostingList::from_bytes(&bad).unwrap_err(),
            CodecError::BadHeader { detail: "version" }
        );
        // Trailing garbage is rejected.
        let mut bad = good.clone();
        bad.push(0);
        assert_eq!(
            PostingList::from_bytes(&bad).unwrap_err(),
            CodecError::Inconsistent {
                detail: "trailing bytes after postings"
            }
        );
    }

    #[test]
    fn block_max_weights_cover_members() {
        let ids: Vec<u32> = (0..400).collect();
        let weights: Vec<f32> = ids.iter().map(|&i| (i % 37) as f32 / 36.0).collect();
        let pl = PostingList::build_weighted(&ids, &weights);
        for (b, meta) in pl.blocks().iter().enumerate() {
            let lo = b * BLOCK;
            let hi = (lo + meta.count as usize).min(ids.len());
            for w in &weights[lo..hi] {
                assert!(*w <= meta.max_weight, "block {b}");
            }
        }
        assert!(pl.max_weight() >= 1.0 - 1.0 / 36.0);
    }

    #[test]
    fn intersect_matches_reference() {
        let a: Vec<u32> = (0..300).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..300).map(|i| i * 3).collect();
        let c: Vec<u32> = (0..600).collect();
        let got = intersect_sorted(&[&a, &b, &c]);
        let expect: Vec<u32> = (0..600).filter(|i| i % 6 == 0).collect();
        assert_eq!(got, expect);
        assert!(intersect_sorted::<u32>(&[]).is_empty());
        assert!(intersect_sorted(&[&a[..], &[]]).is_empty());
        assert_eq!(intersect_sorted(&[&a[..]]), a);
    }

    #[test]
    fn varint_round_trips_extremes() {
        for v in [0u32, 1, 127, 128, 16_383, 16_384, u32::MAX - 1, u32::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(read_varint(&buf, 0).unwrap(), (v, buf.len()));
        }
        // A 5-byte varint with excess high bits is an overflow, not a wrap.
        let bad = [0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(matches!(
            read_varint(&bad, 0),
            Err(CodecError::VarintOverflow { .. })
        ));
        assert!(matches!(
            read_varint(&[0x80], 0),
            Err(CodecError::Truncated { .. })
        ));
    }
}
