//! Inverted index over the synthetic web.
//!
//! Conjunctive (AND) retrieval with a disjunctive (OR) fallback: real search
//! engines fill thin result sets with partial matches, and the fallback is
//! what puts "other people named James" on a politician's SERP — the
//! ambiguity tail the paper observes for common names.

use geoserp_corpus::{tokenize, PageId, WebCorpus};
use std::collections::HashMap;

/// A retrieved candidate before ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The page.
    pub page: PageId,
    /// Lexical score in `(0, 1]`: 1.0 for full (AND) matches, lower for
    /// partial matches (scaled by matched-token fraction).
    pub lexical: f64,
}

/// Token → postings map over a corpus.
#[derive(Debug)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<PageId>>,
    /// Vocabulary sorted by (length, token) for the spell-correction scan.
    vocabulary: Vec<String>,
    page_count: usize,
}

impl InvertedIndex {
    /// Build the index (token set per page; multiplicity is ignored, titles
    /// already weight head terms by construction).
    pub fn build(corpus: &WebCorpus) -> Self {
        Self::build_range(corpus, 0..corpus.pages.len() as u32)
    }

    /// Build an index over only the pages whose id falls in `range` — one
    /// shard's slice of the corpus. Every page's tokens are indexed whole
    /// within its owning shard, so shard-local full/partial classification
    /// and matched-token counts agree exactly with the global index.
    pub fn build_range(corpus: &WebCorpus, range: std::ops::Range<u32>) -> Self {
        let mut postings: HashMap<String, Vec<PageId>> = HashMap::new();
        let mut page_count = 0usize;
        for page in &corpus.pages {
            if !range.contains(&page.id.0) {
                continue;
            }
            page_count += 1;
            let mut seen = std::collections::HashSet::new();
            for token in &page.tokens {
                if seen.insert(token.as_str()) {
                    postings.entry(token.clone()).or_default().push(page.id);
                }
            }
        }
        let mut vocabulary: Vec<String> = postings.keys().cloned().collect();
        vocabulary.sort_by(|a, b| a.len().cmp(&b.len()).then(a.cmp(b)));
        // Postings are naturally sorted by page id (pages are in id order).
        InvertedIndex {
            postings,
            vocabulary,
            page_count,
        }
    }

    /// Number of indexed pages.
    pub fn page_count(&self) -> usize {
        self.page_count
    }

    /// Document frequency of a token.
    pub fn df(&self, token: &str) -> usize {
        self.postings.get(token).map_or(0, Vec::len)
    }

    /// Retrieve candidates for a query.
    ///
    /// All pages containing *every* query token score `lexical = 1.0`; if
    /// fewer than `min_candidates` such pages exist, pages matching a strict
    /// subset of tokens are added with
    /// `lexical = partial_score × matched/total`, rarest-token-first so the
    /// fallback stays cheap.
    pub fn retrieve(
        &self,
        query: &str,
        min_candidates: usize,
        partial_score: f64,
    ) -> Vec<Candidate> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return Vec::new();
        }

        // AND set: intersect postings, starting from the rarest token.
        let mut lists: Vec<&Vec<PageId>> = Vec::with_capacity(tokens.len());
        for t in &tokens {
            match self.postings.get(t) {
                Some(l) => lists.push(l),
                None => {
                    lists.clear();
                    break;
                }
            }
        }
        let mut out: Vec<Candidate> = Vec::new();
        if !lists.is_empty() {
            lists.sort_by_key(|l| l.len());
            let mut acc: Vec<PageId> = lists[0].clone();
            for l in &lists[1..] {
                let set: std::collections::HashSet<PageId> = l.iter().copied().collect();
                acc.retain(|id| set.contains(id));
                if acc.is_empty() {
                    break;
                }
            }
            out.extend(acc.into_iter().map(|page| Candidate { page, lexical: 1.0 }));
        }

        if out.len() >= min_candidates || tokens.len() < 2 && !out.is_empty() {
            return out;
        }

        // OR fallback: count matched tokens per page.
        let mut matched: HashMap<PageId, usize> = HashMap::new();
        for t in &tokens {
            if let Some(l) = self.postings.get(t) {
                for &id in l {
                    *matched.entry(id).or_insert(0) += 1;
                }
            }
        }
        let full: std::collections::HashSet<PageId> = out.iter().map(|c| c.page).collect();
        let total = tokens.len() as f64;
        let mut partial: Vec<Candidate> = matched
            .into_iter()
            .filter(|(id, n)| *n < tokens.len() && !full.contains(id))
            .map(|(page, n)| Candidate {
                page,
                lexical: partial_score * n as f64 / total,
            })
            .collect();
        // Deterministic order: score desc, then id.
        partial.sort_by(|a, b| b.lexical.total_cmp(&a.lexical).then(a.page.cmp(&b.page)));
        let deficit = min_candidates.saturating_sub(out.len()) * 4; // headroom for ranking
        partial.truncate(deficit);
        out.extend(partial);
        out
    }

    /// Shard-local retrieval: the integer-only data a shard ships to the
    /// router. Returns the AND-set page ids (id-ascending, like
    /// [`InvertedIndex::retrieve`]'s full matches) and the top
    /// `max_partials` partial matches as `(page, matched tokens)` ordered
    /// by (count desc, id asc) — the same order `retrieve` sorts partials
    /// in, since the lexical score is monotone in the matched count.
    ///
    /// `max_partials` must be at least the global deficit ceiling
    /// (`min_candidates × 4`): the global top-deficit partials that live in
    /// this shard are then always inside the returned prefix.
    pub fn shard_retrieve(
        &self,
        query: &str,
        max_partials: usize,
    ) -> (Vec<PageId>, Vec<(PageId, usize)>) {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return (Vec::new(), Vec::new());
        }

        let mut lists: Vec<&Vec<PageId>> = Vec::with_capacity(tokens.len());
        for t in &tokens {
            match self.postings.get(t) {
                Some(l) => lists.push(l),
                None => {
                    lists.clear();
                    break;
                }
            }
        }
        let mut fulls: Vec<PageId> = Vec::new();
        if !lists.is_empty() {
            lists.sort_by_key(|l| l.len());
            let mut acc: Vec<PageId> = lists[0].clone();
            for l in &lists[1..] {
                let set: std::collections::HashSet<PageId> = l.iter().copied().collect();
                acc.retain(|id| set.contains(id));
                if acc.is_empty() {
                    break;
                }
            }
            fulls = acc;
        }
        fulls.sort();

        let mut matched: HashMap<PageId, usize> = HashMap::new();
        for t in &tokens {
            if let Some(l) = self.postings.get(t) {
                for &id in l {
                    *matched.entry(id).or_insert(0) += 1;
                }
            }
        }
        let full_set: std::collections::HashSet<PageId> = fulls.iter().copied().collect();
        let mut partials: Vec<(PageId, usize)> = matched
            .into_iter()
            .filter(|(id, n)| *n < tokens.len() && !full_set.contains(id))
            .collect();
        partials.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        partials.truncate(max_partials);
        (fulls, partials)
    }

    /// Shard-local spell-correction data: per query token its local df,
    /// and — for tokens unknown to this shard — every vocabulary word
    /// within edit distance 2 as `(word, distance, local df)`. The router
    /// sums dfs across shards (each page indexes in exactly one shard, so
    /// the sum is the global df) and applies the same best-candidate
    /// comparator [`InvertedIndex::suggest`] uses.
    #[allow(clippy::type_complexity)]
    pub fn spell_data(&self, query: &str) -> (Vec<u64>, Vec<Vec<(String, usize, u64)>>) {
        let tokens = tokenize(query);
        let mut dfs = Vec::with_capacity(tokens.len());
        let mut corrections = Vec::with_capacity(tokens.len());
        for token in &tokens {
            let df = self.df(token);
            dfs.push(df as u64);
            if df > 0 {
                corrections.push(Vec::new());
                continue;
            }
            let mut cands = Vec::new();
            for cand in &self.vocabulary {
                if cand.len() > token.len() + 2 {
                    break;
                }
                if cand.len() + 2 < token.len() {
                    continue;
                }
                if let Some(d) = char_distance_within(token, cand, 2) {
                    cands.push((cand.clone(), d, self.df(cand) as u64));
                }
            }
            corrections.push(cands);
        }
        (dfs, corrections)
    }
}

/// Character-level Levenshtein distance with an early-out bound (the spell
/// corrector only cares about distances ≤ 2).
fn char_distance_within(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > bound {
        return None;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for i in 1..=a.len() {
        curr[0] = i;
        let mut row_min = curr[0];
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            curr[j] = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + cost);
            row_min = row_min.min(curr[j]);
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    (prev[b.len()] <= bound).then_some(prev[b.len()])
}

impl InvertedIndex {
    /// "Did you mean": correct unknown query tokens to the most-frequent
    /// vocabulary token within character edit distance 2 (distance-1 hits
    /// are preferred). Returns the corrected query only if every unknown
    /// token found a correction and at least one token changed.
    pub fn suggest(&self, query: &str) -> Option<String> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return None;
        }
        let mut corrected = Vec::with_capacity(tokens.len());
        let mut changed = false;
        for token in &tokens {
            if self.df(token) > 0 {
                corrected.push(token.clone());
                continue;
            }
            // Best candidate: minimal distance, then maximal document
            // frequency, then lexicographic (deterministic).
            let mut best: Option<(usize, usize, &String)> = None;
            for cand in &self.vocabulary {
                // Vocabulary is sorted by length; stop once candidates are
                // too long to be within distance 2.
                if cand.len() > token.len() + 2 {
                    break;
                }
                if cand.len() + 2 < token.len() {
                    continue;
                }
                if let Some(d) = char_distance_within(token, cand, 2) {
                    let df = self.df(cand);
                    let better = match &best {
                        None => true,
                        Some((bd, bdf, bc)) => {
                            d < *bd || (d == *bd && (df > *bdf || (df == *bdf && cand < *bc)))
                        }
                    };
                    if better {
                        best = Some((d, df, cand));
                    }
                }
            }
            let (_, _, replacement) = best?;
            corrected.push(replacement.clone());
            changed = true;
        }
        changed.then(|| corrected.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoserp_geo::{Seed, UsGeography};

    fn corpus() -> WebCorpus {
        let geo = UsGeography::generate(Seed::new(2015));
        WebCorpus::generate(&geo, Seed::new(2015))
    }

    #[test]
    fn index_covers_all_pages() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        assert_eq!(idx.page_count(), c.pages.len());
        assert!(idx.df("school") > 100, "df(school) = {}", idx.df("school"));
        assert_eq!(idx.df("zzzznonexistent"), 0);
    }

    #[test]
    fn and_retrieval_requires_all_tokens() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let full: Vec<Candidate> = idx
            .retrieve("Elementary School", 0, 0.3)
            .into_iter()
            .filter(|cand| cand.lexical == 1.0)
            .collect();
        assert!(!full.is_empty());
        for cand in full {
            let page = c.page(cand.page);
            assert!(
                page.tokens.iter().any(|t| t == "elementary"),
                "{}",
                page.title
            );
            assert!(page.tokens.iter().any(|t| t == "school"), "{}", page.title);
        }
    }

    #[test]
    fn fallback_fills_thin_queries() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        // A politician's full name has few AND matches; fallback must extend
        // the pool.
        let name = &c.roster.all()[0].name;
        let cands = idx.retrieve(name, 30, 0.35);
        assert!(
            cands.len() >= 12,
            "only {} candidates for {name}",
            cands.len()
        );
        assert!(cands.iter().any(|x| x.lexical == 1.0), "own pages present");
        assert!(cands.iter().any(|x| x.lexical < 1.0), "partials present");
        // Partials score strictly below fulls.
        for x in &cands {
            if x.lexical < 1.0 {
                assert!(x.lexical <= 0.35 / 2.0 + 0.35, "{}", x.lexical);
            }
        }
    }

    #[test]
    fn empty_and_unknown_queries() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        assert!(idx.retrieve("", 10, 0.3).is_empty());
        assert!(idx.retrieve("!!!", 10, 0.3).is_empty());
        assert!(idx.retrieve("qqqxyzzy", 10, 0.3).is_empty());
    }

    #[test]
    fn retrieval_is_deterministic() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let a = idx.retrieve("Coffee", 30, 0.35);
        let b = idx.retrieve("Coffee", 30, 0.35);
        assert_eq!(a, b);
    }

    #[test]
    fn suggest_corrects_typos() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        assert_eq!(idx.suggest("starbuks").as_deref(), Some("starbucks"));
        assert_eq!(
            idx.suggest("hospitel near me")
                .as_deref()
                .map(|s| s.starts_with("hospital")),
            Some(true)
        );
        // Known queries need no correction.
        assert_eq!(idx.suggest("school"), None);
        assert_eq!(idx.suggest(""), None);
        // Hopeless garbage gets no suggestion.
        assert_eq!(idx.suggest("qqqqqqqqqqqqqq"), None);
    }

    #[test]
    fn suggest_is_deterministic() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        assert_eq!(idx.suggest("coffe"), idx.suggest("coffe"));
    }

    #[test]
    fn char_distance_bound_behaviour() {
        assert_eq!(char_distance_within("kitten", "sitten", 2), Some(1));
        assert_eq!(char_distance_within("kitten", "sitting", 3), Some(3));
        assert_eq!(char_distance_within("kitten", "sitting", 2), None);
        assert_eq!(char_distance_within("abc", "abc", 0), Some(0));
        assert_eq!(
            char_distance_within("a", "abcd", 2),
            None,
            "length gap exceeds bound"
        );
    }

    #[test]
    fn brand_query_finds_brand_home() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let cands = idx.retrieve("Starbucks", 30, 0.35);
        let has_home = cands.iter().any(|cand| {
            let p = c.page(cand.page);
            p.url == "https://www.starbucks.example.com/"
        });
        assert!(has_home);
    }
}
