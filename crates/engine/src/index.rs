//! Inverted index over the synthetic web.
//!
//! Conjunctive (AND) retrieval with a disjunctive (OR) fallback: real search
//! engines fill thin result sets with partial matches, and the fallback is
//! what puts "other people named James" on a politician's SERP — the
//! ambiguity tail the paper observes for common names.
//!
//! Two interchangeable backends implement the same retrieval contract:
//!
//! * [`InvertedIndex`] — the exact reference: a `HashMap` of uncompressed
//!   posting vectors, evaluated exhaustively. Simple, obviously correct,
//!   linear in corpus size per query.
//! * [`CompressedIndex`] — a sorted term dictionary over delta/varint
//!   posting blocks ([`crate::postings`]) with skip pointers and max-score
//!   metadata, evaluated document-at-a-time with MaxScore-style top-k
//!   early termination.
//!
//! The two are **byte-identical** by contract, not merely "equivalent":
//! every candidate list, partial score, tie-break, and spell suggestion the
//! compressed backend produces reproduces the exact backend bit for bit.
//! `tests/index_equivalence.rs` pins full served SERPs across corpus
//! scales and topologies to a golden digest, and the in-crate differential
//! tests below cover the retrieval layer directly. [`SearchIndex`]
//! dispatches between them on [`IndexBackend`].

use crate::config::IndexBackend;
use crate::postings::{PostingCursor, PostingList};
use geoserp_corpus::{tokenize, PageId, WebCorpus};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// A retrieved candidate before ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The page.
    pub page: PageId,
    /// Lexical score in `(0, 1]`: 1.0 for full (AND) matches, lower for
    /// partial matches (scaled by matched-token fraction).
    pub lexical: f64,
}

/// Token → postings map over a corpus.
#[derive(Debug)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<PageId>>,
    /// Vocabulary sorted by (length, token) for the spell-correction scan.
    vocabulary: Vec<String>,
    page_count: usize,
}

impl InvertedIndex {
    /// Build the index (token set per page; multiplicity is ignored, titles
    /// already weight head terms by construction).
    pub fn build(corpus: &WebCorpus) -> Self {
        Self::build_range(corpus, 0..corpus.pages.len() as u32)
    }

    /// Build an index over only the pages whose id falls in `range` — one
    /// shard's slice of the corpus. Every page's tokens are indexed whole
    /// within its owning shard, so shard-local full/partial classification
    /// and matched-token counts agree exactly with the global index.
    pub fn build_range(corpus: &WebCorpus, range: std::ops::Range<u32>) -> Self {
        let mut postings: HashMap<String, Vec<PageId>> = HashMap::new();
        let mut page_count = 0usize;
        for page in &corpus.pages {
            if !range.contains(&page.id.0) {
                continue;
            }
            page_count += 1;
            let mut seen = std::collections::HashSet::new();
            for token in &page.tokens {
                if seen.insert(token.as_str()) {
                    postings.entry(token.clone()).or_default().push(page.id);
                }
            }
        }
        let mut vocabulary: Vec<String> = postings.keys().cloned().collect();
        vocabulary.sort_by(|a, b| a.len().cmp(&b.len()).then(a.cmp(b)));
        // Postings are naturally sorted by page id (pages are in id order).
        InvertedIndex {
            postings,
            vocabulary,
            page_count,
        }
    }

    /// Number of indexed pages.
    pub fn page_count(&self) -> usize {
        self.page_count
    }

    /// Document frequency of a token.
    pub fn df(&self, token: &str) -> usize {
        self.postings.get(token).map_or(0, Vec::len)
    }

    /// Bytes of raw posting storage (dictionary strings + 4-byte ids) —
    /// the uncompressed baseline the bench's compression ratio divides by.
    pub fn postings_bytes(&self) -> usize {
        self.postings
            .iter()
            .map(|(t, l)| t.len() + l.len() * std::mem::size_of::<PageId>())
            .sum()
    }

    /// Retrieve candidates for a query.
    ///
    /// All pages containing *every* query token score `lexical = 1.0`; if
    /// fewer than `min_candidates` such pages exist, pages matching a strict
    /// subset of tokens are added with
    /// `lexical = partial_score × matched/total`, rarest-token-first so the
    /// fallback stays cheap.
    pub fn retrieve(
        &self,
        query: &str,
        min_candidates: usize,
        partial_score: f64,
    ) -> Vec<Candidate> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return Vec::new();
        }

        // AND set: intersect postings, starting from the rarest token.
        let mut lists: Vec<&Vec<PageId>> = Vec::with_capacity(tokens.len());
        for t in &tokens {
            match self.postings.get(t) {
                Some(l) => lists.push(l),
                None => {
                    lists.clear();
                    break;
                }
            }
        }
        let mut out: Vec<Candidate> = Vec::new();
        if !lists.is_empty() {
            lists.sort_by_key(|l| l.len());
            let mut acc: Vec<PageId> = lists[0].clone();
            for l in &lists[1..] {
                let set: std::collections::HashSet<PageId> = l.iter().copied().collect();
                acc.retain(|id| set.contains(id));
                if acc.is_empty() {
                    break;
                }
            }
            out.extend(acc.into_iter().map(|page| Candidate { page, lexical: 1.0 }));
        }

        if out.len() >= min_candidates || tokens.len() < 2 && !out.is_empty() {
            return out;
        }

        // OR fallback: count matched tokens per page.
        let mut matched: HashMap<PageId, usize> = HashMap::new();
        for t in &tokens {
            if let Some(l) = self.postings.get(t) {
                for &id in l {
                    *matched.entry(id).or_insert(0) += 1;
                }
            }
        }
        let full: std::collections::HashSet<PageId> = out.iter().map(|c| c.page).collect();
        let total = tokens.len() as f64;
        let mut partial: Vec<Candidate> = matched
            .into_iter()
            .filter(|(id, n)| *n < tokens.len() && !full.contains(id))
            .map(|(page, n)| Candidate {
                page,
                lexical: partial_score * n as f64 / total,
            })
            .collect();
        // Deterministic order: score desc, then id.
        partial.sort_by(|a, b| b.lexical.total_cmp(&a.lexical).then(a.page.cmp(&b.page)));
        let deficit = min_candidates.saturating_sub(out.len()) * 4; // headroom for ranking
        partial.truncate(deficit);
        out.extend(partial);
        out
    }

    /// Shard-local retrieval: the integer-only data a shard ships to the
    /// router. Returns the AND-set page ids (id-ascending, like
    /// [`InvertedIndex::retrieve`]'s full matches) and the top
    /// `max_partials` partial matches as `(page, matched tokens)` ordered
    /// by (count desc, id asc) — the same order `retrieve` sorts partials
    /// in, since the lexical score is monotone in the matched count.
    ///
    /// `max_partials` must be at least the global deficit ceiling
    /// (`min_candidates × 4`): the global top-deficit partials that live in
    /// this shard are then always inside the returned prefix.
    pub fn shard_retrieve(
        &self,
        query: &str,
        max_partials: usize,
    ) -> (Vec<PageId>, Vec<(PageId, usize)>) {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return (Vec::new(), Vec::new());
        }

        let mut lists: Vec<&Vec<PageId>> = Vec::with_capacity(tokens.len());
        for t in &tokens {
            match self.postings.get(t) {
                Some(l) => lists.push(l),
                None => {
                    lists.clear();
                    break;
                }
            }
        }
        let mut fulls: Vec<PageId> = Vec::new();
        if !lists.is_empty() {
            lists.sort_by_key(|l| l.len());
            let mut acc: Vec<PageId> = lists[0].clone();
            for l in &lists[1..] {
                let set: std::collections::HashSet<PageId> = l.iter().copied().collect();
                acc.retain(|id| set.contains(id));
                if acc.is_empty() {
                    break;
                }
            }
            fulls = acc;
        }
        fulls.sort();

        let mut matched: HashMap<PageId, usize> = HashMap::new();
        for t in &tokens {
            if let Some(l) = self.postings.get(t) {
                for &id in l {
                    *matched.entry(id).or_insert(0) += 1;
                }
            }
        }
        let full_set: std::collections::HashSet<PageId> = fulls.iter().copied().collect();
        let mut partials: Vec<(PageId, usize)> = matched
            .into_iter()
            .filter(|(id, n)| *n < tokens.len() && !full_set.contains(id))
            .collect();
        partials.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        partials.truncate(max_partials);
        (fulls, partials)
    }

    /// Shard-local spell-correction data: per query token its local df,
    /// and — for tokens unknown to this shard — every vocabulary word
    /// within edit distance 2 as `(word, distance, local df)`. The router
    /// sums dfs across shards (each page indexes in exactly one shard, so
    /// the sum is the global df) and applies the same best-candidate
    /// comparator [`InvertedIndex::suggest`] uses.
    #[allow(clippy::type_complexity)]
    pub fn spell_data(&self, query: &str) -> (Vec<u64>, Vec<Vec<(String, usize, u64)>>) {
        let tokens = tokenize(query);
        let mut dfs = Vec::with_capacity(tokens.len());
        let mut corrections = Vec::with_capacity(tokens.len());
        for token in &tokens {
            let df = self.df(token);
            dfs.push(df as u64);
            if df > 0 {
                corrections.push(Vec::new());
                continue;
            }
            let mut cands = Vec::new();
            for cand in &self.vocabulary {
                if cand.len() > token.len() + 2 {
                    break;
                }
                if cand.len() + 2 < token.len() {
                    continue;
                }
                if let Some(d) = char_distance_within(token, cand, 2) {
                    cands.push((cand.clone(), d, self.df(cand) as u64));
                }
            }
            corrections.push(cands);
        }
        (dfs, corrections)
    }
}

/// Character-level Levenshtein distance with an early-out bound (the spell
/// corrector only cares about distances ≤ 2).
fn char_distance_within(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > bound {
        return None;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for i in 1..=a.len() {
        curr[0] = i;
        let mut row_min = curr[0];
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            curr[j] = (prev[j] + 1).min(curr[j - 1] + 1).min(prev[j - 1] + cost);
            row_min = row_min.min(curr[j]);
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    (prev[b.len()] <= bound).then_some(prev[b.len()])
}

impl InvertedIndex {
    /// "Did you mean": correct unknown query tokens to the most-frequent
    /// vocabulary token within character edit distance 2 (distance-1 hits
    /// are preferred). Returns the corrected query only if every unknown
    /// token found a correction and at least one token changed.
    pub fn suggest(&self, query: &str) -> Option<String> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return None;
        }
        let mut corrected = Vec::with_capacity(tokens.len());
        let mut changed = false;
        for token in &tokens {
            if self.df(token) > 0 {
                corrected.push(token.clone());
                continue;
            }
            // Best candidate: minimal distance, then maximal document
            // frequency, then lexicographic (deterministic).
            let mut best: Option<(usize, usize, &String)> = None;
            for cand in &self.vocabulary {
                // Vocabulary is sorted by length; stop once candidates are
                // too long to be within distance 2.
                if cand.len() > token.len() + 2 {
                    break;
                }
                if cand.len() + 2 < token.len() {
                    continue;
                }
                if let Some(d) = char_distance_within(token, cand, 2) {
                    let df = self.df(cand);
                    let better = match &best {
                        None => true,
                        Some((bd, bdf, bc)) => {
                            d < *bd || (d == *bd && (df > *bdf || (df == *bdf && cand < *bc)))
                        }
                    };
                    if better {
                        best = Some((d, df, cand));
                    }
                }
            }
            let (_, _, replacement) = best?;
            corrected.push(replacement.clone());
            changed = true;
        }
        changed.then(|| corrected.join(" "))
    }
}

/// Compressed inverted index: sorted term dictionary over delta/varint
/// posting blocks with skip pointers and block max-score metadata, queried
/// document-at-a-time with MaxScore-style top-k early termination.
///
/// Byte-identical to [`InvertedIndex`] on every public method — the
/// pruning machinery only ever skips work whose outcome is provably
/// outside the returned prefix, and whenever the score function is not
/// provably monotone in the matched-token count it falls back to
/// exhaustive evaluation with the reference comparator.
#[derive(Debug)]
pub struct CompressedIndex {
    /// Lexicographically sorted dictionary; `lists[i]` belongs to
    /// `terms[i]`.
    terms: Vec<String>,
    lists: Vec<PostingList>,
    /// Permutation of `terms` indices in (length, token) order — the
    /// spell-correction scan order the exact backend's `vocabulary` uses.
    len_order: Vec<u32>,
    page_count: usize,
}

impl CompressedIndex {
    /// Build over the whole corpus.
    pub fn build(corpus: &WebCorpus) -> Self {
        Self::build_range(corpus, 0..corpus.pages.len() as u32)
    }

    /// Build over the pages whose id falls in `range` (one shard's slice),
    /// with the same per-page token-set semantics as
    /// [`InvertedIndex::build_range`].
    pub fn build_range(corpus: &WebCorpus, range: std::ops::Range<u32>) -> Self {
        let mut postings: HashMap<String, Vec<u32>> = HashMap::new();
        let mut page_count = 0usize;
        for page in &corpus.pages {
            if !range.contains(&page.id.0) {
                continue;
            }
            page_count += 1;
            let mut seen = std::collections::HashSet::new();
            for token in &page.tokens {
                if seen.insert(token.as_str()) {
                    postings.entry(token.clone()).or_default().push(page.id.0);
                }
            }
        }
        let mut entries: Vec<(String, Vec<u32>)> = postings.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut terms = Vec::with_capacity(entries.len());
        let mut lists = Vec::with_capacity(entries.len());
        for (term, ids) in entries {
            terms.push(term);
            // Pages are visited in id order, so ids are already strictly
            // increasing.
            lists.push(PostingList::build(&ids));
        }
        let mut len_order: Vec<u32> = (0..terms.len() as u32).collect();
        len_order.sort_by(|&a, &b| {
            let (a, b) = (&terms[a as usize], &terms[b as usize]);
            a.len().cmp(&b.len()).then(a.cmp(b))
        });
        CompressedIndex {
            terms,
            lists,
            len_order,
            page_count,
        }
    }

    /// Number of indexed pages.
    pub fn page_count(&self) -> usize {
        self.page_count
    }

    /// Document frequency of a token.
    pub fn df(&self, token: &str) -> usize {
        self.list(token).map_or(0, PostingList::len)
    }

    /// Bytes of compressed posting data plus skip tables plus dictionary —
    /// the resident index cost the bench reports.
    pub fn postings_bytes(&self) -> usize {
        self.lists
            .iter()
            .map(PostingList::heap_bytes)
            .sum::<usize>()
            + self.terms.iter().map(String::len).sum::<usize>()
    }

    fn list(&self, token: &str) -> Option<&PostingList> {
        self.terms
            .binary_search_by(|t| t.as_str().cmp(token))
            .ok()
            .map(|i| &self.lists[i])
    }

    /// The AND set: ids containing every query token, ascending. Any token
    /// absent from the dictionary empties the set (mirroring the exact
    /// backend's `lists.clear()`). Leapfrog intersection: the rarest list
    /// drives, the others are sought through their skip tables.
    fn and_set(&self, tokens: &[String]) -> Vec<u32> {
        let mut lists: Vec<&PostingList> = Vec::with_capacity(tokens.len());
        for t in tokens {
            match self.list(t) {
                Some(l) => lists.push(l),
                None => return Vec::new(),
            }
        }
        let Some(min_at) = (0..lists.len()).min_by_key(|&i| lists[i].len()) else {
            return Vec::new();
        };
        lists.swap(0, min_at);
        let mut driver = lists[0].cursor();
        let mut others: Vec<PostingCursor<'_>> = lists[1..].iter().map(|l| l.cursor()).collect();
        let mut out = Vec::new();
        'driver: while let Some(id) = driver.current() {
            let mut bar = id;
            for c in others.iter_mut() {
                c.seek(id);
                match c.current() {
                    None => break 'driver,
                    Some(at) => bar = bar.max(at),
                }
            }
            if bar == id {
                out.push(id);
                driver.next();
            } else {
                // Some list has no posting below `bar`; leapfrog to it.
                driver.seek(bar);
            }
        }
        out
    }

    /// Top-`k` partial matches as `(id, matched-token count)` ordered by
    /// (count desc, id asc) — exactly the prefix the exact backend's
    /// sort-then-truncate keeps. MaxScore-style document-at-a-time
    /// evaluation: one cursor per query-token occurrence (duplicate tokens
    /// count with multiplicity, as the exact accumulation does); once the
    /// heap holds `k` entries whose worst count is `θ`, the `θ` longest
    /// lists become non-essential — a document found only in them cannot
    /// beat the worst — and are only probed through their skip tables.
    /// Because documents arrive in ascending id and ties break toward
    /// smaller ids, a new document must *strictly* beat `θ` to enter, so
    /// when `θ` reaches the best count any future partial could achieve
    /// (`min(live lists, tokens−1)`) evaluation stops early.
    fn top_partials(&self, tokens: &[String], k: usize) -> Vec<(u32, usize)> {
        let l = tokens.len();
        if l < 2 || k == 0 {
            // A partial match requires count < l, impossible for l ≤ 1.
            return Vec::new();
        }
        let mut cursors: Vec<PostingCursor<'_>> = tokens
            .iter()
            .filter_map(|t| self.list(t))
            .filter(|pl| !pl.is_empty())
            .map(PostingList::cursor)
            .collect();
        // Longest lists first: the non-essential prefix skips the big ones.
        cursors.sort_by_key(|c| std::cmp::Reverse(c.len()));
        let cap = l - 1;
        // Min-heap on (count, Reverse(id)): the root is the worst kept
        // entry — lowest count, then largest id.
        let mut heap: BinaryHeap<std::cmp::Reverse<(usize, std::cmp::Reverse<u32>)>> =
            BinaryHeap::new();
        loop {
            cursors.retain(|c| c.current().is_some());
            let live = cursors.len();
            if live == 0 {
                break;
            }
            let theta = if heap.len() >= k {
                heap.peek().map_or(0, |std::cmp::Reverse((c, _))| *c)
            } else {
                0
            };
            if theta >= cap.min(live) {
                break;
            }
            let ness = theta; // theta < live here, so essentials exist
            let pivot = cursors[ness..]
                .iter()
                .filter_map(PostingCursor::current)
                .min()
                .expect("essential cursors are live");
            let mut count = 0usize;
            for c in cursors[ness..].iter_mut() {
                if c.current() == Some(pivot) {
                    count += 1;
                    c.next();
                }
            }
            for c in cursors[..ness].iter_mut() {
                c.seek(pivot);
                if c.current() == Some(pivot) {
                    count += 1;
                    c.next();
                }
            }
            // count == l means an AND match — never a partial. Ascending
            // ids make count == theta a guaranteed tie-break loss.
            if count < l && count > theta {
                heap.push(std::cmp::Reverse((count, std::cmp::Reverse(pivot))));
                if heap.len() > k {
                    heap.pop();
                }
            }
        }
        let mut out: Vec<(u32, usize)> = heap
            .into_iter()
            .map(|std::cmp::Reverse((n, std::cmp::Reverse(id)))| (id, n))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Retrieve candidates for a query — byte-identical to
    /// [`InvertedIndex::retrieve`], with top-k early termination standing
    /// in for the exhaustive OR accumulation whenever the partial score is
    /// strictly monotone in the matched-token count.
    pub fn retrieve(
        &self,
        query: &str,
        min_candidates: usize,
        partial_score: f64,
    ) -> Vec<Candidate> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<Candidate> = self
            .and_set(&tokens)
            .into_iter()
            .map(|id| Candidate {
                page: PageId(id),
                lexical: 1.0,
            })
            .collect();
        if out.len() >= min_candidates || tokens.len() < 2 && !out.is_empty() {
            return out;
        }
        let total = tokens.len() as f64;
        let deficit = min_candidates.saturating_sub(out.len()) * 4; // headroom for ranking
                                                                    // Count-ordered top-k only equals score-ordered top-k when the
                                                                    // score strictly increases with the count; degenerate scores
                                                                    // (zero, negative, subnormal collapse, NaN) take the exhaustive
                                                                    // path and the reference comparator decides.
        let k = if count_score_strictly_monotone(partial_score, tokens.len()) {
            deficit
        } else {
            usize::MAX
        };
        let mut partial: Vec<Candidate> = self
            .top_partials(&tokens, k)
            .into_iter()
            .map(|(id, n)| Candidate {
                page: PageId(id),
                lexical: partial_score * n as f64 / total,
            })
            .collect();
        partial.sort_by(|a, b| b.lexical.total_cmp(&a.lexical).then(a.page.cmp(&b.page)));
        partial.truncate(deficit);
        out.extend(partial);
        out
    }

    /// Shard-local retrieval — byte-identical to
    /// [`InvertedIndex::shard_retrieve`]. Partial ordering is by integer
    /// matched-token count, so top-k pruning is unconditionally sound
    /// here.
    pub fn shard_retrieve(
        &self,
        query: &str,
        max_partials: usize,
    ) -> (Vec<PageId>, Vec<(PageId, usize)>) {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return (Vec::new(), Vec::new());
        }
        let fulls: Vec<PageId> = self.and_set(&tokens).into_iter().map(PageId).collect();
        let partials: Vec<(PageId, usize)> = self
            .top_partials(&tokens, max_partials)
            .into_iter()
            .map(|(id, n)| (PageId(id), n))
            .collect();
        (fulls, partials)
    }

    /// Shard-local spell-correction data — byte-identical to
    /// [`InvertedIndex::spell_data`] (the dictionary is scanned in the
    /// same (length, token) order through `len_order`).
    #[allow(clippy::type_complexity)]
    pub fn spell_data(&self, query: &str) -> (Vec<u64>, Vec<Vec<(String, usize, u64)>>) {
        let tokens = tokenize(query);
        let mut dfs = Vec::with_capacity(tokens.len());
        let mut corrections = Vec::with_capacity(tokens.len());
        for token in &tokens {
            let df = self.df(token);
            dfs.push(df as u64);
            if df > 0 {
                corrections.push(Vec::new());
                continue;
            }
            let mut cands = Vec::new();
            for &ti in &self.len_order {
                let cand = &self.terms[ti as usize];
                if cand.len() > token.len() + 2 {
                    break;
                }
                if cand.len() + 2 < token.len() {
                    continue;
                }
                if let Some(d) = char_distance_within(token, cand, 2) {
                    cands.push((cand.clone(), d, self.lists[ti as usize].len() as u64));
                }
            }
            corrections.push(cands);
        }
        (dfs, corrections)
    }

    /// "Did you mean" — byte-identical to [`InvertedIndex::suggest`].
    pub fn suggest(&self, query: &str) -> Option<String> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return None;
        }
        let mut corrected = Vec::with_capacity(tokens.len());
        let mut changed = false;
        for token in &tokens {
            if self.df(token) > 0 {
                corrected.push(token.clone());
                continue;
            }
            let mut best: Option<(usize, usize, &String)> = None;
            for &ti in &self.len_order {
                let cand = &self.terms[ti as usize];
                if cand.len() > token.len() + 2 {
                    break;
                }
                if cand.len() + 2 < token.len() {
                    continue;
                }
                if let Some(d) = char_distance_within(token, cand, 2) {
                    let df = self.lists[ti as usize].len();
                    let better = match &best {
                        None => true,
                        Some((bd, bdf, bc)) => {
                            d < *bd || (d == *bd && (df > *bdf || (df == *bdf && cand < *bc)))
                        }
                    };
                    if better {
                        best = Some((d, df, cand));
                    }
                }
            }
            let (_, _, replacement) = best?;
            corrected.push(replacement.clone());
            changed = true;
        }
        changed.then(|| corrected.join(" "))
    }
}

/// True when `partial_score × n / total` strictly increases with the
/// matched count `n` over `1..total` — the precondition for replacing the
/// exhaustive score sort with count-ordered top-k selection.
fn count_score_strictly_monotone(partial_score: f64, total_tokens: usize) -> bool {
    let total = total_tokens as f64;
    let mut prev = None;
    for n in 1..total_tokens {
        let s = partial_score * n as f64 / total;
        if let Some(p) = prev {
            if s <= p {
                return false;
            }
        }
        if s.is_nan() {
            return false;
        }
        prev = Some(s);
    }
    true
}

/// Backend-dispatching index: the exact reference or the compressed
/// top-k engine, behind one retrieval surface. Built from
/// [`IndexBackend`], which [`crate::EngineConfig`] carries and the CLI's
/// `--index` flag selects.
#[derive(Debug)]
pub enum SearchIndex {
    /// Exhaustive `HashMap` reference backend.
    Exact(InvertedIndex),
    /// Compressed posting blocks with top-k early termination.
    Compressed(CompressedIndex),
}

impl SearchIndex {
    /// Build the chosen backend over the whole corpus.
    pub fn build(corpus: &WebCorpus, backend: IndexBackend) -> Self {
        Self::build_range(corpus, 0..corpus.pages.len() as u32, backend)
    }

    /// Build the chosen backend over one shard's id range.
    pub fn build_range(
        corpus: &WebCorpus,
        range: std::ops::Range<u32>,
        backend: IndexBackend,
    ) -> Self {
        match backend {
            IndexBackend::Exact => SearchIndex::Exact(InvertedIndex::build_range(corpus, range)),
            IndexBackend::Compressed => {
                SearchIndex::Compressed(CompressedIndex::build_range(corpus, range))
            }
        }
    }

    /// Which backend this index is.
    pub fn backend(&self) -> IndexBackend {
        match self {
            SearchIndex::Exact(_) => IndexBackend::Exact,
            SearchIndex::Compressed(_) => IndexBackend::Compressed,
        }
    }

    /// Number of indexed pages.
    pub fn page_count(&self) -> usize {
        match self {
            SearchIndex::Exact(i) => i.page_count(),
            SearchIndex::Compressed(i) => i.page_count(),
        }
    }

    /// Document frequency of a token.
    pub fn df(&self, token: &str) -> usize {
        match self {
            SearchIndex::Exact(i) => i.df(token),
            SearchIndex::Compressed(i) => i.df(token),
        }
    }

    /// See [`InvertedIndex::retrieve`].
    pub fn retrieve(
        &self,
        query: &str,
        min_candidates: usize,
        partial_score: f64,
    ) -> Vec<Candidate> {
        match self {
            SearchIndex::Exact(i) => i.retrieve(query, min_candidates, partial_score),
            SearchIndex::Compressed(i) => i.retrieve(query, min_candidates, partial_score),
        }
    }

    /// See [`InvertedIndex::shard_retrieve`].
    pub fn shard_retrieve(
        &self,
        query: &str,
        max_partials: usize,
    ) -> (Vec<PageId>, Vec<(PageId, usize)>) {
        match self {
            SearchIndex::Exact(i) => i.shard_retrieve(query, max_partials),
            SearchIndex::Compressed(i) => i.shard_retrieve(query, max_partials),
        }
    }

    /// See [`InvertedIndex::spell_data`].
    #[allow(clippy::type_complexity)]
    pub fn spell_data(&self, query: &str) -> (Vec<u64>, Vec<Vec<(String, usize, u64)>>) {
        match self {
            SearchIndex::Exact(i) => i.spell_data(query),
            SearchIndex::Compressed(i) => i.spell_data(query),
        }
    }

    /// See [`InvertedIndex::suggest`].
    pub fn suggest(&self, query: &str) -> Option<String> {
        match self {
            SearchIndex::Exact(i) => i.suggest(query),
            SearchIndex::Compressed(i) => i.suggest(query),
        }
    }

    /// Resident posting-storage bytes (dictionary + postings + skip
    /// metadata); the bench's compression-ratio numerator/denominator.
    pub fn postings_bytes(&self) -> usize {
        match self {
            SearchIndex::Exact(i) => i.postings_bytes(),
            SearchIndex::Compressed(i) => i.postings_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoserp_geo::{Seed, UsGeography};

    fn corpus() -> WebCorpus {
        let geo = UsGeography::generate(Seed::new(2015));
        WebCorpus::generate(&geo, Seed::new(2015))
    }

    #[test]
    fn index_covers_all_pages() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        assert_eq!(idx.page_count(), c.pages.len());
        assert!(idx.df("school") > 100, "df(school) = {}", idx.df("school"));
        assert_eq!(idx.df("zzzznonexistent"), 0);
    }

    #[test]
    fn and_retrieval_requires_all_tokens() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let full: Vec<Candidate> = idx
            .retrieve("Elementary School", 0, 0.3)
            .into_iter()
            .filter(|cand| cand.lexical == 1.0)
            .collect();
        assert!(!full.is_empty());
        for cand in full {
            let page = c.page(cand.page);
            assert!(
                page.tokens.iter().any(|t| t == "elementary"),
                "{}",
                page.title
            );
            assert!(page.tokens.iter().any(|t| t == "school"), "{}", page.title);
        }
    }

    #[test]
    fn fallback_fills_thin_queries() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        // A politician's full name has few AND matches; fallback must extend
        // the pool.
        let name = &c.roster.all()[0].name;
        let cands = idx.retrieve(name, 30, 0.35);
        assert!(
            cands.len() >= 12,
            "only {} candidates for {name}",
            cands.len()
        );
        assert!(cands.iter().any(|x| x.lexical == 1.0), "own pages present");
        assert!(cands.iter().any(|x| x.lexical < 1.0), "partials present");
        // Partials score strictly below fulls.
        for x in &cands {
            if x.lexical < 1.0 {
                assert!(x.lexical <= 0.35 / 2.0 + 0.35, "{}", x.lexical);
            }
        }
    }

    #[test]
    fn empty_and_unknown_queries() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        assert!(idx.retrieve("", 10, 0.3).is_empty());
        assert!(idx.retrieve("!!!", 10, 0.3).is_empty());
        assert!(idx.retrieve("qqqxyzzy", 10, 0.3).is_empty());
    }

    #[test]
    fn retrieval_is_deterministic() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let a = idx.retrieve("Coffee", 30, 0.35);
        let b = idx.retrieve("Coffee", 30, 0.35);
        assert_eq!(a, b);
    }

    #[test]
    fn suggest_corrects_typos() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        assert_eq!(idx.suggest("starbuks").as_deref(), Some("starbucks"));
        assert_eq!(
            idx.suggest("hospitel near me")
                .as_deref()
                .map(|s| s.starts_with("hospital")),
            Some(true)
        );
        // Known queries need no correction.
        assert_eq!(idx.suggest("school"), None);
        assert_eq!(idx.suggest(""), None);
        // Hopeless garbage gets no suggestion.
        assert_eq!(idx.suggest("qqqqqqqqqqqqqq"), None);
    }

    #[test]
    fn suggest_is_deterministic() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        assert_eq!(idx.suggest("coffe"), idx.suggest("coffe"));
    }

    #[test]
    fn char_distance_bound_behaviour() {
        assert_eq!(char_distance_within("kitten", "sitten", 2), Some(1));
        assert_eq!(char_distance_within("kitten", "sitting", 3), Some(3));
        assert_eq!(char_distance_within("kitten", "sitting", 2), None);
        assert_eq!(char_distance_within("abc", "abc", 0), Some(0));
        assert_eq!(
            char_distance_within("a", "abcd", 2),
            None,
            "length gap exceeds bound"
        );
    }

    #[test]
    fn brand_query_finds_brand_home() {
        let c = corpus();
        let idx = InvertedIndex::build(&c);
        let cands = idx.retrieve("Starbucks", 30, 0.35);
        let has_home = cands.iter().any(|cand| {
            let p = c.page(cand.page);
            p.url == "https://www.starbucks.example.com/"
        });
        assert!(has_home);
    }

    /// Queries that exercise every retrieval regime: AND-rich, AND-thin
    /// with OR fallback, single-token, misspelled, unknown, empty, and
    /// duplicate-token.
    const DIFF_QUERIES: &[&str] = &[
        "Coffee",
        "Elementary School",
        "Starbucks",
        "Gay Marriage",
        "Joe Biden",
        "Hospital near me",
        "cheap gas",
        "school school",
        "starbuks",
        "hospitel near me",
        "qqqxyzzy",
        "the",
        "",
        "!!!",
    ];

    #[test]
    fn compressed_retrieve_is_byte_identical_to_exact() {
        let c = corpus();
        let exact = InvertedIndex::build(&c);
        let comp = CompressedIndex::build(&c);
        assert_eq!(exact.page_count(), comp.page_count());
        for q in DIFF_QUERIES {
            for (min_c, score) in [(36, 0.35), (0, 0.35), (5, 0.2), (500, 0.9)] {
                assert_eq!(
                    exact.retrieve(q, min_c, score),
                    comp.retrieve(q, min_c, score),
                    "retrieve({q:?}, {min_c}, {score})"
                );
            }
        }
    }

    /// Bit-level view of a candidate list: `PartialEq` on `f64` treats
    /// NaN ≠ NaN, but byte-identity is about the bits.
    fn bits(cands: &[Candidate]) -> Vec<(PageId, u64)> {
        cands
            .iter()
            .map(|c| (c.page, c.lexical.to_bits()))
            .collect()
    }

    #[test]
    fn compressed_retrieve_matches_exact_for_degenerate_scores() {
        let c = corpus();
        let exact = InvertedIndex::build(&c);
        let comp = CompressedIndex::build(&c);
        // Scores where count-order and score-order disagree (or collapse):
        // the compressed backend must detect non-monotonicity and fall
        // back to exhaustive evaluation.
        for score in [0.0, -0.35, f64::MIN_POSITIVE, f64::NAN, f64::INFINITY] {
            for q in ["Hospital near me", "Joe Biden", "Elementary School"] {
                assert_eq!(
                    bits(&exact.retrieve(q, 36, score)),
                    bits(&comp.retrieve(q, 36, score)),
                    "retrieve({q:?}, 36, {score})"
                );
            }
        }
    }

    #[test]
    fn compressed_shard_retrieve_is_byte_identical_to_exact() {
        let c = corpus();
        let half = c.pages.len() as u32 / 2;
        for range in [0..c.pages.len() as u32, 0..half, half..c.pages.len() as u32] {
            let exact = InvertedIndex::build_range(&c, range.clone());
            let comp = CompressedIndex::build_range(&c, range.clone());
            for q in DIFF_QUERIES {
                for max_p in [0, 1, 144, usize::MAX] {
                    assert_eq!(
                        exact.shard_retrieve(q, max_p),
                        comp.shard_retrieve(q, max_p),
                        "shard_retrieve({q:?}, {max_p}) over {range:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn compressed_spell_surface_is_byte_identical_to_exact() {
        let c = corpus();
        let exact = InvertedIndex::build(&c);
        let comp = CompressedIndex::build(&c);
        for q in DIFF_QUERIES {
            assert_eq!(exact.spell_data(q), comp.spell_data(q), "spell_data({q:?})");
            assert_eq!(exact.suggest(q), comp.suggest(q), "suggest({q:?})");
        }
    }

    #[test]
    fn search_index_dispatches_both_backends() {
        let c = corpus();
        let exact = SearchIndex::build(&c, IndexBackend::Exact);
        let comp = SearchIndex::build(&c, IndexBackend::Compressed);
        assert_eq!(exact.backend(), IndexBackend::Exact);
        assert_eq!(comp.backend(), IndexBackend::Compressed);
        assert_eq!(exact.page_count(), comp.page_count());
        assert_eq!(exact.df("school"), comp.df("school"));
        assert_eq!(
            exact.retrieve("Coffee", 36, 0.35),
            comp.retrieve("Coffee", 36, 0.35)
        );
        assert_eq!(exact.suggest("starbuks"), comp.suggest("starbuks"));
        // Compression earns its name on this corpus.
        assert!(
            comp.postings_bytes() * 2 < exact.postings_bytes(),
            "compressed {} vs raw {}",
            comp.postings_bytes(),
            exact.postings_bytes()
        );
    }
}
