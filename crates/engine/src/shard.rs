//! Scatter-gather merge for sharded retrieval.
//!
//! Shards ship integer-only responses ([`geoserp_net::shardmsg`]); the
//! router reassembles them here with the *same expressions and comparators*
//! [`InvertedIndex`](crate::index::InvertedIndex) uses, so the merged
//! candidate list is equal — element for element — to what a single
//! whole-corpus index would have returned. The proofs rest on one
//! invariant: every page's tokens are indexed whole within its owning
//! shard, so shard-local full/partial classification and matched counts
//! are the global ones.
//!
//! The merge is deliberately robust to delivery artifacts: candidates are
//! deduplicated by page id (a hedged request delivering one shard's
//! response twice changes nothing) and sorted after concatenation (shard
//! response order is immaterial) — both properties are proptested.

use crate::index::Candidate;
use geoserp_corpus::{tokenize, PageId};
use geoserp_net::shardmsg::{ShardRetrieveResponse, ShardSuggestResponse};
use std::collections::{HashMap, HashSet};

/// The per-shard partials bound the router must request so that every
/// shard's slice of the global top-deficit partials is inside its
/// response: the global deficit is at most `min_candidates × 4`.
pub fn max_partials(min_candidates: usize) -> usize {
    min_candidates * 4
}

/// Merge shard retrieval responses into the exact candidate list
/// [`InvertedIndex::retrieve`](crate::index::InvertedIndex::retrieve)
/// produces over the whole corpus. `parts` must hold one response per
/// shard (order immaterial; duplicates tolerated).
pub fn merge_retrieve(
    query: &str,
    min_candidates: usize,
    partial_score: f64,
    parts: &[ShardRetrieveResponse],
) -> Vec<Candidate> {
    let tokens = tokenize(query);
    if tokens.is_empty() {
        return Vec::new();
    }

    // Full matches: the union of shard AND-sets is the global AND-set
    // (a page carries all tokens iff its owning shard says so). Sorting
    // by id after concatenation reproduces the global posting order and
    // makes the merge commutative; dedup makes it idempotent.
    let mut fulls: Vec<u32> = parts.iter().flat_map(|p| p.fulls.iter().copied()).collect();
    fulls.sort_unstable();
    fulls.dedup();
    let mut out: Vec<Candidate> = fulls
        .iter()
        .map(|&id| Candidate {
            page: PageId(id),
            lexical: 1.0,
        })
        .collect();

    // The single-process activation rule, verbatim (&& binds tighter).
    if out.len() >= min_candidates || tokens.len() < 2 && !out.is_empty() {
        return out;
    }

    let full_set: HashSet<u32> = fulls.iter().copied().collect();
    let total = tokens.len() as f64;
    let mut seen: HashMap<u32, u32> = HashMap::new();
    for p in parts {
        for &(id, n) in &p.partials {
            if (n as usize) < tokens.len() && !full_set.contains(&id) {
                seen.entry(id).or_insert(n);
            }
        }
    }
    let mut partial: Vec<Candidate> = seen
        .into_iter()
        .map(|(id, n)| Candidate {
            page: PageId(id),
            // The exact single-process expression — no score crossed the
            // wire, so there is nothing to round-trip.
            lexical: partial_score * f64::from(n) / total,
        })
        .collect();
    partial.sort_by(|a, b| b.lexical.total_cmp(&a.lexical).then(a.page.cmp(&b.page)));
    let deficit = min_candidates.saturating_sub(out.len()) * 4;
    partial.truncate(deficit);
    out.extend(partial);
    out
}

/// Merge shard suggest responses into the exact correction
/// [`InvertedIndex::suggest`](crate::index::InvertedIndex::suggest)
/// produces. `parts` must hold exactly one response per shard (dfs are
/// summed, so duplicates would inflate frequencies — the router keeps one
/// winner per shard).
pub fn merge_suggest(query: &str, parts: &[ShardSuggestResponse]) -> Option<String> {
    let tokens = tokenize(query);
    if tokens.is_empty() {
        return None;
    }
    let mut corrected = Vec::with_capacity(tokens.len());
    let mut changed = false;
    for (i, token) in tokens.iter().enumerate() {
        let global_df: u64 = parts
            .iter()
            .map(|p| p.token_dfs.get(i).copied().unwrap_or(0))
            .sum();
        if global_df > 0 {
            corrected.push(token.clone());
            continue;
        }
        // Candidate union with summed (= global) dfs. Distance is a string
        // property, identical across shards.
        let mut merged: HashMap<&str, (u32, u64)> = HashMap::new();
        for p in parts {
            if let Some(cands) = p.corrections.get(i) {
                for c in cands {
                    let entry = merged.entry(c.token.as_str()).or_insert((c.distance, 0));
                    entry.1 += c.df;
                }
            }
        }
        // The single-process comparator: minimal distance, then maximal
        // df, then lexicographic. A total order, so the HashMap's
        // iteration order cannot influence the winner.
        let mut best: Option<(u32, u64, &str)> = None;
        for (cand, &(d, df)) in &merged {
            let better = match &best {
                None => true,
                Some((bd, bdf, bc)) => {
                    d < *bd || (d == *bd && (df > *bdf || (df == *bdf && cand < bc)))
                }
            };
            if better {
                best = Some((d, df, cand));
            }
        }
        let (_, _, replacement) = best?;
        corrected.push(replacement.to_string());
        changed = true;
    }
    changed.then(|| corrected.join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::InvertedIndex;
    use geoserp_corpus::WebCorpus;
    use geoserp_geo::{Seed, UsGeography};

    fn corpus() -> WebCorpus {
        let geo = UsGeography::generate(Seed::new(2015));
        WebCorpus::generate(&geo, Seed::new(2015))
    }

    /// Contiguous balanced page-id ranges, mirroring the serve tier's plan.
    fn ranges(total: u32, shards: u32) -> Vec<std::ops::Range<u32>> {
        let base = total / shards;
        let rem = total % shards;
        let mut out = Vec::new();
        let mut lo = 0;
        for i in 0..shards {
            let len = base + u32::from(i < rem);
            out.push(lo..lo + len);
            lo += len;
        }
        out
    }

    fn shard_parts(
        c: &WebCorpus,
        shards: u32,
        query: &str,
        min_candidates: usize,
    ) -> (Vec<ShardRetrieveResponse>, Vec<ShardSuggestResponse>) {
        let mut retrieves = Vec::new();
        let mut suggests = Vec::new();
        for range in ranges(c.pages.len() as u32, shards) {
            let idx = InvertedIndex::build_range(c, range);
            let (fulls, partials) = idx.shard_retrieve(query, max_partials(min_candidates));
            retrieves.push(ShardRetrieveResponse {
                fulls: fulls.into_iter().map(|p| p.0).collect(),
                partials: partials.into_iter().map(|(p, n)| (p.0, n as u32)).collect(),
            });
            let (token_dfs, corrections) = idx.spell_data(query);
            suggests.push(ShardSuggestResponse {
                token_dfs,
                corrections: corrections
                    .into_iter()
                    .map(|cands| {
                        cands
                            .into_iter()
                            .map(|(token, d, df)| geoserp_net::shardmsg::SpellCandidate {
                                token,
                                distance: d as u32,
                                df,
                            })
                            .collect()
                    })
                    .collect(),
            });
        }
        (retrieves, suggests)
    }

    #[test]
    fn merged_retrieval_equals_whole_corpus_retrieval() {
        let c = corpus();
        let whole = InvertedIndex::build(&c);
        let queries = [
            "Coffee",
            "Elementary School",
            "Starbucks",
            "Gay Marriage",
            "Joe Biden",
            "Hospital near me",
            "qqqxyzzy",
            "",
        ];
        for shards in [1u32, 2, 3, 4, 7] {
            for q in queries {
                let reference = whole.retrieve(q, 36, 0.35);
                let (parts, _) = shard_parts(&c, shards, q, 36);
                let merged = merge_retrieve(q, 36, 0.35, &parts);
                assert_eq!(merged, reference, "query {q:?} shards {shards}");
            }
        }
    }

    #[test]
    fn merged_suggest_equals_whole_corpus_suggest() {
        let c = corpus();
        let whole = InvertedIndex::build(&c);
        for shards in [1u32, 2, 4] {
            for q in [
                "starbuks",
                "hospitel near me",
                "school",
                "qqqqqqqqqqqqqq",
                "",
            ] {
                let reference = whole.suggest(q);
                let (_, parts) = shard_parts(&c, shards, q, 36);
                assert_eq!(merge_suggest(q, &parts), reference, "query {q:?}");
            }
        }
    }

    #[test]
    fn merge_is_commutative_and_idempotent() {
        let c = corpus();
        let (mut parts, _) = shard_parts(&c, 4, "Joe Biden", 36);
        let reference = merge_retrieve("Joe Biden", 36, 0.35, &parts);
        parts.reverse();
        assert_eq!(merge_retrieve("Joe Biden", 36, 0.35, &parts), reference);
        let doubled: Vec<_> = parts.iter().chain(parts.iter()).cloned().collect();
        assert_eq!(merge_retrieve("Joe Biden", 36, 0.35, &doubled), reference);
    }
}
