//! IP geolocation and reverse geocoding.
//!
//! [`GeoIpDb`] is the engine-side IP → coordinate database (how Google
//! located users before the mobile Geolocation API, and the fallback when no
//! GPS fix accompanies a query). [`ReverseGeocoder`] turns a coordinate back
//! into the human-readable place name the engine prints at the bottom of
//! every SERP — the footer the paper used to "manually verify that Google
//! was personalizing search results correctly based on our spoofed GPS
//! coordinates" (§2.2).

use geoserp_geo::{Coord, GridIndex, UsGeography};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Engine-side IP-geolocation database.
///
/// Real GeoIP data is /24-granular at best; lookups fall back from exact IP
/// to the /24 prefix, so registering one machine of a subnet locates its
/// neighbours too.
#[derive(Debug, Default)]
pub struct GeoIpDb {
    exact: RwLock<HashMap<Ipv4Addr, Coord>>,
    subnet: RwLock<HashMap<[u8; 3], Coord>>,
}

impl GeoIpDb {
    /// See the type-level docs: `new`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an IP at a coordinate (also seeds its /24 prefix unless one
    /// is already present).
    pub fn register(&self, ip: Ipv4Addr, coord: Coord) {
        self.exact.write().insert(ip, coord);
        let o = ip.octets();
        self.subnet
            .write()
            .entry([o[0], o[1], o[2]])
            .or_insert(coord);
    }

    /// Locate an IP: exact entry first, then its /24.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<Coord> {
        if let Some(&c) = self.exact.read().get(&ip) {
            return Some(c);
        }
        let o = ip.octets();
        self.subnet.read().get(&[o[0], o[1], o[2]]).copied()
    }

    /// Number of exact entries.
    pub fn len(&self) -> usize {
        self.exact.read().len()
    }

    /// True when no IP has been registered.
    pub fn is_empty(&self) -> bool {
        self.exact.read().is_empty()
    }
}

/// Coordinate → administrative-place resolver built from the geography.
///
/// Nearest-centroid assignment — exact for geoserp's vantage points (which
/// *are* centroids) and a reasonable approximation elsewhere.
#[derive(Debug, Clone)]
pub struct ReverseGeocoder {
    /// Spatial index over state centroids: payload `(name, abbrev)`.
    states: GridIndex<(String, String)>,
    /// Spatial index over Ohio county centroids: payload bare county name.
    ohio_counties: GridIndex<String>,
    metro: Coord, // Cuyahoga metro anchor
}

/// A resolved place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedPlace {
    /// Two-letter state code.
    pub state_abbrev: String,
    /// Bare county name when the point is inside Ohio (e.g. `"Cuyahoga"`).
    pub county: Option<String>,
    /// Human-readable label for the SERP footer.
    pub label: String,
}

impl ReverseGeocoder {
    /// Build from a geography. Centroids go into [`GridIndex`]es (4° cells
    /// for the 51 states, 0.5° for the 88 Ohio counties) so resolution is a
    /// couple of bucket probes instead of a linear scan on every request.
    pub fn new(geo: &UsGeography) -> Self {
        ReverseGeocoder {
            states: GridIndex::build(
                4.0,
                geo.states.iter().map(|l| {
                    (
                        l.coord,
                        (
                            l.region.name.clone(),
                            l.region.state_abbrev.clone().unwrap_or_default(),
                        ),
                    )
                }),
            ),
            ohio_counties: GridIndex::build(
                0.5,
                geo.ohio_counties.iter().map(|l| {
                    let bare = l
                        .region
                        .name
                        .strip_suffix(" County")
                        .unwrap_or(&l.region.name)
                        .to_string();
                    (l.coord, bare)
                }),
            ),
            metro: geoserp_geo::us::CUYAHOGA_CENTROID,
        }
    }

    /// Resolve a coordinate to state / county / footer label.
    pub fn resolve(&self, coord: Coord) -> ResolvedPlace {
        // County assignment applies only inside Ohio's bounding box (the
        // synthetic county grid lives there); within it, nearest centroid
        // wins.
        let in_ohio_box = {
            use geoserp_geo::us::{OHIO_LAT, OHIO_LON};
            coord.lat_deg >= OHIO_LAT.0
                && coord.lat_deg <= OHIO_LAT.1 + 0.15
                && coord.lon_deg >= OHIO_LON.0 - 0.15
                && coord.lon_deg < OHIO_LON.1 - 0.05
        };
        let county = if in_ohio_box {
            self.ohio_counties
                .nearest(coord)
                .map(|(name, _, _)| name.clone())
        } else {
            None
        };

        let (state_name, state_abbrev) = self
            .states
            .nearest(coord)
            .map(|((n, a), _, _)| (n.clone(), a.clone()))
            .expect("geography has states");

        let label = match &county {
            // Inside the Cuyahoga metro the engine reports the city.
            Some(c) if c == "Cuyahoga" && coord.haversine_km(self.metro) < 12.0 => {
                "Cleveland, OH".to_string()
            }
            Some(c) => format!("{c} County, OH"),
            None => format!("{state_name}, USA"),
        };
        ResolvedPlace {
            state_abbrev: if county.is_some() {
                "OH".to_string()
            } else {
                state_abbrev
            },
            county,
            label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoserp_geo::Seed;

    fn geocoder() -> (UsGeography, ReverseGeocoder) {
        let geo = UsGeography::generate(Seed::new(2015));
        let rg = ReverseGeocoder::new(&geo);
        (geo, rg)
    }

    #[test]
    fn geoip_exact_and_subnet_fallback() {
        let db = GeoIpDb::new();
        assert!(db.is_empty());
        let c = Coord::new(41.4, -81.7);
        db.register("192.0.2.10".parse().unwrap(), c);
        assert_eq!(db.lookup("192.0.2.10".parse().unwrap()), Some(c));
        // Same /24, unregistered host: subnet fallback.
        assert_eq!(db.lookup("192.0.2.99".parse().unwrap()), Some(c));
        // Different /24: unknown.
        assert_eq!(db.lookup("192.0.3.10".parse().unwrap()), None);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn subnet_keeps_first_registration() {
        let db = GeoIpDb::new();
        let a = Coord::new(41.0, -81.0);
        let b = Coord::new(30.0, -90.0);
        db.register("10.0.0.1".parse().unwrap(), a);
        db.register("10.0.0.2".parse().unwrap(), b);
        // Exact entries win for registered IPs…
        assert_eq!(db.lookup("10.0.0.2".parse().unwrap()), Some(b));
        // …while the subnet anchor stays at the first registration.
        assert_eq!(db.lookup("10.0.0.77".parse().unwrap()), Some(a));
    }

    #[test]
    fn resolve_cuyahoga_metro_is_cleveland() {
        let (_, rg) = geocoder();
        let r = rg.resolve(geoserp_geo::us::CUYAHOGA_CENTROID);
        assert_eq!(r.label, "Cleveland, OH");
        assert_eq!(r.county.as_deref(), Some("Cuyahoga"));
        assert_eq!(r.state_abbrev, "OH");
    }

    #[test]
    fn resolve_ohio_county() {
        let (geo, rg) = geocoder();
        // Pick a county far from Cuyahoga.
        let adams = geo.ohio_county("Adams").unwrap();
        let r = rg.resolve(adams.coord);
        assert_eq!(r.state_abbrev, "OH");
        assert!(r.county.is_some());
        assert!(r.label.ends_with("County, OH"), "{}", r.label);
    }

    #[test]
    fn resolve_distant_state() {
        let (geo, rg) = geocoder();
        let az = geo.state("AZ").unwrap();
        let r = rg.resolve(az.coord);
        assert_eq!(r.state_abbrev, "AZ");
        assert_eq!(r.county, None);
        assert_eq!(r.label, "Arizona, USA");
    }

    #[test]
    fn vantage_points_resolve_to_their_own_regions() {
        let (geo, rg) = geocoder();
        for st in &geo.states {
            if st.region.name == "Ohio" {
                continue; // Ohio's centroid may fall inside a synthetic county.
            }
            let r = rg.resolve(st.coord);
            assert_eq!(
                &r.state_abbrev,
                st.region.state_abbrev.as_ref().unwrap(),
                "{}",
                st.region.name
            );
        }
    }
}
