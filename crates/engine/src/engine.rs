//! The core engine: retrieval → intent → verticals → geo-aware organic
//! ranking → SERP composition.

use crate::config::{ComponentSet, EngineConfig, LocationPrecedence, MapsPolicy};
use crate::geoip::{GeoIpDb, ReverseGeocoder};
use crate::history::SessionHistory;
use crate::index::SearchIndex;
use crate::intent::{classify, QueryIntent};
use crate::noise::NoiseModel;
use crate::retriever::{LocalRetriever, Retriever};
use crate::verticals::{
    select_ads, select_answer_box, select_knowledge_panel, select_local_pack, select_maps,
    select_news, ComponentSelection, PlaceIndex, ADS_FLICKER,
};
use geoserp_corpus::{tokenize, GeoScope, Page, PageId, WebCorpus};
use geoserp_geo::{Coord, Seed, UsGeography};
use geoserp_obs::{Counter, ObsHub};
use geoserp_serp::{Card, CardType, SerpPage};
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Everything the engine knows about one incoming query.
#[derive(Debug, Clone)]
pub struct SearchContext {
    /// The query.
    pub query: String,
    /// GPS fix from the client's Geolocation API, if any.
    pub gps: Option<Coord>,
    /// Client source address (IP-geolocation fallback).
    pub src: Ipv4Addr,
    /// Which datacenter is serving (0-based).
    pub datacenter: u32,
    /// Network-unique request sequence number (noise seed).
    pub seq: u64,
    /// Virtual time of the request, milliseconds.
    pub at_ms: u64,
    /// Session cookie value, if the client sent one.
    pub session: Option<String>,
    /// 0-based result page (the `start` parameter divided by the page
    /// size). The paper only scrapes page 0; deeper pages carry no
    /// meta-cards, like real mobile search.
    pub page: u32,
}

impl SearchContext {
    /// Simulation day of this request.
    pub fn day(&self) -> u32 {
        (self.at_ms / 86_400_000) as u32
    }
}

/// The simulated search engine. Thread-safe; share via [`Arc`].
pub struct SearchEngine {
    corpus: Arc<WebCorpus>,
    config: EngineConfig,
    retriever: Box<dyn Retriever>,
    place_index: PlaceIndex,
    geocoder: ReverseGeocoder,
    geoip: GeoIpDb,
    noise: NoiseModel,
    history: SessionHistory,
    /// Optional result cache: (query, coarse lat/lon, day) → (page, expiry).
    serp_cache: parking_lot::Mutex<SerpCache>,
    obs: Arc<ObsHub>,
    metrics: EngineMetrics,
}

/// (query, coarse lat, coarse lon, day) → (page, expiry-millis).
type SerpCache = std::collections::HashMap<(String, i32, i32, u32), (SerpPage, u64)>;

/// Pre-resolved metric handles for the query-serving hot path.
struct EngineMetrics {
    queries: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    index_lookups: Counter,
}

impl EngineMetrics {
    fn resolve(hub: &ObsHub) -> Self {
        let m = hub.metrics();
        EngineMetrics {
            queries: m.counter("engine.queries"),
            cache_hits: m.counter("engine.cache_hits"),
            cache_misses: m.counter("engine.cache_misses"),
            index_lookups: m.counter("engine.index_lookups"),
        }
    }
}

/// Configures and constructs a [`SearchEngine`].
///
/// Obtained from [`SearchEngine::builder`]. Settings not overridden fall
/// back to [`EngineConfig::paper_defaults`] and a fresh enabled
/// [`ObsHub`]. [`SearchEngineBuilder::build`] validates the configuration
/// and is the only way to construct an engine.
#[must_use = "call .build() to construct the engine"]
pub struct SearchEngineBuilder<'g> {
    corpus: Arc<WebCorpus>,
    geo: &'g UsGeography,
    seed: Seed,
    config: EngineConfig,
    obs: Option<Arc<ObsHub>>,
    retriever: Option<Box<dyn Retriever>>,
}

impl<'g> SearchEngineBuilder<'g> {
    /// Use this engine configuration instead of the paper defaults.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Report metrics and spans into a caller-supplied observability hub.
    pub fn obs(mut self, obs: Arc<ObsHub>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Use a caller-supplied candidate source instead of building a local
    /// whole-corpus [`SearchIndex`] — this is how the sharded router
    /// reuses the entire ranking pipeline over remote retrieval.
    pub fn retriever(mut self, retriever: Box<dyn Retriever>) -> Self {
        self.retriever = Some(retriever);
        self
    }

    /// Validate the configuration and build the engine.
    ///
    /// # Errors
    /// Returns [`ConfigError`] if the configuration violates an invariant
    /// (see [`EngineConfig::validate`]).
    pub fn build(self) -> Result<SearchEngine, crate::config::ConfigError> {
        let SearchEngineBuilder {
            corpus,
            geo,
            seed,
            config,
            obs,
            retriever,
        } = self;
        config.validate()?;
        let obs = obs.unwrap_or_else(|| Arc::new(ObsHub::new()));
        let retriever = retriever.unwrap_or_else(|| {
            Box::new(LocalRetriever(SearchIndex::build(
                &corpus,
                config.index_backend,
            )))
        });
        let place_index = PlaceIndex::build(&corpus);
        let geocoder = ReverseGeocoder::new(geo);
        let noise = NoiseModel::new(seed.derive("engine"), &config);
        let metrics = EngineMetrics::resolve(&obs);
        Ok(SearchEngine {
            corpus,
            config,
            retriever,
            place_index,
            geocoder,
            geoip: GeoIpDb::new(),
            noise,
            history: SessionHistory::new(),
            serp_cache: parking_lot::Mutex::new(std::collections::HashMap::new()),
            obs,
            metrics,
        })
    }
}

impl SearchEngine {
    /// Start building an engine over a corpus and geography.
    ///
    /// Defaults to [`EngineConfig::paper_defaults`] and a fresh enabled
    /// [`ObsHub`]; override with [`SearchEngineBuilder::config`] and
    /// [`SearchEngineBuilder::obs`].
    pub fn builder(
        corpus: Arc<WebCorpus>,
        geo: &UsGeography,
        seed: Seed,
    ) -> SearchEngineBuilder<'_> {
        SearchEngineBuilder {
            corpus,
            geo,
            seed,
            config: EngineConfig::paper_defaults(),
            obs: None,
            retriever: None,
        }
    }

    /// The observability hub this engine reports into.
    pub fn obs(&self) -> &Arc<ObsHub> {
        &self.obs
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The IP-geolocation database (experiments register machines here).
    pub fn geoip(&self) -> &GeoIpDb {
        &self.geoip
    }

    /// The corpus this engine serves.
    pub fn corpus(&self) -> &WebCorpus {
        &self.corpus
    }

    /// "Did you mean": spell-correct a query against the index vocabulary
    /// (None when the query needs no correction or none is plausible).
    pub fn suggest(&self, query: &str) -> Option<String> {
        self.retriever.suggest(query)
    }

    /// Resolve the location this request is personalized for.
    fn personalization_location(&self, ctx: &SearchContext) -> Option<Coord> {
        match self.config.location_precedence {
            LocationPrecedence::GpsFirst => ctx.gps.or_else(|| self.geoip.lookup(ctx.src)),
            LocationPrecedence::IpFirst => self.geoip.lookup(ctx.src).or(ctx.gps),
        }
    }

    /// Geographic multiplier for one page given the searcher's resolved
    /// place.
    fn geo_multiplier(
        &self,
        page: &Page,
        user: Option<(Coord, &str, Option<&str>)>, // (coord, state, county)
        intent: &QueryIntent,
        ab_geo: f64,
    ) -> f64 {
        let cfg = &self.config;
        let Some((coord, state, county)) = user else {
            // Location-less request: geo-scoped pages get no boost and a
            // mild penalty (they are relevant *somewhere else*).
            return if page.geo.is_geographic() { 0.7 } else { 1.0 };
        };
        match &page.geo {
            GeoScope::Global => 1.0,
            GeoScope::Local(place_coord) => {
                let w = if intent.local {
                    cfg.local_weight_local_intent
                } else {
                    cfg.local_weight_other
                };
                let d = coord.haversine_km(*place_coord);
                1.0 + w * ab_geo * cfg.decay_kernel.eval(d, cfg.local_sigma_km)
            }
            GeoScope::State(s) => {
                if s == state {
                    cfg.state_weight * ab_geo
                } else {
                    0.5
                }
            }
            GeoScope::County(s, c) => {
                if s == state && Some(c.as_str()) == county {
                    cfg.county_weight * ab_geo
                } else if s == state {
                    0.8
                } else {
                    0.4
                }
            }
        }
    }

    /// Serve one query: the full pipeline (behind the optional result cache).
    pub fn search(&self, ctx: &SearchContext) -> SerpPage {
        self.metrics.queries.inc();
        let Some(ttl) = self.config.serp_cache_ttl_ms else {
            return self.search_uncached(ctx);
        };
        // Cache key: query + location quantized to ~1 km + day + page. Two
        // simultaneous identical requests share an entry — which is exactly
        // why a deployment that cached like this could not have produced
        // the paper's treatment/control noise.
        let loc = self.personalization_location(ctx);
        let key = (
            format!("{}#{}", ctx.query, ctx.page),
            loc.map(|c| (c.lat_deg * 100.0).round() as i32)
                .unwrap_or(i32::MIN),
            loc.map(|c| (c.lon_deg * 100.0).round() as i32)
                .unwrap_or(i32::MIN),
            ctx.day(),
        );
        {
            let cache = self.serp_cache.lock();
            if let Some((page, expiry)) = cache.get(&key) {
                if ctx.at_ms < *expiry {
                    self.metrics.cache_hits.inc();
                    return page.clone();
                }
            }
        }
        self.metrics.cache_misses.inc();
        let page = self.search_uncached(ctx);
        self.serp_cache
            .lock()
            .insert(key, (page.clone(), ctx.at_ms + ttl));
        page
    }

    /// The full pipeline, bypassing the result cache.
    fn search_uncached(&self, ctx: &SearchContext) -> SerpPage {
        let cfg = &self.config;
        let location = self.personalization_location(ctx);
        let resolved = location.map(|c| self.geocoder.resolve(c));
        let user_state = resolved.as_ref().map(|r| r.state_abbrev.as_str());
        let user_county = resolved.as_ref().and_then(|r| r.county.as_deref());

        // Noise draws for this request.
        let bucket = self.noise.ab_bucket(ctx.seq);
        let ab_geo = self.noise.ab_geo_multiplier(bucket);
        let ab_fresh = self.noise.ab_freshness_multiplier(bucket);
        let replica = self.noise.replica(ctx.datacenter, ctx.seq);

        // Retrieval, filtered by replica staleness. Head pages (authority ≥
        // 0.9) are immune: popular documents are present in every replica,
        // so staleness holes never delete a navigational target or an
        // encyclopedia page — only the tail churns, as in real engines.
        self.metrics.index_lookups.inc();
        let retrieve_started = std::time::Instant::now();
        let mut candidates =
            self.retriever
                .retrieve(&ctx.query, cfg.organic_count * 3, cfg.partial_match_score);
        geoserp_obs::trace::record_stage(
            geoserp_obs::trace::Stage::Retrieve,
            Some(retrieve_started.elapsed().as_micros() as u64),
        );
        candidates.retain(|c| {
            self.corpus.page(c.page).authority >= 0.9
                || !self.noise.page_missing(ctx.datacenter, replica, c.page)
        });

        let intent = classify(&self.corpus, &ctx.query, &candidates);

        // Verticals.
        let cand_pairs: Vec<(PageId, f64)> =
            candidates.iter().map(|c| (c.page, c.lexical)).collect();
        let news = if intent.newsy {
            select_news(
                &self.corpus,
                &cand_pairs,
                cfg,
                ctx.day(),
                user_state,
                ab_fresh,
            )
        } else {
            None
        };
        let maps_hidden = self.noise.maps_suppressed(ctx.seq);
        let maps = match cfg.maps_policy {
            _ if maps_hidden => None,
            MapsPolicy::Never => None,
            MapsPolicy::Always => location.and_then(|user| {
                select_maps(
                    &self.corpus,
                    &self.place_index,
                    cfg,
                    &ctx.query,
                    user,
                    self.noise.maps_threshold_multiplier(ctx.seq),
                )
            }),
            MapsPolicy::LocalIntentNonNavigational => {
                if intent.local && intent.navigational.is_none() {
                    location.and_then(|user| {
                        select_maps(
                            &self.corpus,
                            &self.place_index,
                            cfg,
                            &ctx.query,
                            user,
                            self.noise.maps_threshold_multiplier(ctx.seq),
                        )
                    })
                } else {
                    None
                }
            }
        };

        // Rich components, selected before organic scoring so their URLs
        // join the consumed set. Everything here is gated on the Rich
        // component set: a Paper engine takes none of these branches (and
        // draws none of their noise), so its pages stay byte-identical to
        // the pre-knob engine.
        let rich = cfg.component_set == ComponentSet::Rich;
        let answer: Option<ComponentSelection> = if rich {
            intent
                .navigational
                .map(|nav| select_answer_box(&self.corpus, nav))
        } else {
            None
        };
        let local_pack: Option<ComponentSelection> = if rich && intent.local {
            location.and_then(|user| {
                let taken: Vec<&str> = maps
                    .iter()
                    .flat_map(|m| m.urls.iter().map(String::as_str))
                    .collect();
                select_local_pack(&self.corpus, &self.place_index, &ctx.query, user, &taken)
            })
        } else {
            None
        };
        let panel: Option<ComponentSelection> = if rich {
            select_knowledge_panel(&self.corpus, &ctx.query, &cand_pairs)
        } else {
            None
        };
        let ads: Vec<ComponentSelection> =
            if rich && !self.noise.ads_suppressed(ctx.seq, ADS_FLICKER) {
                let taken: Vec<&str> = maps
                    .iter()
                    .flat_map(|m| m.urls.iter().map(String::as_str))
                    .chain(
                        local_pack
                            .iter()
                            .flat_map(|p| p.urls.iter().map(String::as_str)),
                    )
                    .collect();
                select_ads(
                    &self.corpus,
                    &self.place_index,
                    &ctx.query,
                    intent.local,
                    &taken,
                )
            } else {
                Vec::new()
            };

        // URLs consumed by meta-cards are excluded from organics.
        let mut consumed: HashSet<&str> = HashSet::new();
        if let Some(m) = &maps {
            consumed.extend(m.urls.iter().map(String::as_str));
        }
        if let Some(n) = &news {
            consumed.extend(n.urls.iter().map(String::as_str));
        }
        for sel in answer
            .iter()
            .chain(local_pack.iter())
            .chain(panel.iter())
            .chain(ads.iter())
        {
            consumed.extend(sel.urls.iter().map(String::as_str));
        }

        // History boost terms (cookie-borne, 10-minute window).
        let history_tokens: Vec<String> = match &ctx.session {
            Some(sid) => {
                let terms =
                    self.history
                        .recent_terms(sid, ctx.at_ms, cfg.history_window_minutes * 60_000);
                terms.iter().flat_map(|t| tokenize(t)).collect()
            }
            None => Vec::new(),
        };

        // Organic scoring.
        let user_tuple = location.map(|c| (c, user_state.unwrap_or(""), user_county));
        let mut scored: Vec<(f64, &Page)> = Vec::with_capacity(candidates.len());
        for cand in &candidates {
            let page = self.corpus.page(cand.page);
            if consumed.contains(page.url.as_str()) {
                continue;
            }
            let nav_boost = if intent.navigational == Some(page.id) {
                4.0
            } else {
                1.0
            };
            let history_mult = if !history_tokens.is_empty()
                && page.tokens.iter().any(|t| history_tokens.contains(t))
            {
                cfg.history_boost
            } else {
                1.0
            };
            let score = cand.lexical
                * (0.25 + 0.75 * page.authority)
                * self.geo_multiplier(page, user_tuple, &intent, ab_geo)
                * nav_boost
                * history_mult
                * self.noise.page_salt(page.id)
                * self.noise.tiebreak(ctx.seq, page.id);
            scored.push((score, page));
        }
        scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.id.cmp(&b.1.id)));

        // Per-domain cap, then window the requested page out of the capped
        // ranking (pages beyond 0 skip the first page·organic_count hits).
        let skip = ctx.page as usize * cfg.organic_count;
        let mut domain_counts: std::collections::HashMap<&str, usize> =
            std::collections::HashMap::new();
        let mut organic: Vec<&Page> = Vec::with_capacity(cfg.organic_count);
        let mut kept = 0usize;
        for (_, page) in &scored {
            let n = domain_counts.entry(page.domain.as_str()).or_insert(0);
            if *n >= cfg.per_domain_cap {
                continue;
            }
            *n += 1;
            kept += 1;
            if kept <= skip {
                continue;
            }
            organic.push(page);
            if organic.len() == cfg.organic_count {
                break;
            }
        }

        // Record the search in session history *after* ranking (this query
        // influences the next one, not itself).
        if let Some(sid) = &ctx.session {
            self.history.record(sid, &ctx.query, ctx.at_ms);
        }

        // Compose: organic cards with the Maps card after the first organic
        // result and the News card after the third (mobile layout).
        let reported = resolved
            .map(|r| r.label)
            .unwrap_or_else(|| "United States".to_string());
        let mut page = SerpPage::new(
            &ctx.query,
            location.map(|c| c.to_gps_string()).as_deref(),
            format!("dc{}", ctx.datacenter),
            reported,
        );
        let (maps, news, answer, local_pack, panel, ads) = if ctx.page == 0 {
            (maps, news, answer, local_pack, panel, ads)
        } else {
            // Deeper pages carry no meta-cards.
            (None, None, None, None, None, Vec::new())
        };
        // The answer box is a header-class card: pinned above everything,
        // rank 0 in the extracted list.
        if let Some(a) = &answer {
            page.push_card(a.card.clone());
        }
        let maps_after = 1.min(organic.len());
        let pack_after = 2.min(organic.len());
        let news_after = 3.min(organic.len());
        for (i, p) in organic.iter().enumerate() {
            if i == maps_after {
                if let Some(m) = &maps {
                    page.push_card(m.card.clone());
                }
            }
            if i == pack_after {
                if let Some(lp) = &local_pack {
                    page.push_card(lp.card.clone());
                }
            }
            if i == news_after {
                if let Some(n) = &news {
                    page.push_card(n.card.clone());
                }
            }
            for ad in &ads {
                if ad.card.slot == Some(i as u32) {
                    page.push_card(ad.card.clone());
                }
            }
            page.push_card(Card::single(CardType::Organic, &p.url, &p.title));
        }
        // Degenerate layouts (very short organic lists): append pending cards.
        if organic.len() <= maps_after {
            if let Some(m) = &maps {
                page.push_card(m.card.clone());
            }
        }
        if organic.len() <= pack_after {
            if let Some(lp) = &local_pack {
                page.push_card(lp.card.clone());
            }
        }
        if organic.len() <= news_after {
            if let Some(n) = &news {
                page.push_card(n.card.clone());
            }
        }
        for ad in &ads {
            if ad.card.slot.is_some_and(|s| s as usize >= organic.len()) {
                page.push_card(ad.card.clone());
            }
        }
        // The knowledge panel is a footer-class card: always last.
        if let Some(k) = &panel {
            page.push_card(k.card.clone());
        }
        page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> (UsGeography, SearchEngine) {
        let geo = UsGeography::generate(Seed::new(2015));
        let corpus = Arc::new(WebCorpus::generate(&geo, Seed::new(2015)));
        let engine = SearchEngine::builder(corpus, &geo, Seed::new(2015))
            .build()
            .unwrap();
        (geo, engine)
    }

    fn ctx(query: &str, gps: Option<Coord>, seq: u64) -> SearchContext {
        SearchContext {
            query: query.to_string(),
            gps,
            src: "10.9.0.1".parse().unwrap(),
            datacenter: 0,
            seq,
            at_ms: 20 * 86_400_000, // day 20: plenty of news published
            session: None,
            page: 0,
        }
    }

    #[test]
    fn result_count_is_in_paper_range() {
        let (geo, engine) = engine();
        let metro = geo.cuyahoga_districts[0].coord;
        for q in [
            "Hospital",
            "Starbucks",
            "Gay Marriage",
            "Joe Biden",
            "School",
        ] {
            let page = engine.search(&ctx(q, Some(metro), 1));
            let n = page.result_count();
            assert!(
                (10..=22).contains(&n),
                "{q}: {n} results (cards: {})",
                page.cards.len()
            );
        }
    }

    #[test]
    fn identical_requests_same_seq_are_identical() {
        let (geo, engine) = engine();
        let metro = geo.cuyahoga_districts[0].coord;
        let a = engine.search(&ctx("Hospital", Some(metro), 5));
        let b = engine.search(&ctx("Hospital", Some(metro), 5));
        assert_eq!(a, b, "same seq → same page (replayability)");
    }

    #[test]
    fn local_query_changes_across_distant_locations() {
        let (geo, engine) = engine();
        let cleveland = geo.cuyahoga_districts[0].coord;
        let arizona = geo.state("AZ").unwrap().coord;
        let a = engine.search(&ctx("Hospital", Some(cleveland), 7));
        let b = engine.search(&ctx("Hospital", Some(arizona), 7));
        assert_ne!(a.urls(), b.urls(), "distant locations differ");
    }

    #[test]
    fn controversial_query_is_stable_across_locations_with_noise_off() {
        let geo = UsGeography::generate(Seed::new(2015));
        let corpus = Arc::new(WebCorpus::generate(&geo, Seed::new(2015)));
        let engine = SearchEngine::builder(corpus, &geo, Seed::new(2015))
            .config(EngineConfig::noiseless())
            .build()
            .unwrap();
        let cleveland = geo.cuyahoga_districts[0].coord;
        let nearby = geo.cuyahoga_districts[5].coord;
        let a = engine.search(&ctx("Offshore Drilling", Some(cleveland), 7));
        let b = engine.search(&ctx("Offshore Drilling", Some(nearby), 8));
        assert_eq!(a.urls(), b.urls(), "same county, controversial query");
    }

    #[test]
    fn brand_query_has_no_maps_card_generic_does() {
        let (geo, engine) = engine();
        let metro = geo.cuyahoga_districts[0].coord;
        // Use noiseless flicker by trying several seqs: the brand must never
        // carry Maps; the generic must usually carry it.
        let mut generic_maps = 0;
        for seq in 0..10 {
            let brand = engine.search(&ctx("Starbucks", Some(metro), 100 + seq));
            assert!(
                !brand.has_card(geoserp_serp::CardType::Maps),
                "brand SERP must not embed Maps (seq {seq})"
            );
            let generic = engine.search(&ctx("Hospital", Some(metro), 200 + seq));
            generic_maps += usize::from(generic.has_card(geoserp_serp::CardType::Maps));
        }
        assert!(
            generic_maps >= 6,
            "generic query shows Maps: {generic_maps}/10"
        );
    }

    #[test]
    fn controversial_query_has_news_card() {
        let (geo, engine) = engine();
        let metro = geo.cuyahoga_districts[0].coord;
        let page = engine.search(&ctx("Gun Control", Some(metro), 3));
        assert!(page.has_card(geoserp_serp::CardType::News));
        assert!(!page.has_card(geoserp_serp::CardType::Maps));
    }

    fn rich_engine() -> (UsGeography, Arc<WebCorpus>, SearchEngine) {
        let geo = UsGeography::generate(Seed::new(2015));
        let corpus = Arc::new(WebCorpus::generate(&geo, Seed::new(2015)));
        let engine = SearchEngine::builder(Arc::clone(&corpus), &geo, Seed::new(2015))
            .config(EngineConfig::with_component_set(ComponentSet::Rich))
            .build()
            .unwrap();
        (geo, corpus, engine)
    }

    #[test]
    fn rich_pages_carry_the_new_components() {
        use geoserp_serp::CardType;
        let (geo, corpus, engine) = rich_engine();
        let metro = geo.cuyahoga_districts[0].coord;

        // Local query: local pack (distance-driven) and, most requests, ads.
        let mut packs = 0;
        let mut ads = 0;
        for seq in 0..10 {
            let page = engine.search(&ctx("Hospital", Some(metro), 500 + seq));
            packs += usize::from(page.has_card(CardType::LocalPack));
            ads += usize::from(page.has_card(CardType::Ads));
        }
        assert!(packs >= 6, "local pack on local queries: {packs}/10");
        assert!(ads >= 4, "ads on local queries: {ads}/10");

        // Navigational query: answer box pinned to rank 0.
        let brand = engine.search(&ctx("Starbucks", Some(metro), 42));
        assert!(brand.has_card(CardType::AnswerBox));
        let first = &brand.extract_results()[0];
        assert_eq!(first.rank, 0);
        assert_eq!(first.rtype, geoserp_serp::ResultType::AnswerBox);

        // Entity query: knowledge panel, rendered as the last card.
        let name = corpus.roster.all()[0].name.clone();
        let entity = engine.search(&ctx(&name, Some(metro), 43));
        assert!(entity.has_card(CardType::KnowledgePanel), "query {name:?}");
        assert_eq!(
            entity.cards.last().unwrap().ctype,
            CardType::KnowledgePanel,
            "knowledge panel is footer-positioned"
        );
    }

    #[test]
    fn rich_pages_roundtrip_through_the_strict_parser() {
        let (geo, corpus, engine) = rich_engine();
        let metro = geo.cuyahoga_districts[0].coord;
        let name = corpus.roster.all()[0].name.clone();
        for (i, q) in ["Hospital", "Starbucks", "Gun Control", name.as_str()]
            .iter()
            .enumerate()
        {
            let page = engine.search(&ctx(q, Some(metro), 700 + i as u64));
            let parsed = geoserp_serp::parse(&page.render()).expect("rich page parses strictly");
            assert_eq!(parsed, page, "{q}: render⇄parse roundtrip");
        }
    }

    #[test]
    fn rich_ads_carry_their_interleave_slots() {
        use geoserp_serp::CardType;
        let (geo, _, engine) = rich_engine();
        let metro = geo.cuyahoga_districts[0].coord;
        let mut saw_ad = false;
        for seq in 0..20 {
            let page = engine.search(&ctx("Coffee", Some(metro), 900 + seq));
            for card in page.cards.iter().filter(|c| c.ctype == CardType::Ads) {
                saw_ad = true;
                let slot = card.slot.expect("every ads card carries a slot");
                assert!(crate::verticals::AD_SLOTS.contains(&slot), "slot {slot}");
            }
        }
        assert!(saw_ad, "no ad rendered in 20 requests");
    }

    #[test]
    fn paper_engine_never_renders_rich_components() {
        use geoserp_serp::CardType;
        let (geo, engine) = engine();
        let metro = geo.cuyahoga_districts[0].coord;
        for q in ["Hospital", "Starbucks", "Gun Control", "Joe Biden"] {
            for seq in 0..5 {
                let page = engine.search(&ctx(q, Some(metro), 1000 + seq));
                for t in [
                    CardType::LocalPack,
                    CardType::AnswerBox,
                    CardType::KnowledgePanel,
                    CardType::Ads,
                    CardType::Unknown,
                ] {
                    assert!(!page.has_card(t), "{q}: paper page carries {t:?}");
                }
            }
        }
    }

    #[test]
    fn footer_reports_the_spoofed_location() {
        let (geo, engine) = engine();
        let metro = geo.cuyahoga_districts[0].coord;
        let page = engine.search(&ctx("Bank", Some(metro), 3));
        assert_eq!(page.reported_location, "Cleveland, OH");
        let az = geo.state("AZ").unwrap().coord;
        let page = engine.search(&ctx("Bank", Some(az), 4));
        assert_eq!(page.reported_location, "Arizona, USA");
    }

    #[test]
    fn gps_beats_ip_geolocation() {
        let (geo, engine) = engine();
        let az = geo.state("AZ").unwrap().coord;
        // Register the client's IP in Ohio…
        engine
            .geoip()
            .register("10.9.0.1".parse().unwrap(), geo.cuyahoga_districts[0].coord);
        // …but present Arizona GPS: Arizona wins.
        let page = engine.search(&ctx("Bank", Some(az), 9));
        assert_eq!(page.reported_location, "Arizona, USA");
        // Without GPS, IP geolocation kicks in.
        let page = engine.search(&ctx("Bank", None, 10));
        assert_eq!(page.reported_location, "Cleveland, OH");
    }

    #[test]
    fn no_location_at_all_is_unpersonalized() {
        let (_, engine) = engine();
        let mut c = ctx("Bank", None, 11);
        c.src = "203.0.113.5".parse().unwrap(); // unknown to GeoIP
        let page = engine.search(&c);
        assert_eq!(page.reported_location, "United States");
        assert_eq!(page.gps, None);
        assert!(!page.has_card(geoserp_serp::CardType::Maps));
    }

    #[test]
    fn navigational_target_ranks_first() {
        let (geo, engine) = engine();
        let metro = geo.cuyahoga_districts[0].coord;
        for seq in 0..5 {
            let page = engine.search(&ctx("Starbucks", Some(metro), 300 + seq));
            assert_eq!(
                page.urls()[0],
                "https://www.starbucks.example.com/",
                "brand home first (seq {seq})"
            );
        }
    }

    #[test]
    fn per_domain_cap_is_enforced() {
        let (geo, engine) = engine();
        let metro = geo.cuyahoga_districts[0].coord;
        let page = engine.search(&ctx("Starbucks", Some(metro), 12));
        let organic: Vec<_> = page
            .extract_results()
            .into_iter()
            .filter(|r| r.rtype == geoserp_serp::ResultType::Organic)
            .collect();
        let mut counts: std::collections::HashMap<String, usize> = Default::default();
        for r in &organic {
            let domain = r.url.split('/').nth(2).unwrap_or("").to_string();
            *counts.entry(domain).or_default() += 1;
        }
        for (d, n) in counts {
            assert!(n <= 2, "{d} appears {n} times organically");
        }
    }

    #[test]
    fn history_boost_requires_session_and_window() {
        let (geo, engine) = engine();
        let metro = geo.cuyahoga_districts[0].coord;
        let mut c1 = ctx("Coffee", Some(metro), 400);
        c1.session = Some("sess-1".into());
        engine.search(&c1);
        // 5 minutes later (inside the window) the engine has state for the
        // session; 11+ minutes later it does not.
        let mut c2 = ctx("Starbucks", Some(metro), 401);
        c2.session = Some("sess-1".into());
        c2.at_ms = c1.at_ms + 5 * 60_000;
        let _within = engine.search(&c2);
        // Behavioural check is indirect (boost may not flip top results);
        // the load-bearing assertion is the history store state:
        assert_eq!(engine_history_len(&engine, "sess-1"), 2);
    }

    fn engine_history_len(engine: &SearchEngine, sid: &str) -> usize {
        engine.history.recent_terms(sid, u64::MAX, u64::MAX).len()
    }

    #[test]
    fn pagination_windows_the_ranking() {
        let (geo, engine) = engine();
        let metro = geo.cuyahoga_districts[0].coord;
        let mut c0 = ctx("Hospital", Some(metro), 900);
        c0.page = 0;
        let mut c1 = ctx("Hospital", Some(metro), 900);
        c1.page = 1;
        let p0 = engine.search(&c0);
        let p1 = engine.search(&c1);
        // Page 2 exists, is disjoint from page 1's organics, and carries no
        // meta-cards.
        assert!(!p1.urls().is_empty(), "page 2 should have results");
        assert!(!p1.has_card(geoserp_serp::CardType::Maps));
        assert!(!p1.has_card(geoserp_serp::CardType::News));
        let organics0: std::collections::HashSet<String> = p0
            .extract_results()
            .into_iter()
            .filter(|r| r.rtype == geoserp_serp::ResultType::Organic)
            .map(|r| r.url)
            .collect();
        for url in p1.urls() {
            assert!(!organics0.contains(&url), "{url} repeated on page 2");
        }
    }

    #[test]
    fn deep_pages_eventually_run_dry() {
        let (geo, engine) = engine();
        let metro = geo.cuyahoga_districts[0].coord;
        let mut c = ctx("Chick-fil-a", Some(metro), 901);
        c.page = 50;
        let page = engine.search(&c);
        assert_eq!(page.result_count(), 0, "page 51 of a brand query is empty");
    }

    #[test]
    fn result_cache_collapses_noise_but_not_personalization() {
        let geo = UsGeography::generate(Seed::new(2015));
        let corpus = Arc::new(WebCorpus::generate(&geo, Seed::new(2015)));
        let engine = SearchEngine::builder(corpus, &geo, Seed::new(2015))
            .config(EngineConfig::with_result_cache(10 * 60_000))
            .build()
            .unwrap();
        let metro = geo.cuyahoga_districts[0].coord;
        // Two simultaneous identical requests with *different* seqs would
        // normally draw independent noise; the cache makes them identical.
        let a = engine.search(&ctx("School", Some(metro), 10));
        let b = engine.search(&ctx("School", Some(metro), 11));
        assert_eq!(a, b, "cache must collapse treatment/control noise");
        // A distant location misses the cache and personalizes as usual.
        let far = engine.search(&ctx("School", Some(geo.state("AZ").unwrap().coord), 12));
        assert_ne!(a.urls(), far.urls());
        // Expiry: the same request after the TTL may re-draw noise (at
        // minimum, it goes through the full pipeline again).
        let mut late = ctx("School", Some(metro), 13);
        late.at_ms += 11 * 60_000;
        let _ = engine.search(&late); // must not panic, repopulates cache
    }

    #[test]
    fn day_zero_has_fewer_news_than_day_twenty() {
        let (geo, engine) = engine();
        let metro = geo.cuyahoga_districts[0].coord;
        let mut early = ctx("Gun Control", Some(metro), 500);
        early.at_ms = 0;
        let late = ctx("Gun Control", Some(metro), 500);
        let early_news = engine
            .search(&early)
            .extract_results()
            .iter()
            .filter(|r| r.rtype == geoserp_serp::ResultType::News)
            .count();
        let late_news = engine
            .search(&late)
            .extract_results()
            .iter()
            .filter(|r| r.rtype == geoserp_serp::ResultType::News)
            .count();
        assert!(late_news >= early_news, "{late_news} >= {early_news}");
    }
}
