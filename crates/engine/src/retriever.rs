//! The retrieval seam: everything above candidate retrieval (intent,
//! verticals, noise, history, scoring, SERP composition) is ranking and
//! runs in one process; everything below is retrieval and may be sharded
//! across processes. [`SearchEngine`](crate::SearchEngine) talks to a
//! [`Retriever`] and never to the index directly, so a router serving
//! merged shard responses runs the *same* ranking code as the
//! single-process engine — byte-identical pages are structural, not tested
//! into existence.

use crate::index::{Candidate, SearchIndex};

/// Source of ranked-ready candidates and spell corrections for the engine.
pub trait Retriever: Send + Sync {
    /// Retrieve candidates for a query; the contract is exactly
    /// [`crate::index::InvertedIndex::retrieve`]'s (full matches at
    /// `lexical = 1.0` id-ascending, then partials by score desc / id asc
    /// up to the deficit ceiling).
    fn retrieve(&self, query: &str, min_candidates: usize, partial_score: f64) -> Vec<Candidate>;

    /// "Did you mean" — the contract is
    /// [`crate::index::InvertedIndex::suggest`]'s.
    fn suggest(&self, query: &str) -> Option<String>;
}

/// The default retriever: an in-process [`SearchIndex`] (either backend)
/// over the whole corpus.
pub struct LocalRetriever(pub SearchIndex);

impl Retriever for LocalRetriever {
    fn retrieve(&self, query: &str, min_candidates: usize, partial_score: f64) -> Vec<Candidate> {
        self.0.retrieve(query, min_candidates, partial_score)
    }

    fn suggest(&self, query: &str) -> Option<String> {
        self.0.suggest(query)
    }
}
