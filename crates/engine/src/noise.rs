//! The engine's nondeterminism sources.
//!
//! The paper's most surprising finding is that Google Search is *noisy*:
//! "two users making the same query from the same location at the same time
//! often receive substantially different search results" (§3.1). Real-world
//! mechanisms behind such noise are well known — concurrent A/B ranking
//! experiments, load-balancing across index replicas that are not byte-
//! identical, and score ties broken arbitrarily. This module implements all
//! of them *deterministically*: every draw is a pure function of the engine
//! seed and the request sequence number, so a whole study replays exactly,
//! while any two distinct requests (even simultaneous identical ones) draw
//! independent values — precisely the property the paper's
//! treatment/control pairs measure.

use crate::config::EngineConfig;
use geoserp_corpus::PageId;
use geoserp_geo::Seed;

/// Per-request noise decisions (see module docs).
#[derive(Debug, Clone)]
pub struct NoiseModel {
    seed: Seed,
    enabled: bool,
    ab_buckets: u32,
    ab_amplitude: f64,
    replicas: u32,
    replica_skew: f64,
    tiebreak_jitter: f64,
    maps_flicker: f64,
    maps_suppress: f64,
}

impl NoiseModel {
    /// Build from the engine config.
    pub fn new(seed: Seed, cfg: &EngineConfig) -> Self {
        NoiseModel {
            seed: seed.derive("noise"),
            enabled: cfg.noise_enabled,
            ab_buckets: cfg.ab_buckets.max(1),
            ab_amplitude: cfg.ab_amplitude,
            replicas: cfg.replicas_per_datacenter.max(1),
            replica_skew: cfg.replica_skew,
            tiebreak_jitter: cfg.tiebreak_jitter,
            maps_flicker: cfg.maps_flicker,
            maps_suppress: cfg.maps_suppress,
        }
    }

    /// Whether any noise fires at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// A/B bucket this request falls into (cookie-less assignment: the load
    /// balancer hashes the connection, modelled by the request sequence).
    pub fn ab_bucket(&self, seq: u64) -> u32 {
        if !self.enabled {
            return 0;
        }
        (self.seed.derive_idx("ab-assign", seq).value() % self.ab_buckets as u64) as u32
    }

    /// Multiplier the bucket applies to the geographic ranking weight.
    /// Bucket 0 is always the control (1.0).
    pub fn ab_geo_multiplier(&self, bucket: u32) -> f64 {
        if !self.enabled || bucket == 0 {
            return 1.0;
        }
        let mut rng = self.seed.derive_idx("ab-geo", bucket as u64).rng();
        1.0 + self.ab_amplitude * (2.0 * rng.unit() - 1.0)
    }

    /// Multiplier the bucket applies to the freshness weight of news.
    /// Half the geo amplitude: freshness experiments reorder whole news
    /// cards, so equal amplitude would overstate news noise.
    pub fn ab_freshness_multiplier(&self, bucket: u32) -> f64 {
        if !self.enabled || bucket == 0 {
            return 1.0;
        }
        let mut rng = self.seed.derive_idx("ab-fresh", bucket as u64).rng();
        1.0 + 0.5 * self.ab_amplitude * (2.0 * rng.unit() - 1.0)
    }

    /// Which index replica of `datacenter` serves this request.
    pub fn replica(&self, datacenter: u32, seq: u64) -> u32 {
        if !self.enabled {
            return 0;
        }
        let v = self
            .seed
            .derive_idx("replica-dc", datacenter as u64)
            .derive_idx("pick", seq)
            .value();
        (v % self.replicas as u64) as u32
    }

    /// Whether a page is missing from a given (datacenter, replica) index
    /// copy — staleness skew. Stable for the lifetime of the engine: the
    /// same replica is always missing the same pages.
    pub fn page_missing(&self, datacenter: u32, replica: u32, page: PageId) -> bool {
        if !self.enabled || self.replica_skew <= 0.0 {
            return false;
        }
        let mut rng = self
            .seed
            .derive_idx("skew-dc", datacenter as u64)
            .derive_idx("skew-replica", replica as u64)
            .derive_idx("skew-page", page.0 as u64)
            .rng();
        rng.unit() < self.replica_skew
    }

    /// Multiplicative near-tie jitter for one (request, page) pair,
    /// in `[1 - j, 1 + j]`.
    pub fn tiebreak(&self, seq: u64, page: PageId) -> f64 {
        if !self.enabled || self.tiebreak_jitter <= 0.0 {
            return 1.0;
        }
        let mut rng = self
            .seed
            .derive_idx("tiebreak-seq", seq)
            .derive_idx("tiebreak-page", page.0 as u64)
            .rng();
        1.0 + self.tiebreak_jitter * (2.0 * rng.unit() - 1.0)
    }

    /// Per-request multiplier on the Maps-card trigger threshold,
    /// in `[1 - f, 1 + f]` — the flicker that makes one of two simultaneous
    /// pages carry a Maps card while the other does not.
    pub fn maps_threshold_multiplier(&self, seq: u64) -> f64 {
        if !self.enabled || self.maps_flicker <= 0.0 {
            return 1.0;
        }
        let mut rng = self.seed.derive_idx("maps-flicker", seq).rng();
        1.0 + self.maps_flicker * (2.0 * rng.unit() - 1.0)
    }

    /// Whether this request fell into a Maps-hiding UI experiment bucket.
    pub fn maps_suppressed(&self, seq: u64) -> bool {
        if !self.enabled || self.maps_suppress <= 0.0 {
            return false;
        }
        let mut rng = self.seed.derive_idx("maps-suppress", seq).rng();
        rng.unit() < self.maps_suppress
    }

    /// Whether this request's ad auction came back empty (rich component
    /// set only — budget pacing randomizes ad delivery per request, the ads
    /// analogue of Maps suppression). Drawn under a fresh label, so
    /// enabling it cannot perturb any pre-existing draw: the `Paper`
    /// component set never calls this and its pages stay byte-identical.
    pub fn ads_suppressed(&self, seq: u64, rate: f64) -> bool {
        if !self.enabled || rate <= 0.0 {
            return false;
        }
        let mut rng = self.seed.derive_idx("ads-suppress", seq).rng();
        rng.unit() < rate
    }

    /// Stable per-page salt in `[1, 1.12]` used to break exact score ties
    /// *deterministically across requests* (so tied tails don't reshuffle on
    /// every request; only pairs within the request-jitter band can flip).
    /// Always active — this is a ranking detail, not a noise source.
    pub fn page_salt(&self, page: PageId) -> f64 {
        let mut rng = self.seed.derive_idx("page-salt", page.0 as u64).rng();
        1.0 + 0.12 * rng.unit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(enabled: bool) -> NoiseModel {
        let cfg = if enabled {
            EngineConfig::paper_defaults()
        } else {
            EngineConfig::noiseless()
        };
        NoiseModel::new(Seed::new(99), &cfg)
    }

    #[test]
    fn disabled_model_is_neutral() {
        let m = model(false);
        assert!(!m.enabled());
        assert_eq!(m.ab_bucket(7), 0);
        assert_eq!(m.ab_geo_multiplier(3), 1.0);
        assert_eq!(m.replica(1, 9), 0);
        assert!(!m.page_missing(0, 0, PageId(5)));
        assert_eq!(m.tiebreak(1, PageId(5)), 1.0);
        assert_eq!(m.maps_threshold_multiplier(1), 1.0);
        assert!(!m.maps_suppressed(1));
        assert!(!m.ads_suppressed(1, 0.9));
    }

    #[test]
    fn buckets_spread_over_requests() {
        let m = model(true);
        let buckets: std::collections::HashSet<u32> =
            (0..200).map(|seq| m.ab_bucket(seq)).collect();
        assert!(buckets.len() > 8, "only {} buckets hit", buckets.len());
    }

    #[test]
    fn bucket_zero_is_control() {
        let m = model(true);
        assert_eq!(m.ab_geo_multiplier(0), 1.0);
        assert_eq!(m.ab_freshness_multiplier(0), 1.0);
    }

    #[test]
    fn multipliers_are_bounded_and_stable() {
        let m = model(true);
        for b in 1..16 {
            let g = m.ab_geo_multiplier(b);
            assert!((0.85..=1.15).contains(&g), "{g}");
            assert_eq!(g, m.ab_geo_multiplier(b), "stable per bucket");
        }
    }

    #[test]
    fn replica_skew_rate_is_roughly_configured() {
        let m = model(true);
        let missing = (0..20_000)
            .filter(|i| m.page_missing(0, 1, PageId(*i)))
            .count();
        // cfg.replica_skew = 0.005 → expect ~100 of 20k.
        assert!((40..220).contains(&missing), "{missing}");
    }

    #[test]
    fn skew_is_stable_but_differs_across_replicas() {
        let m = model(true);
        let a: Vec<bool> = (0..500).map(|i| m.page_missing(0, 0, PageId(i))).collect();
        let b: Vec<bool> = (0..500).map(|i| m.page_missing(0, 0, PageId(i))).collect();
        assert_eq!(a, b, "same replica, same holes");
        let c: Vec<bool> = (0..500).map(|i| m.page_missing(0, 1, PageId(i))).collect();
        assert_ne!(a, c, "different replica, different holes");
    }

    #[test]
    fn tiebreak_varies_per_request() {
        let m = model(true);
        let a = m.tiebreak(1, PageId(42));
        let b = m.tiebreak(2, PageId(42));
        assert_ne!(a, b);
        assert!((0.988..=1.012).contains(&a));
    }

    #[test]
    fn page_salt_active_even_when_noiseless() {
        let m = model(false);
        let s = m.page_salt(PageId(1));
        assert!((1.0..=1.12).contains(&s));
        assert_eq!(s, m.page_salt(PageId(1)));
        assert_ne!(s, m.page_salt(PageId(2)));
    }

    #[test]
    fn suppression_rate_is_roughly_configured() {
        let m = model(true);
        let hits = (0..10_000).filter(|&s| m.maps_suppressed(s)).count();
        // cfg.maps_suppress = 0.15 → expect ~1500.
        assert!((1_100..1_900).contains(&hits), "{hits}");
    }

    #[test]
    fn ads_suppression_rate_is_roughly_the_requested_one() {
        let m = model(true);
        let hits = (0..10_000u64).filter(|&s| m.ads_suppressed(s, 0.2)).count();
        assert!((1_500..2_500).contains(&hits), "{hits}");
        assert_eq!(
            (0..10_000u64).filter(|&s| m.ads_suppressed(s, 0.0)).count(),
            0
        );
        // Independent of the Maps-suppression draw: the two must not be
        // perfectly correlated (fresh label, fresh stream).
        let both = (0..10_000u64)
            .filter(|&s| m.ads_suppressed(s, 0.15) && m.maps_suppressed(s))
            .count();
        let ads = (0..10_000u64)
            .filter(|&s| m.ads_suppressed(s, 0.15))
            .count();
        assert_ne!(both, ads, "ads draw must not mirror the maps draw");
    }

    #[test]
    fn flicker_bounds() {
        let m = model(true);
        for seq in 0..100 {
            let f = m.maps_threshold_multiplier(seq);
            assert!((0.55..=1.45).contains(&f), "{f}");
        }
    }
}
