//! Query-intent classification.
//!
//! The engine must *infer* intent from its own index — it is never told the
//! experiment's query category. Three signals drive the SERP layout, and all
//! three are derived from the retrieved candidate set:
//!
//! * **navigational** — a very-high-authority web page whose title leads
//!   with the query tokens (a brand's official site). Navigational dominance
//!   suppresses the Maps card, reproducing the paper's "searches for
//!   specific brands typically do not yield Maps results";
//! * **local** — a large share of candidates are physical-establishment
//!   pages, so proximity should dominate ranking;
//! * **newsy** — enough fresh news articles match to justify an
//!   "In the News" card.

use crate::index::Candidate;
use geoserp_corpus::{tokenize, PageId, PageKind, WebCorpus};

/// Inferred intent signals for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryIntent {
    /// Proximity-sensitive query (many establishment candidates).
    pub local: bool,
    /// The dominant navigational target, if any.
    pub navigational: Option<PageId>,
    /// Enough news coverage for an "In the News" card.
    pub newsy: bool,
}

/// Candidate share that must be establishments for local intent.
const LOCAL_SHARE_THRESHOLD: f64 = 0.35;
/// Or an absolute count of establishment candidates.
const LOCAL_COUNT_THRESHOLD: usize = 12;
/// Authority floor for a navigational target.
const NAVIGATIONAL_AUTHORITY: f64 = 0.93;
/// Matching news articles needed for the newsy signal (the card itself also
/// applies freshness filters).
const NEWSY_COUNT_THRESHOLD: usize = 2;

/// Classify a query given its retrieved candidates.
pub fn classify(corpus: &WebCorpus, query: &str, candidates: &[Candidate]) -> QueryIntent {
    let qtokens = tokenize(query);

    let mut place_full = 0usize;
    let mut full = 0usize;
    let mut news = 0usize;
    let mut nav: Option<(PageId, f64)> = None;

    for cand in candidates {
        let page = corpus.page(cand.page);
        if cand.lexical >= 1.0 {
            full += 1;
            if page.kind == PageKind::Place {
                place_full += 1;
            }
            if page.kind == PageKind::News {
                news += 1;
            }
            if page.kind == PageKind::Web && page.authority >= NAVIGATIONAL_AUTHORITY {
                // Title must lead with the query tokens.
                let title_tokens = tokenize(&page.title);
                if title_tokens.len() >= qtokens.len()
                    && title_tokens[..qtokens.len()] == qtokens[..]
                    && nav.is_none_or(|(_, a)| page.authority > a)
                {
                    nav = Some((page.id, page.authority));
                }
            }
        }
    }

    let local = place_full >= LOCAL_COUNT_THRESHOLD
        || (full > 0 && place_full as f64 / full as f64 >= LOCAL_SHARE_THRESHOLD);

    QueryIntent {
        local,
        navigational: nav.map(|(id, _)| id),
        newsy: news >= NEWSY_COUNT_THRESHOLD,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::InvertedIndex;
    use geoserp_geo::{Seed, UsGeography};

    fn world() -> (WebCorpus, InvertedIndex) {
        let geo = UsGeography::generate(Seed::new(2015));
        let corpus = WebCorpus::generate(&geo, Seed::new(2015));
        let index = InvertedIndex::build(&corpus);
        (corpus, index)
    }

    fn intent_of(corpus: &WebCorpus, index: &InvertedIndex, q: &str) -> QueryIntent {
        let cands = index.retrieve(q, 36, 0.35);
        classify(corpus, q, &cands)
    }

    #[test]
    fn generic_local_terms_are_local_not_navigational() {
        let (c, i) = world();
        for q in ["Hospital", "Elementary School", "Coffee", "Bank"] {
            let intent = intent_of(&c, &i, q);
            assert!(intent.local, "{q} should be local");
            assert_eq!(intent.navigational, None, "{q} should not be navigational");
        }
    }

    #[test]
    fn brand_terms_are_navigational() {
        let (c, i) = world();
        for q in ["Starbucks", "KFC", "Chipotle", "Wendy's"] {
            let intent = intent_of(&c, &i, q);
            let nav = intent.navigational.expect("brand has nav target");
            let page = c.page(nav);
            assert!(
                page.title.contains("Official Site"),
                "{q} -> {}",
                page.title
            );
            assert!(intent.local, "{q} still has local candidates");
        }
    }

    #[test]
    fn controversial_terms_are_neither_local_nor_navigational() {
        let (c, i) = world();
        for q in ["Gay Marriage", "Progressive Tax", "Offshore Drilling"] {
            let intent = intent_of(&c, &i, q);
            assert!(!intent.local, "{q} must not be local");
            assert_eq!(intent.navigational, None, "{q}");
            assert!(intent.newsy, "{q} has a news pool");
        }
    }

    #[test]
    fn politicians_are_not_local() {
        let (c, i) = world();
        let name = c.roster.all()[30].name.clone();
        let intent = intent_of(&c, &i, &name);
        assert!(!intent.local, "{name}");
    }

    #[test]
    fn empty_candidates_yield_neutral_intent() {
        let (c, _) = world();
        let intent = classify(&c, "anything", &[]);
        assert_eq!(
            intent,
            QueryIntent {
                local: false,
                navigational: None,
                newsy: false
            }
        );
    }
}
