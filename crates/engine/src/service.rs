//! The network-facing search service.
//!
//! One [`SearchService`] sits behind several datacenter IPs under the DNS
//! name [`SEARCH_HOST`] — the topology that makes the paper's DNS pinning
//! (§2.2) meaningful — and applies per-IP rate limiting, the constraint that
//! forced the paper's 44-machine pool.

use crate::engine::{SearchContext, SearchEngine};
use geoserp_geo::Coord;
use geoserp_net::{
    ip, RateLimitKey, RateLimiter, Request, RequestCtx, Response, Server, SimNet, Status,
};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// DNS name of the simulated search service.
pub const SEARCH_HOST: &str = "search.example.com";

/// HTTP header carrying the browser's Geolocation-API fix.
pub const GEOLOCATION_HEADER: &str = "X-Geolocation";

/// The [`Server`] wrapper around a [`SearchEngine`].
pub struct SearchService {
    engine: Arc<SearchEngine>,
    limiter: RateLimiter,
    datacenter_of: HashMap<Ipv4Addr, u32>,
    /// Total 429s served, from the engine's observability hub.
    rate_limited: geoserp_obs::Counter,
    /// Per-datacenter 429 counters, indexed like `addrs`.
    rate_limited_by_dc: HashMap<Ipv4Addr, geoserp_obs::Counter>,
}

impl SearchService {
    /// Wrap an engine; `addrs[i]` is datacenter *i*'s address.
    pub fn new(engine: Arc<SearchEngine>, addrs: &[Ipv4Addr]) -> Self {
        let cfg = engine.config();
        assert_eq!(
            addrs.len(),
            cfg.datacenters as usize,
            "one address per configured datacenter"
        );
        let limiter = RateLimiter::new(
            RateLimitKey::PerIp,
            cfg.rate_limit_max,
            cfg.rate_limit_window_ms,
        );
        let metrics = engine.obs().metrics();
        let rate_limited = metrics.counter("engine.rate_limited");
        let rate_limited_by_dc = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, metrics.counter(&format!("engine.rate_limited.dc{i}"))))
            .collect();
        SearchService {
            engine,
            limiter,
            datacenter_of: addrs
                .iter()
                .enumerate()
                .map(|(i, &a)| (a, i as u32))
                .collect(),
            rate_limited,
            rate_limited_by_dc,
        }
    }

    /// Register the service on a simulated network under [`SEARCH_HOST`]:
    /// allocates `10.50.0.1 …` datacenter addresses, installs the service
    /// behind all of them, and returns the addresses (for DNS pinning).
    pub fn install(net: &SimNet, engine: Arc<SearchEngine>) -> Vec<Ipv4Addr> {
        let n = engine.config().datacenters;
        let addrs: Vec<Ipv4Addr> = (1..=n).map(|i| ip(&format!("10.50.0.{i}"))).collect();
        let service = Arc::new(SearchService::new(engine, &addrs));
        net.register_service(SEARCH_HOST, &addrs, service);
        addrs
    }

    fn handle_search(&self, ctx: &RequestCtx, req: &Request) -> Response {
        let Some(query) = req.query_param("q") else {
            return Response::status(Status::BadRequest);
        };
        if !self.limiter.admit(ctx.src, ctx.at) {
            self.rate_limited.inc();
            if let Some(dc) = self.rate_limited_by_dc.get(&ctx.dst) {
                dc.inc();
            }
            return Response::status(Status::TooManyRequests)
                .with_header("X-Reason", "unusual traffic from your computer network");
        }
        let gps = req.header(GEOLOCATION_HEADER).and_then(Coord::parse_gps);
        let session = req.header("Cookie").and_then(|c| {
            c.split(';')
                .map(str::trim)
                .find_map(|kv| kv.strip_prefix("sid="))
                .filter(|v| !v.is_empty())
                .map(str::to_owned)
        });
        let datacenter = *self
            .datacenter_of
            .get(&ctx.dst)
            .expect("request delivered to a registered datacenter address");
        // `start` is the offset of the first result, as in real search URLs;
        // non-numeric values are a client error.
        let page = match req.query_param("start") {
            None => 0,
            Some(v) => match v.parse::<u32>() {
                Ok(start) => start / self.engine.config().organic_count.max(1) as u32,
                Err(_) => return Response::status(Status::BadRequest),
            },
        };
        let sctx = SearchContext {
            query: query.to_string(),
            gps,
            src: ctx.src,
            datacenter,
            seq: ctx.seq,
            at_ms: ctx.at.millis(),
            session,
            page,
        };
        let page = self.engine.search(&sctx);
        let rendered = std::time::Instant::now();
        let body = page.render();
        geoserp_obs::trace::record_stage(
            geoserp_obs::trace::Stage::Render,
            Some(rendered.elapsed().as_micros() as u64),
        );
        let mut resp = Response::ok(body)
            .with_header("Content-Type", "text/x-serp")
            .with_header("X-Datacenter", format!("dc{datacenter}"));
        // "Did you mean" travels as a header; the mobile page renders it as
        // a suggestion chip, which the paper's parser ignores — so it must
        // not perturb the card markup.
        if let Some(suggestion) = self.engine.suggest(query) {
            resp = resp.with_header("X-Did-You-Mean", suggestion);
        }
        resp
    }
}

impl Server for SearchService {
    fn handle(&self, ctx: &RequestCtx, req: &Request) -> Response {
        match req.path.as_str() {
            "/" => Response::ok("<home>geoserp search</home>\n")
                .with_header("Content-Type", "text/html"),
            "/search" => self.handle_search(ctx, req),
            _ => Response::status(Status::NotFound),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use geoserp_corpus::WebCorpus;
    use geoserp_geo::{Seed, UsGeography};
    use geoserp_net::NetEventKind;

    fn install() -> (UsGeography, Arc<SimNet>, Vec<Ipv4Addr>) {
        let geo = UsGeography::generate(Seed::new(2015));
        let corpus = Arc::new(WebCorpus::generate(&geo, Seed::new(2015)));
        let net = Arc::new(SimNet::builder(Seed::new(7)).build());
        // Engine and net share one hub, as a crawl world does.
        let engine = Arc::new(
            SearchEngine::builder(corpus, &geo, Seed::new(2015))
                .config(EngineConfig::paper_defaults())
                .obs(Arc::clone(net.obs()))
                .build()
                .unwrap(),
        );
        let addrs = SearchService::install(&net, engine);
        (geo, net, addrs)
    }

    fn search_req(q: &str, gps: &str) -> Request {
        Request::get(SEARCH_HOST, "/search")
            .with_query("q", q)
            .with_header(GEOLOCATION_HEADER, gps)
            .with_header("User-Agent", "Mozilla/5.0 (iPhone; Safari 8)")
    }

    #[test]
    fn end_to_end_search_over_the_network() {
        let (geo, net, _) = install();
        let gps = geo.cuyahoga_districts[0].coord.to_gps_string();
        let (resp, _) = net
            .request(ip("10.9.1.1"), &search_req("Hospital", &gps))
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
        let page = geoserp_serp::parse(&resp.body_text()).unwrap();
        assert_eq!(page.query, "Hospital");
        assert_eq!(page.reported_location, "Cleveland, OH");
        assert!((10..=22).contains(&page.result_count()));
    }

    #[test]
    fn homepage_and_unknown_paths() {
        let (_, net, _) = install();
        let (resp, _) = net
            .request(ip("10.9.1.1"), &Request::get(SEARCH_HOST, "/"))
            .unwrap();
        assert!(resp.body_text().contains("geoserp"));
        let (resp, _) = net
            .request(ip("10.9.1.1"), &Request::get(SEARCH_HOST, "/robots.txt"))
            .unwrap();
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn missing_query_is_bad_request() {
        let (_, net, _) = install();
        let (resp, _) = net
            .request(ip("10.9.1.1"), &Request::get(SEARCH_HOST, "/search"))
            .unwrap();
        assert_eq!(resp.status, Status::BadRequest);
    }

    #[test]
    fn rate_limit_throttles_hot_client_but_not_the_pool() {
        let (geo, net, _) = install();
        let gps = geo.cuyahoga_districts[0].coord.to_gps_string();
        // One machine hammering: must eventually see 429 (limit is 30/min).
        let mut throttled = false;
        for _ in 0..40 {
            let (resp, _) = net
                .request(ip("10.9.1.1"), &search_req("Bank", &gps))
                .unwrap();
            if resp.status == Status::TooManyRequests {
                throttled = true;
                break;
            }
        }
        assert!(throttled, "hot client must be throttled");
        // A different machine in the same /24 is unaffected (per-IP limit).
        let (resp, _) = net
            .request(ip("10.9.1.2"), &search_req("Bank", &gps))
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn rate_limit_rejections_are_counted_per_datacenter() {
        let (geo, net, addrs) = install();
        let gps = geo.cuyahoga_districts[0].coord.to_gps_string();
        net.dns().pin(SEARCH_HOST, addrs[1]);
        let mut throttled = 0u64;
        for _ in 0..40 {
            let (resp, _) = net
                .request(ip("10.9.1.1"), &search_req("Bank", &gps))
                .unwrap();
            if resp.status == Status::TooManyRequests {
                throttled += 1;
            }
        }
        assert!(throttled > 0);
        let snap = net.obs().snapshot();
        assert_eq!(snap.counters.get("engine.rate_limited"), Some(&throttled));
        assert_eq!(
            snap.counters.get("engine.rate_limited.dc1"),
            Some(&throttled),
            "pinned datacenter takes every rejection"
        );
        assert_eq!(snap.counters.get("engine.rate_limited.dc0"), Some(&0));
        // Queries that were admitted show up as engine.queries.
        assert_eq!(snap.counters.get("engine.queries"), Some(&(40 - throttled)),);
    }

    #[test]
    fn datacenter_header_matches_dns_rotation_and_pinning() {
        let (geo, net, addrs) = install();
        let gps = geo.cuyahoga_districts[0].coord.to_gps_string();
        let mut seen = std::collections::HashSet::new();
        for i in 0..6 {
            let (resp, _) = net
                .request(ip(&format!("10.9.2.{}", i + 1)), &search_req("Park", &gps))
                .unwrap();
            seen.insert(resp.header("X-Datacenter").unwrap().to_string());
        }
        assert_eq!(seen.len(), 3, "rotation spreads over datacenters: {seen:?}");

        net.dns().pin(SEARCH_HOST, addrs[0]);
        for i in 0..4 {
            let (resp, _) = net
                .request(ip(&format!("10.9.3.{}", i + 1)), &search_req("Park", &gps))
                .unwrap();
            assert_eq!(resp.header("X-Datacenter"), Some("dc0"));
        }
    }

    #[test]
    fn typos_get_a_did_you_mean_header() {
        let (geo, net, _) = install();
        let gps = geo.cuyahoga_districts[0].coord.to_gps_string();
        let (resp, _) = net
            .request(ip("10.9.5.1"), &search_req("starbuks", &gps))
            .unwrap();
        assert_eq!(resp.header("X-Did-You-Mean"), Some("starbucks"));
        // …and the SERP still parses (the suggestion is out-of-band).
        assert!(geoserp_serp::parse(&resp.body_text()).is_ok());
        let (resp, _) = net
            .request(ip("10.9.5.1"), &search_req("Hospital", &gps))
            .unwrap();
        assert_eq!(resp.header("X-Did-You-Mean"), None);
    }

    #[test]
    fn start_parameter_selects_deeper_pages() {
        let (geo, net, _) = install();
        let gps = geo.cuyahoga_districts[0].coord.to_gps_string();
        let (first, _) = net
            .request(ip("10.9.4.1"), &search_req("Hospital", &gps))
            .unwrap();
        let (second, _) = net
            .request(
                ip("10.9.4.1"),
                &search_req("Hospital", &gps).with_query("start", "12"),
            )
            .unwrap();
        let p1 = geoserp_serp::parse(&first.body_text()).unwrap();
        let p2 = geoserp_serp::parse(&second.body_text()).unwrap();
        assert_ne!(p1.urls(), p2.urls());
        assert!(!p2.has_card(geoserp_serp::CardType::Maps));
        // Garbage start values are a client error.
        let (bad, _) = net
            .request(
                ip("10.9.4.1"),
                &search_req("Hospital", &gps).with_query("start", "banana"),
            )
            .unwrap();
        assert_eq!(bad.status, Status::BadRequest);
    }

    #[test]
    fn requests_are_traced() {
        let (geo, net, _) = install();
        let gps = geo.cuyahoga_districts[0].coord.to_gps_string();
        net.request(ip("10.9.1.1"), &search_req("Coffee", &gps))
            .unwrap();
        assert!(
            net.log().count_where(
                |e| matches!(&e.kind, NetEventKind::Request { host, .. } if host == SEARCH_HOST)
            ) >= 1
        );
    }
}
