#![warn(missing_docs)]
//! # geoserp-engine — the simulated, geo-personalizing search engine
//!
//! The paper measures a black box (Google Search); this crate *is* the black
//! box for the reproduction. It is a complete small search engine whose
//! observable behaviour matches the mechanisms the paper inferred:
//!
//! * **GPS-first location** — a request carrying an `X-Geolocation` header
//!   (the browser's spoofed Geolocation API fix) is personalized for that
//!   coordinate; without one the engine falls back to IP geolocation
//!   ([`GeoIpDb`]), exactly the precedence the paper's §2.2 validation
//!   experiment established (94 % identical results across 50 PlanetLab IPs
//!   with the same GPS);
//! * **geo-aware ranking** ([`SearchEngine`]) — candidates from an inverted
//!   index ([`index::InvertedIndex`]) scored by lexical match × authority ×
//!   a distance-decaying geographic boost, with intent-dependent weights
//!   ([`intent`]): local-intent queries weigh distance heavily, navigational
//!   brand queries are dominated by the brand's domain, controversial and
//!   person queries are dominated by globally scoped pages;
//! * **verticals** ([`verticals`]) — a Maps card (nearby establishments by
//!   prominence × distance; suppressed for navigationally-resolved brand
//!   queries, reproducing "searches for specific brands typically do not
//!   yield Maps results") and an "In the News" card (fresh articles, with
//!   regional coverage for the searcher's state);
//! * **a realistic noise model** ([`noise::NoiseModel`]) — per-request A/B
//!   buckets, per-datacenter/replica index skew, near-tie reordering jitter,
//!   and Maps-card threshold flicker. These make two *identical simultaneous
//!   requests* return different pages with realistic frequency — the paper's
//!   headline surprise ("Google Search returns search results that are very
//!   noisy, especially for local queries");
//! * **short-term search-history personalization** ([`history`]) — the
//!   10-minute window the paper works around by waiting 11 minutes between
//!   queries;
//! * **operational surface** ([`service::SearchService`]) — a
//!   [`geoserp_net::Server`] with per-IP rate limiting and multiple
//!   datacenter addresses behind one DNS name.
//!
//! The engine never reads demographics or party labels — the paper's §3.2
//! null result must *emerge* from the reproduction, not be assumed.

pub mod config;
pub mod engine;
pub mod geoip;
pub mod history;
pub mod index;
pub mod intent;
pub mod noise;
pub mod postings;
pub mod retriever;
pub mod service;
pub mod shard;
pub mod verticals;

pub use config::{ComponentSet, ConfigError, EngineConfig, IndexBackend};
pub use engine::{SearchContext, SearchEngine, SearchEngineBuilder};
pub use geoip::{GeoIpDb, ReverseGeocoder};
pub use index::{CompressedIndex, SearchIndex};
pub use intent::{classify, QueryIntent};
pub use noise::NoiseModel;
pub use retriever::{LocalRetriever, Retriever};
pub use service::{SearchService, GEOLOCATION_HEADER, SEARCH_HOST};
