//! Short-term search-history personalization.
//!
//! The paper's prior work established that "Google Search personalizes
//! search results based on the user's prior searches during the last 10
//! minutes"; the crawler therefore waits 11 minutes between subsequent
//! queries and clears cookies after each one (§2.2). This module implements
//! that 10-minute window so the countermeasure has something real to defeat:
//! sessions are keyed by a cookie, and pages lexically related to a
//! session's recent queries get a small boost.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Per-session recent-search store.
#[derive(Debug, Default)]
pub struct SessionHistory {
    /// session id → (term, virtual-time ms) pairs, most recent last.
    entries: Mutex<HashMap<String, Vec<(String, u64)>>>,
}

/// Cap on remembered searches per session.
const MAX_PER_SESSION: usize = 10;

impl SessionHistory {
    /// See the type-level docs: `new`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a search by `session` at virtual time `at_ms`.
    pub fn record(&self, session: &str, term: &str, at_ms: u64) {
        let mut map = self.entries.lock();
        let v = map.entry(session.to_string()).or_default();
        v.push((term.to_string(), at_ms));
        if v.len() > MAX_PER_SESSION {
            let excess = v.len() - MAX_PER_SESSION;
            v.drain(..excess);
        }
    }

    /// Terms searched by `session` within `window_ms` before `at_ms`
    /// (excluding searches at exactly `at_ms`, i.e. the current query).
    pub fn recent_terms(&self, session: &str, at_ms: u64, window_ms: u64) -> Vec<String> {
        let map = self.entries.lock();
        match map.get(session) {
            None => Vec::new(),
            Some(v) => v
                .iter()
                .filter(|(_, t)| *t < at_ms && at_ms - t <= window_ms)
                .map(|(term, _)| term.clone())
                .collect(),
        }
    }

    /// Number of tracked sessions.
    pub fn session_count(&self) -> usize {
        self.entries.lock().len()
    }

    /// Forget one session (a cookie clear ends the session's identity; the
    /// engine-side state becomes unreachable garbage — this is the GC).
    pub fn forget(&self, session: &str) {
        self.entries.lock().remove(session);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEN_MIN: u64 = 10 * 60_000;

    #[test]
    fn window_includes_recent_excludes_old() {
        let h = SessionHistory::new();
        h.record("s1", "coffee", 0);
        h.record("s1", "sushi", 5 * 60_000);
        // 11 minutes after the first query (the paper's wait): only "sushi"
        // is still in the 10-minute window.
        let at = 11 * 60_000;
        let terms = h.recent_terms("s1", at, TEN_MIN);
        assert_eq!(terms, vec!["sushi".to_string()]);
        // 11 minutes after the *second* query: nothing remains.
        let terms = h.recent_terms("s1", 16 * 60_000, TEN_MIN);
        assert!(terms.is_empty());
    }

    #[test]
    fn sessions_are_isolated() {
        let h = SessionHistory::new();
        h.record("a", "x", 100);
        assert!(h.recent_terms("b", 200, TEN_MIN).is_empty());
        assert_eq!(h.session_count(), 1);
    }

    #[test]
    fn current_instant_is_excluded() {
        let h = SessionHistory::new();
        h.record("s", "now", 500);
        assert!(h.recent_terms("s", 500, TEN_MIN).is_empty());
        assert_eq!(h.recent_terms("s", 501, TEN_MIN).len(), 1);
    }

    #[test]
    fn capacity_is_bounded() {
        let h = SessionHistory::new();
        for i in 0..50 {
            h.record("s", &format!("q{i}"), i);
        }
        let terms = h.recent_terms("s", 100, TEN_MIN);
        assert_eq!(terms.len(), MAX_PER_SESSION);
        assert_eq!(terms.last().unwrap(), "q49");
    }

    #[test]
    fn forget_drops_session() {
        let h = SessionHistory::new();
        h.record("s", "x", 0);
        h.forget("s");
        assert_eq!(h.session_count(), 0);
        assert!(h.recent_terms("s", 1, TEN_MIN).is_empty());
    }
}
