//! Hostile and degenerate inputs for both index backends: empty corpora,
//! single-document corpora, a term present in every document, queries with
//! more tokens than any posting list is long, and corrupted serialized
//! posting blocks. Every case must return normally (typed errors for the
//! codec, empty or well-formed results for retrieval) — never panic — and
//! the compressed backend must stay byte-identical to exact throughout.

use geoserp_corpus::{GeoScope, Page, PageId, PageKind, WebCorpus};
use geoserp_engine::index::SearchIndex;
use geoserp_engine::postings::{CodecError, PostingList};
use geoserp_engine::IndexBackend;
use geoserp_geo::{Seed, UsGeography};

/// A corpus whose pages are exactly `docs` (dense ids, fixed metadata),
/// with no places — the smallest world the index builders accept.
fn corpus_of(docs: &[&[&str]]) -> WebCorpus {
    let seed = Seed::new(11);
    let geo = UsGeography::generate(seed);
    let mut corpus = WebCorpus::generate(&geo, seed);
    corpus.pages.clear();
    corpus.places.clear();
    for (i, tokens) in docs.iter().enumerate() {
        corpus.pages.push(Page::new(
            PageId(i as u32),
            format!("https://tiny.example.com/{i}"),
            "tiny.example.com".to_string(),
            format!("doc {i}"),
            tokens.iter().map(|t| t.to_string()).collect(),
            0.5,
            GeoScope::Global,
            PageKind::Web,
        ));
    }
    corpus
}

/// Assert both backends agree on every public surface for `query`.
fn assert_backends_agree(corpus: &WebCorpus, query: &str) {
    let exact = SearchIndex::build(corpus, IndexBackend::Exact);
    let comp = SearchIndex::build(corpus, IndexBackend::Compressed);
    for (min_candidates, partial_score) in [(0usize, 0.35f64), (36, 0.35), (500, 0.9)] {
        assert_eq!(
            comp.retrieve(query, min_candidates, partial_score),
            exact.retrieve(query, min_candidates, partial_score),
            "retrieve({query:?}, {min_candidates}, {partial_score}) diverged"
        );
    }
    for max_partials in [0usize, 4, usize::MAX] {
        assert_eq!(
            comp.shard_retrieve(query, max_partials),
            exact.shard_retrieve(query, max_partials),
            "shard_retrieve({query:?}, {max_partials}) diverged"
        );
    }
    assert_eq!(
        comp.suggest(query),
        exact.suggest(query),
        "suggest({query:?}) diverged"
    );
}

#[test]
fn empty_corpus_retrieves_nothing_without_panicking() {
    let corpus = corpus_of(&[]);
    for query in ["coffee", "a b c d e", "", "!!!"] {
        assert_backends_agree(&corpus, query);
        let comp = SearchIndex::build(&corpus, IndexBackend::Compressed);
        assert!(comp.retrieve(query, 36, 0.35).is_empty());
        assert_eq!(comp.page_count(), 0);
    }
}

#[test]
fn single_document_corpus_round_trips() {
    let corpus = corpus_of(&[&["lonely", "page"]]);
    for query in ["lonely", "lonely page", "page missing", "missing"] {
        assert_backends_agree(&corpus, query);
    }
    let comp = SearchIndex::build(&corpus, IndexBackend::Compressed);
    let hits = comp.retrieve("lonely", 0, 0.35);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].page, PageId(0));
}

#[test]
fn a_term_in_every_document_is_handled() {
    // 300 docs — enough to span multiple 128-posting blocks — all sharing
    // "common"; half also carry "rare".
    let docs: Vec<Vec<&str>> = (0..300)
        .map(|i| {
            if i % 2 == 0 {
                vec!["common", "rare"]
            } else {
                vec!["common"]
            }
        })
        .collect();
    let refs: Vec<&[&str]> = docs.iter().map(Vec::as_slice).collect();
    let corpus = corpus_of(&refs);
    for query in ["common", "common rare", "rare common rare", "common common"] {
        assert_backends_agree(&corpus, query);
    }
    let comp = SearchIndex::build(&corpus, IndexBackend::Compressed);
    assert_eq!(comp.df("common"), 300);
    assert_eq!(comp.retrieve("common", 0, 0.35).len(), 300);
}

#[test]
fn queries_longer_than_any_posting_list_do_not_panic() {
    // Every posting list has length ≤ 3; the query carries 8 tokens, so no
    // document can match them all and the partial-overlap path carries the
    // whole result.
    let corpus = corpus_of(&[&["alpha", "beta"], &["beta", "gamma", "delta"], &["delta"]]);
    let long_query = "alpha beta gamma delta epsilon zeta eta theta";
    assert_backends_agree(&corpus, long_query);
    let comp = SearchIndex::build(&corpus, IndexBackend::Compressed);
    let (fulls, partials) = comp.shard_retrieve(long_query, usize::MAX);
    assert!(fulls.is_empty(), "no doc can match 8 tokens");
    assert!(!partials.is_empty(), "partial overlaps must surface");
}

#[test]
fn corrupted_posting_bytes_fail_with_typed_errors_not_panics() {
    let list = PostingList::build(&[3, 9, 14, 200, 5_000, 70_000]);
    let bytes = list.to_bytes();

    // Every truncation point must produce a typed error, never a panic.
    for cut in 0..bytes.len() {
        let err =
            PostingList::from_bytes(&bytes[..cut]).expect_err("truncated input must be rejected");
        // The error formats — the Display impl is part of the typed surface.
        let _ = err.to_string();
    }

    // A wrong magic number is a header error, not a decode error.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xff;
    assert!(matches!(
        PostingList::from_bytes(&bad_magic),
        Err(CodecError::BadHeader { .. })
    ));

    // Trailing garbage is detected.
    let mut padded = bytes;
    padded.push(0);
    assert!(PostingList::from_bytes(&padded).is_err());
}
