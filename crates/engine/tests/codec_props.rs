//! Property tests for the compressed posting codec and the top-k retriever.
//!
//! Four invariants, each the load-bearing half of a byte-identity proof:
//!
//! 1. **Round-trip**: delta/varint encoding loses nothing — `decode_all`
//!    returns the input ids, and the serialized form parses back equal.
//! 2. **Seek never skips a hit**: skip-pointer navigation lands on exactly
//!    the first posting ≥ target that a naive forward scan would find, for
//!    any (even non-monotone) target sequence.
//! 3. **Block max-scores are true upper bounds**: every block's metadata
//!    weight dominates every member weight — the soundness condition for
//!    WAND/MaxScore pruning.
//! 4. **Top-k equals exact**: for random mini-corpora and random queries,
//!    the compressed backend's retrieve / shard_retrieve / suggest surfaces
//!    are bit-identical to the exact HashMap backend's.
//!
//! Case count honors `PROPTEST_CASES` (CI runs 256).

use geoserp_corpus::{GeoScope, Page, PageId, PageKind, WebCorpus};
use geoserp_engine::index::SearchIndex;
use geoserp_engine::postings::{PostingList, BLOCK};
use geoserp_engine::IndexBackend;
use geoserp_geo::{Seed, UsGeography};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Strictly increasing ids with realistic spread: small dense runs and
/// huge varint-stressing gaps both appear.
fn arb_ids() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..1_000_000_000, 0..700).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #[test]
    fn posting_round_trip_is_lossless(ids in arb_ids()) {
        let list = PostingList::build(&ids);
        prop_assert_eq!(list.len(), ids.len());
        prop_assert_eq!(list.decode_all(), ids.clone());

        let reparsed = PostingList::from_bytes(&list.to_bytes()).unwrap();
        prop_assert_eq!(&reparsed, &list);
        prop_assert_eq!(reparsed.decode_all(), ids);
    }

    #[test]
    fn seek_matches_a_naive_forward_scan(
        ids in arb_ids(),
        targets in proptest::collection::vec(0u32..1_000_000_000, 0..64),
    ) {
        let list = PostingList::build(&ids);
        let mut cursor = list.cursor();
        // The naive model: a forward-only pointer that never rewinds —
        // exactly the contract the leapfrog intersection relies on.
        let mut naive = 0usize;
        for t in targets {
            cursor.seek(t);
            while naive < ids.len() && ids[naive] < t {
                naive += 1;
            }
            prop_assert_eq!(cursor.current(), ids.get(naive).copied(),
                "seek({}) diverged from the scan", t);
        }
    }

    #[test]
    fn block_max_scores_are_true_upper_bounds(
        pairs in proptest::collection::vec((0u32..100_000, 0.0f32..10.0), 1..600)
            .prop_map(|mut v| {
                v.sort_by_key(|&(id, _)| id);
                v.dedup_by_key(|&mut (id, _)| id);
                v
            }),
    ) {
        let ids: Vec<u32> = pairs.iter().map(|&(id, _)| id).collect();
        let weights: Vec<f32> = pairs.iter().map(|&(_, w)| w).collect();
        let list = PostingList::build_weighted(&ids, &weights);

        let mut global_max = f32::NEG_INFINITY;
        for (j, meta) in list.blocks().iter().enumerate() {
            let chunk = &weights[j * BLOCK..(j * BLOCK + meta.count as usize)];
            let chunk_ids = &ids[j * BLOCK..(j * BLOCK + meta.count as usize)];
            prop_assert_eq!(meta.last_id, *chunk_ids.last().unwrap());
            for &w in chunk {
                prop_assert!(meta.max_weight >= w,
                    "block {} max {} below member weight {}", j, meta.max_weight, w);
            }
            global_max = global_max.max(meta.max_weight);
        }
        prop_assert!(list.max_weight() >= global_max);
    }
}

/// A template corpus with no pages and no places, generated once; property
/// cases clone it and install their own random pages. Keeping the roster /
/// query corpus / topics intact keeps it a structurally valid `WebCorpus`.
fn template_corpus() -> &'static WebCorpus {
    static TEMPLATE: OnceLock<WebCorpus> = OnceLock::new();
    TEMPLATE.get_or_init(|| {
        let seed = Seed::new(7);
        let geo = UsGeography::generate(seed);
        let mut corpus = WebCorpus::generate(&geo, seed);
        corpus.pages.clear();
        corpus.places.clear();
        corpus
    })
}

/// A random mini-corpus: dense page ids, each page a random bag of tokens
/// over a tiny vocabulary (so queries collide with postings constantly).
fn arb_corpus() -> impl Strategy<Value = WebCorpus> {
    const VOCAB: &[&str] = &[
        "apple", "bolt", "cat", "drum", "echo", "fern", "gust", "hill",
    ];
    proptest::collection::vec(proptest::collection::vec(0usize..VOCAB.len(), 1..6), 1..60).prop_map(
        |docs| {
            let mut corpus = template_corpus().clone();
            for (i, picks) in docs.iter().enumerate() {
                let tokens: Vec<String> = picks.iter().map(|&p| VOCAB[p].to_string()).collect();
                corpus.pages.push(Page::new(
                    PageId(i as u32),
                    format!("https://mini.example.com/{i}"),
                    "mini.example.com".to_string(),
                    format!("doc {i}"),
                    tokens,
                    0.5,
                    GeoScope::Global,
                    PageKind::Web,
                ));
            }
            corpus
        },
    )
}

/// Queries over the same vocabulary, with repeats allowed (duplicate query
/// tokens exercise the multiplicity-counting path) plus a miss token.
fn arb_query() -> impl Strategy<Value = String> {
    const TERMS: &[&str] = &[
        "apple",
        "bolt",
        "cat",
        "drum",
        "echo",
        "fern",
        "gust",
        "hill",
        "zzznothing",
    ];
    proptest::collection::vec(0usize..TERMS.len(), 1..5).prop_map(|picks| {
        picks
            .iter()
            .map(|&p| TERMS[p])
            .collect::<Vec<_>>()
            .join(" ")
    })
}

/// NaN-safe equality: both backends compute the same float expressions, so
/// even NaN lexical scores must agree bit for bit.
fn bits(cands: &[geoserp_engine::index::Candidate]) -> Vec<(PageId, u64)> {
    cands
        .iter()
        .map(|c| (c.page, c.lexical.to_bits()))
        .collect()
}

proptest! {
    #[test]
    fn compressed_top_k_equals_exact_top_k(
        corpus in arb_corpus(),
        query in arb_query(),
        min_candidates in prop_oneof![Just(0usize), Just(3), Just(36), Just(500)],
        partial_score in prop_oneof![Just(0.35f64), Just(0.9), Just(0.0), Just(-1.0)],
        max_partials in prop_oneof![Just(0usize), Just(3), Just(usize::MAX)],
    ) {
        let exact = SearchIndex::build(&corpus, IndexBackend::Exact);
        let comp = SearchIndex::build(&corpus, IndexBackend::Compressed);

        prop_assert_eq!(
            bits(&comp.retrieve(&query, min_candidates, partial_score)),
            bits(&exact.retrieve(&query, min_candidates, partial_score)),
            "retrieve diverged for {:?}", &query
        );
        prop_assert_eq!(
            comp.shard_retrieve(&query, max_partials),
            exact.shard_retrieve(&query, max_partials),
            "shard_retrieve diverged for {:?}", &query
        );
        prop_assert_eq!(
            comp.suggest(&query),
            exact.suggest(&query),
            "suggest diverged for {:?}", &query
        );
    }
}
