//! Scratch calibration: print Fig2/Fig5 for a moderate sample.
use geoserp_analysis::*;
use geoserp_crawler::{Crawler, ExperimentPlan};
use geoserp_geo::Seed;

fn main() {
    let plan = ExperimentPlan {
        days: 3,
        queries_per_category: Some(12),
        locations_per_granularity: Some(10),
        ..ExperimentPlan::quick()
    };
    let crawler = Crawler::new(Seed::new(2015));
    let ds = crawler.run(&plan);
    let idx = ObsIndex::new(&ds);
    println!("== fig2 noise ==");
    println!(
        "{}",
        geoserp_analysis::noise::render_fig2(&fig2_noise(&idx))
    );
    println!("== fig5 personalization ==");
    println!(
        "{}",
        geoserp_analysis::personalization::render_fig5(&fig5_personalization(&idx))
    );
    println!("== fig7 ==");
    println!(
        "{}",
        geoserp_analysis::attribution::render_fig7(&fig7_personalization_by_type(&idx))
    );
}
