//! Execution options for the analysis pipeline.

use geoserp_pool::Workers;

/// How the analysis pipeline executes.
///
/// The default (`Workers::Auto`) runs the pooled path: pairwise
/// comparisons are computed once over interned URL ids and sharded across
/// the host's cores. [`Workers::Serial`] selects the legacy single-threaded
/// reference path. Every setting produces byte-identical reports — worker
/// count changes wall-clock, never output.
/// The struct is `#[non_exhaustive]`: construct it through
/// [`AnalysisOptions::new`]/[`serial`](AnalysisOptions::serial)/
/// [`fixed`](AnalysisOptions::fixed) and adjust with the fluent
/// [`workers`](AnalysisOptions::workers) setter, so future options don't
/// break downstream struct literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct AnalysisOptions {
    /// Worker policy for pairwise comparisons, per-cell inference, and
    /// per-figure fan-out.
    pub workers: Workers,
}

impl AnalysisOptions {
    /// The pooled default.
    pub fn new() -> Self {
        AnalysisOptions {
            workers: Workers::Auto,
        }
    }

    /// The legacy single-threaded reference path.
    pub fn serial() -> Self {
        AnalysisOptions::new().workers(Workers::Serial)
    }

    /// A fixed worker count.
    pub fn fixed(workers: usize) -> Self {
        AnalysisOptions::new().workers(Workers::Fixed(workers))
    }

    /// Set the worker policy.
    pub fn workers(mut self, workers: Workers) -> Self {
        self.workers = workers;
        self
    }
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_auto() {
        assert_eq!(AnalysisOptions::default().workers, Workers::Auto);
        assert!(AnalysisOptions::serial().workers.is_serial());
        assert_eq!(AnalysisOptions::fixed(3).workers, Workers::Fixed(3));
    }
}
