//! Plain-text rendering of figure data (what the bench binaries print).

/// Format a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Render an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.len(), cols, "row {i} has {} cells, want {cols}", r.len());
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["term", "edit"],
            &[
                vec!["Starbucks".into(), "0.51".into()],
                vec!["Middle School".into(), "3.20".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("term"));
        assert!(lines[2].starts_with("Starbucks"));
        // The numeric column starts at the same offset in both data rows.
        let off2 = lines[2].find("0.51").unwrap();
        let off3 = lines[3].find("3.20").unwrap();
        assert_eq!(off2, off3);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn table_checks_arity() {
        table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.0 / 3.0), "0.33");
        assert_eq!(f3(2.0 / 3.0), "0.667");
    }
}
