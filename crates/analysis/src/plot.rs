//! Terminal plots for the figure regenerators.
//!
//! The paper's figures are bar charts and per-day line plots; the bench
//! binaries print these as ASCII so a full-scale run is readable in a
//! terminal or CI log without a plotting stack.

/// A horizontal bar chart: one labelled bar per row, scaled to `width`
pub fn hbar(title: &str, rows: &[(String, f64)], width: usize) -> String {
    assert!(width >= 8, "width must fit a readable bar");
    let max = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0_f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (label, value) in rows {
        assert!(*value >= 0.0, "bars are for non-negative values");
        let filled = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$} |{}{} {value:.2}\n",
            "#".repeat(filled),
            " ".repeat(width - filled.min(width)),
        ));
    }
    out
}

/// Grouped bars: each row carries one value per group (e.g. a value per
/// granularity), rendered as stacked sub-rows with group tags.
pub fn grouped_hbar(
    title: &str,
    groups: &[&str],
    rows: &[(String, Vec<f64>)],
    width: usize,
) -> String {
    let max = rows
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .fold(0.0_f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let tag_w = groups.iter().map(|g| g.chars().count()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (label, values) in rows {
        assert_eq!(values.len(), groups.len(), "one value per group");
        for (tag, value) in groups.iter().zip(values) {
            let filled = ((value / max) * width as f64).round() as usize;
            out.push_str(&format!(
                "{label:<label_w$} {tag:<tag_w$} |{} {value:.2}\n",
                "#".repeat(filled.min(width)),
            ));
        }
    }
    out
}

/// A per-day series table with a unicode sparkline per row — the Figure-8
/// "lines over days" view.
pub fn series_sparklines(title: &str, days: &[u32], rows: &[(String, Vec<f64>)]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = rows
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .fold(0.0_f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (label, values) in rows {
        assert_eq!(values.len(), days.len(), "one value per day");
        let spark: String = values
            .iter()
            .map(|v| {
                let idx = ((v / max) * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[idx.min(LEVELS.len() - 1)]
            })
            .collect();
        let mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
        out.push_str(&format!("{label:<label_w$} {spark}  mean {mean:.2}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbar_scales_to_max() {
        let chart = hbar(
            "noise",
            &[("Local".into(), 4.0), ("Politicians".into(), 1.0)],
            20,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1].matches('#').count(), 20, "max fills the width");
        assert_eq!(
            lines[2].matches('#').count(),
            5,
            "quarter value, quarter bar"
        );
        assert!(lines[1].contains("4.00"));
    }

    #[test]
    fn hbar_handles_all_zero() {
        let chart = hbar("empty", &[("a".into(), 0.0)], 10);
        assert!(chart.contains("0.00"));
        assert_eq!(chart.lines().nth(1).unwrap().matches('#').count(), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn hbar_rejects_negatives() {
        hbar("bad", &[("a".into(), -1.0)], 10);
    }

    #[test]
    fn grouped_hbar_emits_one_row_per_group() {
        let chart = grouped_hbar(
            "personalization",
            &["county", "state"],
            &[("School".into(), vec![2.0, 4.0])],
            10,
        );
        assert_eq!(chart.lines().count(), 3);
        assert!(chart.contains("county"));
        assert!(chart.contains("state"));
    }

    #[test]
    #[should_panic(expected = "one value per group")]
    fn grouped_hbar_checks_arity() {
        grouped_hbar("x", &["a", "b"], &[("r".into(), vec![1.0])], 10);
    }

    #[test]
    fn sparklines_span_levels() {
        let chart = series_sparklines(
            "fig8",
            &[0, 1, 2],
            &[
                ("baseline".into(), vec![0.5, 0.5, 0.5]),
                ("far away".into(), vec![8.0, 8.0, 8.0]),
            ],
        );
        assert!(chart.contains('█'), "max value gets the full block");
        assert!(chart.contains("mean 8.00"));
        assert!(chart.contains("mean 0.50"));
    }
}
