//! §3.2 personalization analysis (Figures 5 and 6).
//!
//! Personalization is measured by comparing *all pairs of treatments* —
//! same term, same instant, different locations — and judged against the
//! noise floor from §3.1.

use crate::index::ObsIndex;
use crate::noise::{fig2_noise, per_term_series, TermSeries};
use crate::render::{f2, table};
use geoserp_corpus::QueryCategory;
use geoserp_geo::Granularity;
use geoserp_metrics::Summary;
use serde::Serialize;

/// One Figure-5 bar group with its Figure-2 noise floor attached.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Row {
    /// The granularity.
    pub granularity: Granularity,
    /// The category.
    pub category: QueryCategory,
    /// Jaccard over all location pairs.
    pub jaccard: Summary,
    /// Edit distance over all location pairs.
    pub edit_distance: Summary,
    /// The matching noise floor (mean over treatment/control pairs).
    pub noise_jaccard_mean: f64,
    /// The noise edit mean.
    pub noise_edit_mean: f64,
}

impl Fig5Row {
    /// Personalization beyond noise, in edit-distance units (floored at 0).
    pub fn edit_above_noise(&self) -> f64 {
        (self.edit_distance.mean - self.noise_edit_mean).max(0.0)
    }

    /// True when the measured differences are distinguishable from noise —
    /// the paper requires the signal to clear the noise floor before
    /// claiming personalization.
    pub fn exceeds_noise(&self) -> bool {
        self.edit_distance.mean > self.noise_edit_mean
            && self.jaccard.mean < self.noise_jaccard_mean
    }
}

/// Figure 5: average personalization per query type and granularity, with
/// the noise floor from Figure 2.
pub fn fig5_personalization(idx: &ObsIndex<'_>) -> Vec<Fig5Row> {
    let noise = fig2_noise(idx);
    let mut out = Vec::new();
    for gran in idx.granularities() {
        for category in idx.categories() {
            let mut jaccards = Vec::new();
            let mut edits = Vec::new();
            idx.for_each_treatment_pair(gran, category, |a, b| {
                let (j, e) = idx.pair_urls_stat(a, b);
                jaccards.push(j);
                edits.push(e);
            });
            let floor = noise
                .iter()
                .find(|n| n.granularity == gran && n.category == category)
                .expect("fig2 covers every cell");
            out.push(Fig5Row {
                granularity: gran,
                category,
                jaccard: Summary::of(&jaccards),
                edit_distance: Summary::of(&edits),
                noise_jaccard_mean: floor.jaccard.mean,
                noise_edit_mean: floor.edit_distance.mean,
            });
        }
    }
    out
}

/// Figure 6: per-term personalization for one category (the paper plots
/// Local), sorted ascending by the national values.
pub fn fig6_personalization_per_term(
    idx: &ObsIndex<'_>,
    category: QueryCategory,
) -> Vec<TermSeries> {
    per_term_series(idx, category, true)
}

/// §3.2's "exceptional search terms": the terms of a category most
/// personalized at a granularity, descending. The paper calls out common
/// politician names ("Bill Johnson", "Tim Ryan" — ambiguity) and the
/// controversial terms "health", "republican party", "politics".
pub fn most_personalized_terms(
    idx: &ObsIndex<'_>,
    category: QueryCategory,
    granularity: Granularity,
    top_k: usize,
) -> Vec<(String, f64)> {
    let mut rows: Vec<(String, f64)> = per_term_series(idx, category, true)
        .into_iter()
        .map(|s| {
            let v = s
                .edit_by_granularity
                .get(&granularity)
                .copied()
                .unwrap_or(0.0);
            (s.term, v)
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(top_k);
    rows
}

/// Render Figure 5 as a text table.
pub fn render_fig5(rows: &[Fig5Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.granularity.label().to_string(),
                r.category.label().to_string(),
                format!("{} ± {}", f2(r.jaccard.mean), f2(r.jaccard.stddev)),
                format!(
                    "{} ± {}",
                    f2(r.edit_distance.mean),
                    f2(r.edit_distance.stddev)
                ),
                f2(r.noise_jaccard_mean),
                f2(r.noise_edit_mean),
                f2(r.edit_above_noise()),
            ]
        })
        .collect();
    table(
        &[
            "granularity",
            "category",
            "avg jaccard",
            "avg edit dist",
            "noise jacc",
            "noise edit",
            "edit>noise",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoserp_crawler::{Crawler, Dataset, ExperimentPlan};
    use geoserp_geo::Seed;

    fn dataset() -> Dataset {
        let plan = ExperimentPlan {
            days: 2,
            queries_per_category: Some(3),
            locations_per_granularity: Some(5),
            ..ExperimentPlan::quick()
        };
        Crawler::new(Seed::new(2015)).run(&plan)
    }

    #[test]
    fn fig5_covers_all_cells_with_floors() {
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let rows = fig5_personalization(&idx);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(r.jaccard.n > 0);
            assert!(r.noise_edit_mean >= 0.0);
        }
    }

    #[test]
    fn local_personalization_clears_noise_floor() {
        // The paper's core claim: local queries are personalized beyond
        // noise, and the effect grows with distance.
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let rows = fig5_personalization(&idx);
        let local = |g: Granularity| -> &Fig5Row {
            rows.iter()
                .find(|r| r.granularity == g && r.category == QueryCategory::Local)
                .unwrap()
        };
        let state = local(Granularity::State);
        let national = local(Granularity::National);
        assert!(
            state.exceeds_noise(),
            "state-level local personalization {:?} must clear noise {:?}",
            state.edit_distance.mean,
            state.noise_edit_mean
        );
        assert!(national.exceeds_noise());
        // Growth with distance (county ≤ state ≤ national, allowing slack
        // at the small quick-plan scale for the county level).
        assert!(
            national.edit_distance.mean >= local(Granularity::County).edit_distance.mean,
            "national {} < county {}",
            national.edit_distance.mean,
            local(Granularity::County).edit_distance.mean
        );
    }

    #[test]
    fn politicians_stay_near_noise() {
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let rows = fig5_personalization(&idx);
        for r in rows
            .iter()
            .filter(|r| r.category == QueryCategory::Politician)
        {
            assert!(
                r.edit_above_noise() < 4.0,
                "politician personalization too strong at {:?}: {} above noise {}",
                r.granularity,
                r.edit_distance.mean,
                r.noise_edit_mean
            );
        }
    }

    #[test]
    fn fig6_shape() {
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let series = fig6_personalization_per_term(&idx, QueryCategory::Local);
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.edit_by_granularity.len(), 3);
        }
    }

    #[test]
    fn exceptional_terms_match_the_papers_callouts() {
        // Full category lists (no subsampling) so the named terms are in
        // the crawl; 2 days × 6 locations keeps this test fast.
        let plan = ExperimentPlan {
            days: 2,
            queries_per_category: None,
            locations_per_granularity: Some(6),
            ..ExperimentPlan::paper_full()
        };
        let ds = Crawler::new(Seed::new(2015)).run(&plan);
        let idx = ObsIndex::new(&ds);

        // §3.2: "In the case of politicians, these exceptions are common
        // names such as 'Bill Johnson' or 'Tim Ryan'". Ambiguously named
        // politicians must personalize more than the rest on average, and
        // at least one must appear among the most-personalized terms.
        let all_pol = most_personalized_terms(
            &idx,
            QueryCategory::Politician,
            Granularity::National,
            usize::MAX,
        );
        let commons = [
            "Bill Johnson",
            "Tim Ryan",
            "Mike Smith",
            "John Brown",
            "Dave Miller",
            "Jim Jones",
        ];
        let (mut common_vals, mut other_vals) = (Vec::new(), Vec::new());
        for (term, v) in &all_pol {
            if commons.contains(&term.as_str()) {
                common_vals.push(*v);
            } else {
                other_vals.push(*v);
            }
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        assert!(
            mean(&common_vals) > mean(&other_vals),
            "ambiguous names must out-personalize the pack: {:.2} vs {:.2}",
            mean(&common_vals),
            mean(&other_vals)
        );
        let top12: Vec<&str> = all_pol.iter().take(12).map(|(t, _)| t.as_str()).collect();
        assert!(
            commons.iter().any(|c| top12.contains(c)),
            "no common name among the most personalized: {top12:?}"
        );

        // §3.2: "the most personalized [controversial] queries are 'health',
        // 'republican party', and 'politics'".
        let top_contro =
            most_personalized_terms(&idx, QueryCategory::Controversial, Granularity::National, 8);
        let terms: Vec<&str> = top_contro.iter().map(|(t, _)| t.as_str()).collect();
        let special_hits = ["Health", "Republican Party", "Politics"]
            .iter()
            .filter(|t| terms.contains(*t))
            .count();
        assert!(
            special_hits >= 2,
            "the §3.2 terms should top the controversial list, got {terms:?}"
        );
    }

    #[test]
    fn render_contains_floors() {
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let text = render_fig5(&fig5_personalization(&idx));
        assert!(text.contains("noise edit"));
        assert!(text.contains("Local"));
    }
}
