//! §3.1 noise analysis (Figures 2 and 3).
//!
//! Noise is measured by comparing every treatment with its simultaneous
//! control: "two browsers that are running the same queries at the same time
//! from the same locations".

use crate::index::ObsIndex;
use crate::render::{f2, table};
use geoserp_corpus::QueryCategory;
use geoserp_geo::Granularity;
use geoserp_metrics::Summary;
use serde::Serialize;
use std::collections::BTreeMap;

/// One Figure-2 bar group: a (granularity, category) cell.
#[derive(Debug, Clone, Serialize)]
pub struct CategoryStat {
    /// The granularity.
    pub granularity: Granularity,
    /// The category.
    pub category: QueryCategory,
    /// Jaccard index summary over all treatment/control pairs (queries ×
    /// days × locations).
    pub jaccard: Summary,
    /// Edit-distance summary over the same pairs.
    pub edit_distance: Summary,
}

/// Figure 2: average noise per query type and granularity.
pub fn fig2_noise(idx: &ObsIndex<'_>) -> Vec<CategoryStat> {
    let mut out = Vec::new();
    for gran in idx.granularities() {
        for category in idx.categories() {
            let mut jaccards = Vec::new();
            let mut edits = Vec::new();
            idx.for_each_noise_pair(gran, category, |t, c| {
                let (j, e) = idx.pair_urls_stat(t, c);
                jaccards.push(j);
                edits.push(e);
            });
            out.push(CategoryStat {
                granularity: gran,
                category,
                jaccard: Summary::of(&jaccards),
                edit_distance: Summary::of(&edits),
            });
        }
    }
    out
}

/// Per-term series across granularities (Figures 3 and 6 share this shape).
#[derive(Debug, Clone, Serialize)]
pub struct TermSeries {
    /// The term.
    pub term: String,
    /// Mean edit distance at each granularity.
    pub edit_by_granularity: BTreeMap<Granularity, f64>,
    /// Mean Jaccard at each granularity.
    pub jaccard_by_granularity: BTreeMap<Granularity, f64>,
}

/// Figure 3: per-term noise for one category (the paper plots Local),
/// sorted ascending by the national-granularity edit distance (the paper's
/// x-axis ordering).
pub fn fig3_noise_per_term(idx: &ObsIndex<'_>, category: QueryCategory) -> Vec<TermSeries> {
    per_term_series(idx, category, false)
}

/// Shared implementation for Figures 3 (noise) and 6 (personalization).
pub(crate) fn per_term_series(
    idx: &ObsIndex<'_>,
    category: QueryCategory,
    personalization: bool,
) -> Vec<TermSeries> {
    let mut out: Vec<TermSeries> = idx
        .terms(category)
        .iter()
        .map(|t| TermSeries {
            term: t.to_string(),
            edit_by_granularity: BTreeMap::new(),
            jaccard_by_granularity: BTreeMap::new(),
        })
        .collect();

    for gran in idx.granularities() {
        for &term in idx.terms(category) {
            let mut e = Vec::new();
            let mut j = Vec::new();
            let days = idx.days(gran);
            let locs = idx.locations(gran);
            if personalization {
                for &day in &days {
                    for i in 0..locs.len() {
                        for k in (i + 1)..locs.len() {
                            if let (Some(a), Some(b)) = (
                                idx.get(day, gran, locs[i], term, geoserp_crawler::Role::Treatment),
                                idx.get(day, gran, locs[k], term, geoserp_crawler::Role::Treatment),
                            ) {
                                let (jac, edit) = idx.pair_urls_stat(a, b);
                                e.push(edit);
                                j.push(jac);
                            }
                        }
                    }
                }
            } else {
                for &day in &days {
                    for &loc in locs {
                        if let (Some(t), Some(c)) = (
                            idx.get(day, gran, loc, term, geoserp_crawler::Role::Treatment),
                            idx.get(day, gran, loc, term, geoserp_crawler::Role::Control),
                        ) {
                            let (jac, edit) = idx.pair_urls_stat(t, c);
                            e.push(edit);
                            j.push(jac);
                        }
                    }
                }
            }
            let entry = out.iter_mut().find(|s| s.term == term).expect("term row");
            entry.edit_by_granularity.insert(gran, Summary::of(&e).mean);
            entry
                .jaccard_by_granularity
                .insert(gran, Summary::of(&j).mean);
        }
    }

    // Paper ordering: ascending by the national values.
    out.sort_by(|a, b| {
        let av = a
            .edit_by_granularity
            .get(&Granularity::National)
            .copied()
            .unwrap_or(0.0);
        let bv = b
            .edit_by_granularity
            .get(&Granularity::National)
            .copied()
            .unwrap_or(0.0);
        av.total_cmp(&bv).then(a.term.cmp(&b.term))
    });
    out
}

/// Render Figure 2 as a text table.
pub fn render_fig2(stats: &[CategoryStat]) -> String {
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.granularity.label().to_string(),
                s.category.label().to_string(),
                format!("{} ± {}", f2(s.jaccard.mean), f2(s.jaccard.stddev)),
                format!(
                    "{} ± {}",
                    f2(s.edit_distance.mean),
                    f2(s.edit_distance.stddev)
                ),
                s.jaccard.n.to_string(),
            ]
        })
        .collect();
    table(
        &[
            "granularity",
            "category",
            "avg jaccard",
            "avg edit dist",
            "pairs",
        ],
        &rows,
    )
}

/// Render a per-term series table (Figures 3 and 6).
pub fn render_term_series(series: &[TermSeries]) -> String {
    let grans = [
        Granularity::County,
        Granularity::State,
        Granularity::National,
    ];
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut row = vec![s.term.clone()];
            for g in grans {
                row.push(
                    s.edit_by_granularity
                        .get(&g)
                        .map(|v| f2(*v))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            row
        })
        .collect();
    table(
        &["term", "county edit", "state edit", "national edit"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoserp_crawler::{Crawler, Dataset, ExperimentPlan};
    use geoserp_geo::Seed;

    fn dataset() -> Dataset {
        let plan = ExperimentPlan {
            days: 2,
            queries_per_category: Some(3),
            locations_per_granularity: Some(4),
            ..ExperimentPlan::quick()
        };
        Crawler::new(Seed::new(2015)).run(&plan)
    }

    #[test]
    fn fig2_covers_all_cells() {
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let stats = fig2_noise(&idx);
        assert_eq!(stats.len(), 9, "3 granularities × 3 categories");
        for s in &stats {
            assert!(
                s.jaccard.n > 0,
                "{:?}/{:?} empty",
                s.granularity,
                s.category
            );
            assert!((0.0..=1.0).contains(&s.jaccard.mean));
            assert!(s.edit_distance.mean >= 0.0);
        }
    }

    #[test]
    fn local_noise_exceeds_politician_noise() {
        // The paper's headline Figure-2 shape.
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let stats = fig2_noise(&idx);
        let mean_edit = |cat: QueryCategory| -> f64 {
            let xs: Vec<f64> = stats
                .iter()
                .filter(|s| s.category == cat)
                .map(|s| s.edit_distance.mean)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(
            mean_edit(QueryCategory::Local) >= mean_edit(QueryCategory::Politician),
            "local {} vs politician {}",
            mean_edit(QueryCategory::Local),
            mean_edit(QueryCategory::Politician)
        );
    }

    #[test]
    fn fig3_sorted_by_national_and_complete() {
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let series = fig3_noise_per_term(&idx, QueryCategory::Local);
        assert_eq!(series.len(), 3);
        let nationals: Vec<f64> = series
            .iter()
            .map(|s| s.edit_by_granularity[&Granularity::National])
            .collect();
        for w in nationals.windows(2) {
            assert!(w[0] <= w[1], "not sorted: {nationals:?}");
        }
        for s in &series {
            assert_eq!(s.edit_by_granularity.len(), 3);
            assert_eq!(s.jaccard_by_granularity.len(), 3);
        }
    }

    #[test]
    fn renders_are_nonempty() {
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let f2t = render_fig2(&fig2_noise(&idx));
        assert!(f2t.contains("County (Cuyahoga)"));
        let f3t = render_term_series(&fig3_noise_per_term(&idx, QueryCategory::Local));
        assert!(f3t.contains("national edit"));
    }
}
