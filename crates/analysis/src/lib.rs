#![warn(missing_docs)]
//! # geoserp-analysis — the paper's §3 analyses
//!
//! Turns a collected [`geoserp_crawler::Dataset`] into every table and
//! figure of the evaluation:
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Fig. 2 — noise by query type × granularity | [`noise::fig2_noise`] |
//! | Fig. 3 — noise per local term | [`noise::fig3_noise_per_term`] |
//! | Fig. 4 — noise attributed to Maps/News | [`attribution::fig4_noise_by_type`] |
//! | Fig. 5 — personalization by type × granularity vs noise floor | [`personalization::fig5_personalization`] |
//! | Fig. 6 — personalization per local term | [`personalization::fig6_personalization_per_term`] |
//! | Fig. 7 — personalization decomposed by result type | [`attribution::fig7_personalization_by_type`] |
//! | Fig. 8 — consistency over days vs a baseline location | [`consistency::fig8_consistency`] |
//! | §3.2 — demographic correlations (the null result) | [`demographics::demographic_correlations`] |
//! | §3.2 — "difficult to claim" made quantitative | [`significance::personalization_significance`] |
//! | §3.2 — county-level location clustering | [`significance::fig8_clusters`] |
//! | per-component attribution over the full SERP taxonomy | [`attribution::component_attribution`] |
//!
//! Two comparison disciplines, exactly as in §3:
//!
//! * **noise** — every observation against its *simultaneous control* (same
//!   term, location, instant; different machine);
//! * **personalization** — every *pair of treatments* at different locations
//!   (same term, same instant).
//!
//! All functions return plain serializable structs; [`render`] turns them
//! into the aligned text tables the bench binaries print.

pub mod attribution;
pub mod consistency;
pub mod demographics;
pub mod index;
pub mod markdown;
pub mod noise;
pub mod options;
pub mod paper;
pub mod personalization;
pub mod plot;
pub mod render;
pub mod significance;

pub use attribution::{
    component_attribution, fig4_noise_by_type, fig7_personalization_by_type, ComponentBreakdown,
    ComponentRow, TypeBreakdownRow, TypeNoiseRow,
};
pub use consistency::{fig8_consistency, Fig8Panel};
pub use demographics::{demographic_correlations, DemographicsReport, FeatureCorrelation};
pub use geoserp_pool::Workers;
pub use index::{ObsIndex, PairStat};
pub use markdown::{compare_with_paper, Comparison, ShapeCheck};
pub use noise::{fig2_noise, fig3_noise_per_term, CategoryStat, TermSeries};
pub use options::AnalysisOptions;
pub use personalization::{
    fig5_personalization, fig6_personalization_per_term, most_personalized_terms, Fig5Row,
};
pub use significance::{
    fig8_clusters, personalization_significance, LocationCluster, SignificanceRow,
};
