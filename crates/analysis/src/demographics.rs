//! §3.2 demographics correlation analysis — the paper's null result.
//!
//! "To investigate why certain locations cluster at the county-level, we
//! examined many potential correlations between all pairs of county-level
//! locations … as well as 25 demographic features … Unfortunately, we were
//! unable to identify any correlations that explain the clustering of
//! locations."
//!
//! For every pair of locations at one granularity we compute the mean
//! Jaccard similarity of their simultaneously collected treatment pages;
//! that similarity is then correlated (Pearson and Spearman) against the
//! pairwise geographic distance and against |Δfeature| for each of the 25
//! demographic features. Because the simulated engine never reads
//! demographics, every feature correlation must be explainable by the
//! feature's own spatial autocorrelation — and at the county granularity
//! (vantage points ~1 mile apart) even that vanishes, reproducing the null
//! result.

use crate::index::ObsIndex;
use crate::render::{f3, table};
use geoserp_corpus::QueryCategory;
use geoserp_crawler::Role;
use geoserp_geo::{DemographicFeature, Granularity};
use geoserp_metrics::{pearson, spearman};
use serde::Serialize;

/// Correlation of one candidate explanatory variable with pairwise SERP
/// similarity.
#[derive(Debug, Clone, Serialize)]
pub struct FeatureCorrelation {
    /// The feature.
    pub feature: String,
    /// The pearson.
    pub pearson: Option<f64>,
    /// The spearman.
    pub spearman: Option<f64>,
}

/// The full §3.2 report at one granularity.
#[derive(Debug, Clone, Serialize)]
pub struct DemographicsReport {
    /// The granularity.
    pub granularity: Granularity,
    /// Location pairs examined.
    pub pairs: usize,
    /// Correlation of geographic distance with similarity.
    pub distance: FeatureCorrelation,
    /// One row per demographic feature.
    pub features: Vec<FeatureCorrelation>,
}

impl DemographicsReport {
    /// Largest |Pearson r| over the demographic features (the headline
    /// number: small ⇒ the paper's null result).
    pub fn max_abs_feature_pearson(&self) -> f64 {
        self.features
            .iter()
            .filter_map(|f| f.pearson)
            .map(f64::abs)
            .fold(0.0, f64::max)
    }
}

/// Run the correlation analysis over one category (the paper's clustering
/// observation is about local queries) at one granularity.
pub fn demographic_correlations(
    idx: &ObsIndex<'_>,
    category: QueryCategory,
    granularity: Granularity,
) -> DemographicsReport {
    let ds = idx.dataset();
    let locs = idx.locations(granularity);
    let days = idx.days(granularity);
    let terms = idx.terms(category);

    // Pairwise mean SERP similarity plus explanatory variables.
    let mut similarity = Vec::new();
    let mut distance_mi = Vec::new();
    let mut feature_deltas: Vec<Vec<f64>> = vec![Vec::new(); DemographicFeature::ALL.len()];

    for i in 0..locs.len() {
        for j in (i + 1)..locs.len() {
            let (la, lb) = (
                ds.location(locs[i]).expect("location metadata"),
                ds.location(locs[j]).expect("location metadata"),
            );
            let mut sims = Vec::new();
            for &day in &days {
                for &term in terms {
                    if let (Some(a), Some(b)) = (
                        idx.get(day, granularity, locs[i], term, Role::Treatment),
                        idx.get(day, granularity, locs[j], term, Role::Treatment),
                    ) {
                        sims.push(idx.pair_jaccard(a, b));
                    }
                }
            }
            if sims.is_empty() {
                continue;
            }
            similarity.push(sims.iter().sum::<f64>() / sims.len() as f64);
            distance_mi.push(la.distance_miles(lb));
            for (k, feature) in DemographicFeature::ALL.iter().enumerate() {
                feature_deltas[k]
                    .push((la.demographics.get(*feature) - lb.demographics.get(*feature)).abs());
            }
        }
    }

    let correlate = |name: &str, xs: &[f64]| FeatureCorrelation {
        feature: name.to_string(),
        pearson: pearson(xs, &similarity),
        spearman: spearman(xs, &similarity),
    };

    DemographicsReport {
        granularity,
        pairs: similarity.len(),
        distance: correlate("geographic distance", &distance_mi),
        features: DemographicFeature::ALL
            .iter()
            .enumerate()
            .map(|(k, f)| correlate(f.name(), &feature_deltas[k]))
            .collect(),
    }
}

/// Render the report as a text table, features sorted by |Pearson| desc.
pub fn render_demographics(report: &DemographicsReport) -> String {
    let fmt_opt = |v: Option<f64>| v.map(f3).unwrap_or_else(|| "n/a".into());
    let mut rows: Vec<(f64, Vec<String>)> = report
        .features
        .iter()
        .map(|f| {
            (
                f.pearson.map(f64::abs).unwrap_or(0.0),
                vec![f.feature.clone(), fmt_opt(f.pearson), fmt_opt(f.spearman)],
            )
        })
        .collect();
    rows.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut body = vec![vec![
        format!("* {}", report.distance.feature),
        fmt_opt(report.distance.pearson),
        fmt_opt(report.distance.spearman),
    ]];
    body.extend(rows.into_iter().map(|(_, r)| r));
    table(&["candidate variable", "pearson r", "spearman ρ"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoserp_crawler::{Crawler, Dataset, ExperimentPlan};
    use geoserp_geo::Seed;

    fn dataset() -> Dataset {
        let plan = ExperimentPlan {
            days: 2,
            queries_per_category: Some(4),
            locations_per_granularity: Some(8),
            ..ExperimentPlan::quick()
        };
        Crawler::new(Seed::new(2015)).run(&plan)
    }

    #[test]
    fn report_shape() {
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let r = demographic_correlations(&idx, QueryCategory::Local, Granularity::County);
        assert_eq!(r.features.len(), 25);
        assert_eq!(r.pairs, 8 * 7 / 2);
        for f in &r.features {
            if let Some(p) = f.pearson {
                assert!((-1.0..=1.0).contains(&p), "{}: {p}", f.feature);
            }
        }
    }

    #[test]
    fn county_level_features_do_not_explain_similarity() {
        // The paper's null result: at ~1-mile spacing no demographic feature
        // explains which locations get similar results.
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let r = demographic_correlations(&idx, QueryCategory::Local, Granularity::County);
        assert!(
            r.max_abs_feature_pearson() < 0.75,
            "a demographic feature 'explains' similarity: {}",
            r.max_abs_feature_pearson()
        );
    }

    #[test]
    fn distance_correlates_at_state_scale() {
        // Sanity check that the *mechanism* (distance) is visible where it
        // should be: across Ohio counties (pairs spanning 30–400 km, inside
        // the engine's decay range), greater distance ⇒ less similar pages.
        // At County granularity (~1 mi) noise dominates and at National all
        // pairs saturate the decay, so only the State panel shows it.
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let r = demographic_correlations(&idx, QueryCategory::Local, Granularity::State);
        let d = r.distance.pearson.expect("defined");
        assert!(
            d < -0.15,
            "distance should anti-correlate with similarity, r = {d}"
        );
    }

    #[test]
    fn empty_dataset_gives_undefined_correlations_not_panics() {
        use geoserp_crawler::DatasetMeta;
        use geoserp_geo::{UsGeography, VantagePoints};
        let geo = UsGeography::generate(Seed::new(1));
        let vantage = VantagePoints::paper_defaults(&geo, Seed::new(1).derive("vp"));
        let ds = Dataset::new(vantage, DatasetMeta::default());
        let idx = ObsIndex::new(&ds);
        let r = demographic_correlations(&idx, QueryCategory::Local, Granularity::County);
        assert_eq!(r.pairs, 0);
        assert_eq!(r.distance.pearson, None);
        assert_eq!(r.distance.spearman, None);
        assert!(r.features.iter().all(|f| f.pearson.is_none()));
        assert_eq!(r.max_abs_feature_pearson(), 0.0);
        assert!(render_demographics(&r).contains("n/a"));
    }

    #[test]
    fn constant_similarity_gives_none_correlations() {
        use geoserp_crawler::{DatasetMeta, Observation, Role};
        use geoserp_geo::{UsGeography, VantagePoints};
        use geoserp_serp::ResultType;
        // Identical SERPs everywhere → pairwise similarity is constant 1.0,
        // a zero-variance side for every correlation.
        let geo = UsGeography::generate(Seed::new(1));
        let vantage = VantagePoints::paper_defaults(&geo, Seed::new(1).derive("vp"));
        let mut ds = Dataset::new(vantage, DatasetMeta::default());
        let locs: Vec<_> = ds.vantage.county.iter().take(3).map(|l| l.id).collect();
        let results: Vec<_> = ["https://a/", "https://b/"]
            .iter()
            .map(|u| (ds.intern(u), ResultType::Organic))
            .collect();
        for loc in locs {
            ds.push(Observation {
                day: 0,
                block_day: 0,
                granularity: Granularity::County,
                location: loc,
                term: "pizza".into(),
                category: QueryCategory::Local,
                role: Role::Treatment,
                results: results.clone(),
                datacenter: "dc0".into(),
                reported_location: "Cleveland, OH".into(),
            });
        }
        let idx = ObsIndex::new(&ds);
        let r = demographic_correlations(&idx, QueryCategory::Local, Granularity::County);
        assert_eq!(r.pairs, 3);
        assert_eq!(r.distance.pearson, None, "zero variance in similarity");
        assert_eq!(r.distance.spearman, None);
        assert!(r
            .features
            .iter()
            .all(|f| f.pearson.is_none() && f.spearman.is_none()));
    }

    #[test]
    fn render_sorts_and_labels() {
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let r = demographic_correlations(&idx, QueryCategory::Local, Granularity::State);
        let text = render_demographics(&r);
        assert!(text.contains("geographic distance"));
        assert!(text.contains("pearson r"));
    }
}
