//! Result-type attribution (Figures 4 and 7).
//!
//! "We suspect that Maps and News results may be more heavily impacted by
//! location-based personalization, so we calculate the amount of noise that
//! can be attributed to search results of these types separately" (§3.1) —
//! and the same decomposition over treatment pairs yields Figure 7.

use crate::index::ObsIndex;
use crate::render::{f2, table};
use geoserp_corpus::QueryCategory;
use geoserp_crawler::Observation;
use geoserp_geo::Granularity;
use serde::Serialize;

/// One Figure-4 row: per-term noise decomposed by result type.
#[derive(Debug, Clone, Serialize)]
pub struct TypeNoiseRow {
    /// The term.
    pub term: String,
    /// Mean overall edit distance.
    pub all: f64,
    /// Mean edit distance among Maps links only.
    pub maps: f64,
    /// Mean edit distance among News links only.
    pub news: f64,
}

/// One Figure-7 bar: mean edit distance decomposed into Maps / News / other
/// for a (granularity, category) cell.
#[derive(Debug, Clone, Serialize)]
pub struct TypeBreakdownRow {
    /// The granularity.
    pub granularity: Granularity,
    /// The category.
    pub category: QueryCategory,
    /// The total.
    pub total: f64,
    /// The maps.
    pub maps: f64,
    /// The news.
    pub news: f64,
    /// The other.
    pub other: f64,
    /// Comparison count behind the means.
    pub pairs: usize,
}

impl TypeBreakdownRow {
    /// Fraction of all changes attributable to Maps.
    pub fn maps_fraction(&self) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.maps / self.total
        }
    }

    /// Fraction of all changes attributable to News.
    pub fn news_fraction(&self) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.news / self.total
        }
    }
}

fn decompose(idx: &ObsIndex<'_>, a: &Observation, b: &Observation) -> (usize, usize, usize, usize) {
    idx.pair_attribution(a, b)
}

/// Figure 4: noise per local term decomposed by result type, at one
/// granularity (the paper shows County), sorted ascending by overall noise.
pub fn fig4_noise_by_type(
    idx: &ObsIndex<'_>,
    category: QueryCategory,
    granularity: Granularity,
) -> Vec<TypeNoiseRow> {
    let mut out = Vec::new();
    for &term in idx.terms(category) {
        let mut all = Vec::new();
        let mut maps = Vec::new();
        let mut news = Vec::new();
        for day in idx.days(granularity) {
            for &loc in idx.locations(granularity) {
                if let (Some(t), Some(c)) = (
                    idx.get(
                        day,
                        granularity,
                        loc,
                        term,
                        geoserp_crawler::Role::Treatment,
                    ),
                    idx.get(day, granularity, loc, term, geoserp_crawler::Role::Control),
                ) {
                    let (a, m, n, _) = decompose(idx, t, c);
                    all.push(a as f64);
                    maps.push(m as f64);
                    news.push(n as f64);
                }
            }
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        out.push(TypeNoiseRow {
            term: term.to_string(),
            all: mean(&all),
            maps: mean(&maps),
            news: mean(&news),
        });
    }
    out.sort_by(|a, b| a.all.total_cmp(&b.all).then(a.term.cmp(&b.term)));
    out
}

/// Figure 7: personalization edit distance decomposed into News / Maps /
/// other per query type and granularity.
pub fn fig7_personalization_by_type(idx: &ObsIndex<'_>) -> Vec<TypeBreakdownRow> {
    let mut out = Vec::new();
    for category in idx.categories() {
        for gran in idx.granularities() {
            let mut total = 0usize;
            let mut maps = 0usize;
            let mut news = 0usize;
            let mut other = 0usize;
            let mut pairs = 0usize;
            idx.for_each_treatment_pair(gran, category, |a, b| {
                let (t, m, n, o) = decompose(idx, a, b);
                total += t;
                maps += m;
                news += n;
                other += o;
                pairs += 1;
            });
            let pairs_f = pairs.max(1) as f64;
            out.push(TypeBreakdownRow {
                granularity: gran,
                category,
                total: total as f64 / pairs_f,
                maps: maps as f64 / pairs_f,
                news: news as f64 / pairs_f,
                other: other as f64 / pairs_f,
                pairs,
            });
        }
    }
    out
}

/// Render Figure 4 as a text table.
pub fn render_fig4(rows: &[TypeNoiseRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.term.clone(), f2(r.all), f2(r.maps), f2(r.news)])
        .collect();
    table(&["term", "all edit", "maps edit", "news edit"], &body)
}

/// Render Figure 7 as a text table.
pub fn render_fig7(rows: &[TypeBreakdownRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.category.label().to_string(),
                r.granularity.label().to_string(),
                f2(r.total),
                f2(r.maps),
                f2(r.news),
                f2(r.other),
                format!("{:.0}%", 100.0 * r.maps_fraction()),
                format!("{:.0}%", 100.0 * r.news_fraction()),
            ]
        })
        .collect();
    table(
        &[
            "category",
            "granularity",
            "total",
            "maps",
            "news",
            "other",
            "maps%",
            "news%",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use geoserp_crawler::{Crawler, Dataset, ExperimentPlan};
    use geoserp_geo::Seed;

    fn dataset() -> Dataset {
        let plan = ExperimentPlan {
            days: 2,
            queries_per_category: Some(4),
            locations_per_granularity: Some(5),
            ..ExperimentPlan::quick()
        };
        Crawler::new(Seed::new(2015)).run(&plan)
    }

    #[test]
    fn fig4_rows_are_sorted_and_bounded() {
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let rows = fig4_noise_by_type(&idx, QueryCategory::Local, Granularity::County);
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(w[0].all <= w[1].all);
        }
        for r in &rows {
            assert!(
                r.maps <= r.all + 1e-9,
                "{}: maps {} > all {}",
                r.term,
                r.maps,
                r.all
            );
            assert!(r.news >= 0.0);
        }
    }

    #[test]
    fn fig7_decomposition_is_consistent() {
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let rows = fig7_personalization_by_type(&idx);
        assert_eq!(rows.len(), 9);
        for r in &rows {
            assert!(r.pairs > 0);
            // other = total - maps - news is clamped per-pair, so summed
            // means obey total >= other and fractions stay in [0,1].
            let mf = r.maps_fraction();
            let nf = r.news_fraction();
            assert!((0.0..=1.0 + 1e9_f64.recip()).contains(&mf));
            assert!((0.0..=1.0).contains(&nf) || r.total == 0.0);
        }
    }

    #[test]
    fn maps_changes_hit_local_not_controversial() {
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let rows = fig7_personalization_by_type(&idx);
        let get = |cat: QueryCategory, g: Granularity| {
            rows.iter()
                .find(|r| r.category == cat && r.granularity == g)
                .unwrap()
        };
        let local = get(QueryCategory::Local, Granularity::State);
        let controversial = get(QueryCategory::Controversial, Granularity::State);
        assert!(
            local.maps >= controversial.maps,
            "local maps {} vs controversial maps {}",
            local.maps,
            controversial.maps
        );
        // Controversial differences, if any, come from News rather than Maps.
        assert!(controversial.maps <= 0.5, "{}", controversial.maps);
    }

    #[test]
    fn renders_work() {
        let ds = dataset();
        let idx = ObsIndex::new(&ds);
        let t4 = render_fig4(&fig4_noise_by_type(
            &idx,
            QueryCategory::Local,
            Granularity::County,
        ));
        assert!(t4.contains("maps edit"));
        let t7 = render_fig7(&fig7_personalization_by_type(&idx));
        assert!(t7.contains("maps%"));
    }
}
